#include "fabric/cell.hpp"

#include <chrono>
#include <set>
#include <thread>

#include "util/expect.hpp"

namespace stpx::fabric {

BackendCell::BackendCell(net::ITransport* transport, CellConfig cfg)
    : transport_(transport), cfg_(std::move(cfg)) {
  STPX_EXPECT(transport_ != nullptr, "BackendCell: null transport");
  STPX_EXPECT(cfg_.id != 0, "BackendCell: backend id 0 is reserved");
  STPX_EXPECT(!cfg_.stores.empty(), "BackendCell: a backend needs stores");
  STPX_EXPECT(static_cast<bool>(cfg_.make_receiver) &&
                  static_cast<bool>(cfg_.expected_for),
              "BackendCell: receiver factory and expectation provider "
              "are required");
  server_ = make_generation();
}

std::unique_ptr<net::StpServer> BackendCell::make_generation() {
  net::MuxConfig mc = cfg_.mux;
  mc.backend_id = cfg_.id;
  mc.session_stores = cfg_.stores;
  return std::make_unique<net::StpServer>(transport_, mc);
}

void BackendCell::add_session(std::uint32_t sid) {
  // Cold registration passes proto_tag 0 ("fresh default") — factories
  // must build a from-scratch receiver for tag 0.
  auto receiver = cfg_.make_receiver(sid, 0);
  STPX_EXPECT(receiver != nullptr,
              "BackendCell: factory declined a cold session");
  server_->add_session(sid, std::move(receiver), cfg_.expected_for(sid));
}

void BackendCell::start() {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(!killed_, "BackendCell: start on a dead cell");
  server_->mux().start();
  started_ = true;
}

void BackendCell::stop() {
  std::lock_guard<std::mutex> hold(mu_);
  if (killed_) return;
  server_->mux().stop();
}

void BackendCell::kill() {
  std::lock_guard<std::mutex> hold(mu_);
  if (killed_) return;
  killed_ = true;
  server_->mux().kill();
}

AbsorbReport BackendCell::absorb_locked(
    const std::vector<store::IStableStore*>& handoff,
    const std::vector<std::uint32_t>& expected,
    const std::function<bool(std::uint32_t)>& allowed) {
  STPX_EXPECT(!killed_, "BackendCell: absorb on a dead cell");
  const auto t0 = std::chrono::steady_clock::now();
  // Bare stop: the running generation retires without its final flush —
  // our own sessions restart from their last cadence checkpoint, same as
  // they would after a real crash.  Held (durability-gated) frames die
  // here; retransmission heals that.
  server_->mux().stop();
  ++generation_;
  server_ = make_generation();
  net::StpServer::ReceiverFactory factory = cfg_.make_receiver;
  if (allowed) {
    factory = [this, &allowed](std::uint32_t sid, std::uint64_t tag)
        -> std::unique_ptr<sim::IReceiver> {
      if (!allowed(sid)) return nullptr;  // declined: not ours any more
      return cfg_.make_receiver(sid, tag);
    };
  }
  AbsorbReport rep;
  rep.rehydrate = server_->rehydrate(factory, cfg_.expected_for, handoff);
  // Sessions the membership table expects here but no log manifests
  // (assigned, never checkpointed before the crash) start cold — they
  // re-earn everything from the wire.
  std::set<std::uint32_t> hosted;
  for (const auto& r : server_->mux().reports()) hosted.insert(r.id);
  for (const std::uint32_t sid : expected) {
    if (hosted.count(sid) != 0) continue;
    auto receiver = cfg_.make_receiver(sid, 0);
    if (!receiver) continue;
    server_->add_session(sid, std::move(receiver), cfg_.expected_for(sid));
    rep.cold_added.push_back(sid);
  }
  server_->mux().start();
  started_ = true;
  rep.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return rep;
}

AbsorbReport BackendCell::rehome_absorb(
    const std::vector<store::IStableStore*>& handoff,
    const std::vector<std::uint32_t>& expected,
    const std::optional<std::vector<std::uint32_t>>& owned) {
  std::lock_guard<std::mutex> hold(mu_);
  std::function<bool(std::uint32_t)> allowed;
  if (owned) {
    std::set<std::uint32_t> keep(owned->begin(), owned->end());
    keep.insert(expected.begin(), expected.end());
    allowed = [keep = std::move(keep)](std::uint32_t sid) {
      return keep.count(sid) != 0;
    };
  }
  return absorb_locked(handoff, expected, allowed);
}

AbsorbReport BackendCell::release_absorb(
    const std::vector<std::uint32_t>& victims,
    const std::vector<std::uint32_t>& remaining) {
  std::lock_guard<std::mutex> hold(mu_);
  std::set<std::uint32_t> keep(remaining.begin(), remaining.end());
  auto allowed = [keep = std::move(keep)](std::uint32_t sid) {
    return keep.count(sid) != 0;
  };
  (void)victims;  // the complement of `remaining`; named for the call site
  return absorb_locked({}, remaining, allowed);
}

RejoinReport BackendCell::rejoin(std::uint32_t max_attempts,
                                 std::chrono::microseconds ack_wait) {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(killed_, "BackendCell: rejoin on a live cell");
  const auto t0 = std::chrono::steady_clock::now();
  RejoinReport rep;
  // The rejoining generation announces under a fresh number, so every
  // manifest record it will ever write post-dates the crashed one's.
  ++generation_;
  rep.generation = generation_;
  net::Frame join;
  join.kind = net::FrameKind::kJoin;
  join.dir = sim::Dir::kSenderToReceiver;
  join.session = net::kFabricSession;
  join.msg = static_cast<std::int64_t>(generation_);
  // Pre-mux handshake: the dead mux no longer polls this transport, so
  // the handshake owns it until the probation generation starts.
  for (std::uint32_t a = 0; a < max_attempts && !rep.acked; ++a) {
    transport_->send(net::encode(join));
    ++rep.attempts;
    const auto deadline = std::chrono::steady_clock::now() + ack_wait;
    while (std::chrono::steady_clock::now() < deadline) {
      auto bytes = transport_->poll();
      if (!bytes) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      const auto f = net::decode(*bytes);
      if (!f || f->session != net::kFabricSession) continue;  // stale data
      if (f->kind == net::FrameKind::kJoinAck) {
        rep.acked = true;
        rep.epoch = static_cast<std::uint64_t>(f->msg);
        break;
      }
      // Everything else — including kProbe — is ignored.  An acked join
      // MEANS the router opened probation; answering probes before that
      // would feed the strike ladder healthy acks and stall the very
      // condemnation this handshake is waiting on.  Probation's probes
      // are answered by the restarted mux below.
    }
  }
  if (!rep.acked) return rep;  // still dead; a later rejoin() may retry
  // Sessionless probation generation: answers probes, serves nothing.
  // Its sessions come back through the reclaim handoff once probation
  // passes and the supervisor runs release/reclaim absorbs.
  killed_ = false;
  server_ = make_generation();
  server_->mux().start();
  started_ = true;
  rep.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return rep;
}

}  // namespace stpx::fabric
