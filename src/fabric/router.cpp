#include "fabric/router.hpp"

#include "util/expect.hpp"

namespace stpx::fabric {

using net::Frame;
using net::FrameKind;
using net::ITransport;
using net::kFabricSession;

FabricRouter::FabricRouter(ITransport* client_side,
                           MembershipTable* membership, RouterConfig cfg)
    : client_(client_side), membership_(membership), cfg_(cfg),
      health_(cfg.health), nameserver_(membership) {
  STPX_EXPECT(client_ != nullptr, "FabricRouter: null client transport");
  STPX_EXPECT(membership_ != nullptr, "FabricRouter: null membership");
}

FabricRouter::~FabricRouter() { stop(); }

void FabricRouter::add_backend(std::uint32_t id, ITransport* link) {
  STPX_EXPECT(!started_, "FabricRouter: add_backend after start");
  STPX_EXPECT(link != nullptr, "FabricRouter: null backend link");
  auto b = std::make_unique<BackendLink>();
  b->id = id;
  b->link.store(link, std::memory_order_release);
  backends_.push_back(std::move(b));
  std::lock_guard<std::mutex> hold(health_mu_);
  health_.add_backend(id, std::chrono::steady_clock::now());
}

void FabricRouter::set_link(std::uint32_t id, ITransport* link) {
  for (auto& b : backends_) {
    if (b->id == id) {
      b->link.store(link, std::memory_order_release);
      // The store only stops FUTURE pump passes from using the old
      // transport — the pump may be inside poll() on it right now.  Wait
      // out two tick advances (the in-flight pass plus one full pass that
      // provably loaded the new pointer) so the caller can destroy the
      // old transport the moment we return.
      const std::uint64_t seen = pump_ticks_.load(std::memory_order_acquire);
      while (pump_.joinable() &&
             !pump_.get_stop_token().stop_requested() &&
             pump_ticks_.load(std::memory_order_acquire) < seen + 2) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      return;
    }
  }
  STPX_EXPECT(false, "FabricRouter: set_link on unknown backend");
}

void FabricRouter::start() {
  STPX_EXPECT(!started_, "FabricRouter: started twice");
  started_ = true;
  pump_ = std::jthread([this](std::stop_token st) { pump_loop(st); });
}

void FabricRouter::stop() {
  if (pump_.joinable()) {
    pump_.request_stop();
    pump_.join();
  }
}

void FabricRouter::set_drop_probes(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->drop_probes.store(on, std::memory_order_release);
  }
}

void FabricRouter::set_drop_data(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->drop_data.store(on, std::memory_order_release);
  }
}

void FabricRouter::set_probes_paused(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->probes_paused.store(on, std::memory_order_release);
  }
}

void FabricRouter::set_partition(std::uint32_t id, PartitionMode mode) {
  for (auto& b : backends_) {
    if (b->id == id) {
      b->partition.store(static_cast<std::uint8_t>(mode),
                         std::memory_order_release);
    }
  }
}

std::optional<std::uint32_t> FabricRouter::next_dead() {
  std::lock_guard<std::mutex> hold(dead_mu_);
  if (dead_.empty()) return std::nullopt;
  const std::uint32_t id = dead_.front();
  dead_.pop_front();
  return id;
}

std::optional<std::uint32_t> FabricRouter::next_joined() {
  std::lock_guard<std::mutex> hold(dead_mu_);
  if (joined_.empty()) return std::nullopt;
  const std::uint32_t id = joined_.front();
  joined_.pop_front();
  return id;
}

RouterStats FabricRouter::stats() const {
  RouterStats s;
  s.client_to_backend = n_.c2b.load();
  s.backend_to_client = n_.b2c.load();
  s.probes_sent = n_.probes_sent.load();
  s.probe_acks = n_.probe_acks.load();
  s.probes_suppressed = n_.probes_suppressed.load();
  s.data_suppressed = n_.data_suppressed.load();
  s.no_owner = n_.no_owner.load();
  s.dead_owner = n_.dead_owner.load();
  s.stale_lease = n_.stale_lease.load();
  s.partition_suppressed = n_.partition_suppressed.load();
  s.resolves = n_.resolves.load();
  s.redirects = n_.redirects.load();
  s.joins = n_.joins.load();
  s.rejects = n_.rejects.load();
  return s;
}

HealthStats FabricRouter::health_stats() const {
  std::lock_guard<std::mutex> hold(health_mu_);
  return health_.stats();
}

void FabricRouter::publish_metrics(obs::MetricsRegistry& reg) const {
  const RouterStats st = stats();
  reg.counter("fabric.forwarded.client_to_backend").inc(st.client_to_backend);
  reg.counter("fabric.forwarded.backend_to_client").inc(st.backend_to_client);
  reg.counter("fabric.probes.sent").inc(st.probes_sent);
  reg.counter("fabric.probes.acks").inc(st.probe_acks);
  reg.counter("fabric.probes.suppressed").inc(st.probes_suppressed);
  // The drop family, split by cause: an unknown session (no_owner) is a
  // client bug or a pre-assignment race; a fenced owner (dead_owner) is a
  // re-home in flight; a stale entry (stale_lease) is a blocked
  // resurrection.  Lumping them would hide exactly the distinction the
  // fence exists to draw.
  reg.counter("fabric.drops.no_owner").inc(st.no_owner);
  reg.counter("fabric.drops.dead_owner").inc(st.dead_owner);
  reg.counter("fabric.drops.stale_lease").inc(st.stale_lease);
  reg.counter("fabric.drops.data_suppressed").inc(st.data_suppressed);
  reg.counter("fabric.drops.partition").inc(st.partition_suppressed);
  reg.counter("fabric.resolves").inc(st.resolves);
  reg.counter("fabric.redirects").inc(st.redirects);
  reg.counter("fabric.joins").inc(st.joins);
  reg.counter("fabric.rejects").inc(st.rejects);
  const NameserverStats ns = nameserver_.stats();
  reg.counter("fabric.nameserver.grants").inc(ns.grants);
  reg.counter("fabric.nameserver.unknowns").inc(ns.unknowns);
}

void FabricRouter::redirect_client(std::uint32_t session) {
  if (!cfg_.redirect_on_drop) return;
  client_->send(net::encode(nameserver_.redirect(session)));
  ++n_.redirects;
}

void FabricRouter::route_inbound(const Frame& f,
                                 const std::vector<std::uint8_t>& bytes) {
  const auto entry = membership_->resolve(f.session);
  if (!entry) {
    ++n_.no_owner;
    redirect_client(f.session);
    return;
  }
  if (entry->stale) {
    // The owner entry was stamped by a generation that has since been
    // fenced (e.g. the backend died with no survivor to re-home to, then
    // revived).  Routing to the revived incarnation would be an automatic
    // resurrection of a session nobody handed back — dropped, and the
    // client is redirected to re-resolve.
    ++n_.stale_lease;
    redirect_client(f.session);
    return;
  }
  BackendLink* target = nullptr;
  for (auto& b : backends_) {
    if (b->id == entry->backend) {
      target = b.get();
      break;
    }
  }
  if (!target) {
    ++n_.no_owner;
    redirect_client(f.session);
    return;
  }
  if (membership_->health(entry->backend) == BackendHealth::kDead) {
    // Fenced owner, re-home not finished: the frame is dropped like wire
    // loss and the client's retransmission finds the survivor.  The
    // redirect carries the epoch the re-home will have bumped past.
    ++n_.dead_owner;
    redirect_client(f.session);
    return;
  }
  const PartitionMode pm = partition_of(*target);
  if (pm == PartitionMode::kBoth || pm == PartitionMode::kToBackend) {
    // Host split: a network fault, not a membership fact — no redirect,
    // the drop looks exactly like wire loss to the client.
    ++n_.partition_suppressed;
    return;
  }
  if (target->drop_data.load(std::memory_order_acquire)) {
    ++n_.data_suppressed;
    return;
  }
  if (ITransport* link = target->link.load(std::memory_order_acquire)) {
    link->send(bytes);
    ++n_.c2b;
  }
}

void FabricRouter::on_join(BackendLink& b, HealthMonitor::time_point now) {
  bool opened = false;
  bool in_probation = false;
  {
    std::lock_guard<std::mutex> hold(health_mu_);
    opened = health_.rejoin(b.id, now);
    in_probation = opened || health_.on_probation(b.id);
  }
  if (opened) {
    // Probation opens; the death stays reported (and the membership entry
    // stays fenced) until the supervisor finishes the reclaim handoff.
    b.awaiting_probation = true;
    ++n_.joins;
  }
  if (!in_probation) {
    // The FSM has not condemned this backend (crash detection is still
    // mid-ladder) — or it is genuinely alive and this kJoin is noise.
    // No ack either way: an acked join MEANS "probation is open", and the
    // announcing cell keeps retrying until the ladder catches up.
    return;
  }
  // Ack a duplicate kJoin too while probation is open (retries after a
  // lost ack must converge), carrying the current membership epoch so the
  // announcing generation can date itself.
  const PartitionMode pm = partition_of(b);
  if (pm == PartitionMode::kBoth || pm == PartitionMode::kToBackend) {
    ++n_.partition_suppressed;
    return;
  }
  if (ITransport* link = b.link.load(std::memory_order_acquire)) {
    Frame ack;
    ack.kind = FrameKind::kJoinAck;
    ack.dir = sim::Dir::kReceiverToSender;
    ack.session = kFabricSession;
    ack.msg = static_cast<std::int64_t>(membership_->epoch());
    link->send(net::encode(ack));
  }
}

bool FabricRouter::drain_backend(BackendLink& b,
                                 HealthMonitor::time_point now) {
  ITransport* link = b.link.load(std::memory_order_acquire);
  if (!link) return false;
  bool busy = false;
  for (std::size_t i = 0; i < cfg_.burst; ++i) {
    auto bytes = link->poll();
    if (!bytes) break;
    busy = true;
    const auto f = net::decode(*bytes);
    if (!f) {
      ++n_.rejects;
      continue;
    }
    const PartitionMode pm = partition_of(b);
    if (pm == PartitionMode::kBoth || pm == PartitionMode::kFromBackend) {
      // Host split severs EVERYTHING from the backend — data, probe acks,
      // joins.  Unanswered probes keep charging the health FSM, so a long
      // enough partition reads as a crash; that asymmetry IS the fault.
      ++n_.partition_suppressed;
      continue;
    }
    if (f->session == kFabricSession) {
      if (f->kind == FrameKind::kJoin) {
        on_join(b, now);
        continue;
      }
      if (f->kind != FrameKind::kProbeAck) continue;  // stray control frame
      if (b.drop_probes.load(std::memory_order_acquire)) {
        // Probe-blackout severs the heartbeat in BOTH directions: the
        // ack made it back but the router never sees it.
        ++n_.probes_suppressed;
        continue;
      }
      {
        std::lock_guard<std::mutex> hold(health_mu_);
        health_.on_ack(b.id, f->msg, now);
      }
      ++n_.probe_acks;
      continue;
    }
    if (b.drop_data.load(std::memory_order_acquire)) {
      ++n_.data_suppressed;
      continue;
    }
    client_->send(*bytes);
    ++n_.b2c;
  }
  return busy;
}

void FabricRouter::tend_backend(BackendLink& b,
                                HealthMonitor::time_point now) {
  // Maintenance pause: apply edge transitions of the atomic flag to the
  // (pump-private) health FSM.
  const bool want_paused = b.probes_paused.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> hold(health_mu_);
  if (want_paused != b.applied_paused) {
    health_.set_paused(b.id, want_paused, now);
    b.applied_paused = want_paused;
  }
  if (!want_paused) {
    if (const auto nonce = health_.next_probe(b.id, now)) {
      const PartitionMode pm = partition_of(b);
      if (pm == PartitionMode::kBoth || pm == PartitionMode::kToBackend) {
        // The FSM believes the probe is on the wire (it charges the
        // timeout); the split ate it.
        ++n_.partition_suppressed;
      } else if (b.drop_probes.load(std::memory_order_acquire)) {
        // Same asymmetry, probe-blackout flavour.
        ++n_.probes_suppressed;
      } else if (ITransport* link =
                     b.link.load(std::memory_order_acquire)) {
        Frame probe;
        probe.kind = FrameKind::kProbe;
        probe.dir = sim::Dir::kSenderToReceiver;
        probe.session = kFabricSession;
        probe.msg = *nonce;
        link->send(net::encode(probe));
        ++n_.probes_sent;
      }
    }
  }
  const BackendHealth verdict = health_.health(b.id, now);
  // A fenced membership entry stays fenced until the supervisor runs the
  // reclaim handoff and calls revive() — the router never flips a dead
  // entry back by itself, even when probation has already passed.
  if (membership_->health(b.id) != BackendHealth::kDead) {
    membership_->set_health(b.id, verdict);
  }
  if (b.awaiting_probation) {
    if (verdict == BackendHealth::kAlive) {
      // Probation passed: hand the rejoiner to the supervisor.  From here
      // a fresh death of the revived incarnation is reportable again.
      b.awaiting_probation = false;
      b.reported_dead = false;
      std::lock_guard<std::mutex> dq(dead_mu_);
      joined_.push_back(b.id);
    } else if (verdict == BackendHealth::kDead) {
      // Struck out mid-probation: still fenced, nothing new to report —
      // the next kJoin may try again.
      b.awaiting_probation = false;
    }
    return;
  }
  if (verdict == BackendHealth::kDead && !b.reported_dead) {
    b.reported_dead = true;
    std::lock_guard<std::mutex> dq(dead_mu_);
    dead_.push_back(b.id);
  }
}

void FabricRouter::pump_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    bool busy = false;
    for (std::size_t i = 0; i < cfg_.burst; ++i) {
      auto bytes = client_->poll();
      if (!bytes) break;
      busy = true;
      const auto f = net::decode(*bytes);
      if (!f) {
        ++n_.rejects;
        continue;
      }
      if (f->kind == FrameKind::kResolve) {
        client_->send(net::encode(nameserver_.answer(*f)));
        ++n_.resolves;
        continue;
      }
      route_inbound(*f, *bytes);
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& b : backends_) {
      busy = drain_backend(*b, now) || busy;
      tend_backend(*b, now);
    }
    pump_ticks_.fetch_add(1, std::memory_order_release);
    if (!busy) std::this_thread::sleep_for(cfg_.poll_backoff);
  }
}

}  // namespace stpx::fabric
