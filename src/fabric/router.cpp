#include "fabric/router.hpp"

#include "util/expect.hpp"

namespace stpx::fabric {

using net::Frame;
using net::FrameKind;
using net::ITransport;
using net::kFabricSession;

FabricRouter::FabricRouter(ITransport* client_side,
                           MembershipTable* membership, RouterConfig cfg)
    : client_(client_side), membership_(membership), cfg_(cfg),
      health_(cfg.health) {
  STPX_EXPECT(client_ != nullptr, "FabricRouter: null client transport");
  STPX_EXPECT(membership_ != nullptr, "FabricRouter: null membership");
}

FabricRouter::~FabricRouter() { stop(); }

void FabricRouter::add_backend(std::uint32_t id, ITransport* link) {
  STPX_EXPECT(!started_, "FabricRouter: add_backend after start");
  STPX_EXPECT(link != nullptr, "FabricRouter: null backend link");
  auto b = std::make_unique<BackendLink>();
  b->id = id;
  b->link.store(link, std::memory_order_release);
  backends_.push_back(std::move(b));
  std::lock_guard<std::mutex> hold(health_mu_);
  health_.add_backend(id, std::chrono::steady_clock::now());
}

void FabricRouter::set_link(std::uint32_t id, ITransport* link) {
  for (auto& b : backends_) {
    if (b->id == id) {
      b->link.store(link, std::memory_order_release);
      // The store only stops FUTURE pump passes from using the old
      // transport — the pump may be inside poll() on it right now.  Wait
      // out two tick advances (the in-flight pass plus one full pass that
      // provably loaded the new pointer) so the caller can destroy the
      // old transport the moment we return.
      const std::uint64_t seen = pump_ticks_.load(std::memory_order_acquire);
      while (pump_.joinable() &&
             !pump_.get_stop_token().stop_requested() &&
             pump_ticks_.load(std::memory_order_acquire) < seen + 2) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      return;
    }
  }
  STPX_EXPECT(false, "FabricRouter: set_link on unknown backend");
}

void FabricRouter::start() {
  STPX_EXPECT(!started_, "FabricRouter: started twice");
  started_ = true;
  pump_ = std::jthread([this](std::stop_token st) { pump_loop(st); });
}

void FabricRouter::stop() {
  if (pump_.joinable()) {
    pump_.request_stop();
    pump_.join();
  }
}

void FabricRouter::set_drop_probes(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->drop_probes.store(on, std::memory_order_release);
  }
}

void FabricRouter::set_drop_data(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->drop_data.store(on, std::memory_order_release);
  }
}

void FabricRouter::set_probes_paused(std::uint32_t id, bool on) {
  for (auto& b : backends_) {
    if (b->id == id) b->probes_paused.store(on, std::memory_order_release);
  }
}

std::optional<std::uint32_t> FabricRouter::next_dead() {
  std::lock_guard<std::mutex> hold(dead_mu_);
  if (dead_.empty()) return std::nullopt;
  const std::uint32_t id = dead_.front();
  dead_.pop_front();
  return id;
}

RouterStats FabricRouter::stats() const {
  RouterStats s;
  s.client_to_backend = n_.c2b.load();
  s.backend_to_client = n_.b2c.load();
  s.probes_sent = n_.probes_sent.load();
  s.probe_acks = n_.probe_acks.load();
  s.probes_suppressed = n_.probes_suppressed.load();
  s.data_suppressed = n_.data_suppressed.load();
  s.no_owner = n_.no_owner.load();
  s.dead_owner = n_.dead_owner.load();
  s.rejects = n_.rejects.load();
  return s;
}

HealthStats FabricRouter::health_stats() const {
  std::lock_guard<std::mutex> hold(health_mu_);
  return health_.stats();
}

void FabricRouter::route_inbound(const Frame& f,
                                 const std::vector<std::uint8_t>& bytes) {
  const auto owner = membership_->owner(f.session);
  if (!owner) {
    ++n_.no_owner;
    return;
  }
  BackendLink* target = nullptr;
  for (auto& b : backends_) {
    if (b->id == *owner) {
      target = b.get();
      break;
    }
  }
  if (!target) {
    ++n_.no_owner;
    return;
  }
  if (membership_->health(*owner) == BackendHealth::kDead) {
    // Fenced owner, re-home not finished: the frame is dropped like wire
    // loss and the client's retransmission finds the survivor.
    ++n_.dead_owner;
    return;
  }
  if (target->drop_data.load(std::memory_order_acquire)) {
    ++n_.data_suppressed;
    return;
  }
  if (ITransport* link = target->link.load(std::memory_order_acquire)) {
    link->send(bytes);
    ++n_.c2b;
  }
}

bool FabricRouter::drain_backend(BackendLink& b,
                                 HealthMonitor::time_point now) {
  ITransport* link = b.link.load(std::memory_order_acquire);
  if (!link) return false;
  bool busy = false;
  for (std::size_t i = 0; i < cfg_.burst; ++i) {
    auto bytes = link->poll();
    if (!bytes) break;
    busy = true;
    const auto f = net::decode(*bytes);
    if (!f) {
      ++n_.rejects;
      continue;
    }
    if (f->session == kFabricSession) {
      if (f->kind != FrameKind::kProbeAck) continue;  // stray control frame
      if (b.drop_probes.load(std::memory_order_acquire)) {
        // Probe-blackout severs the heartbeat in BOTH directions: the
        // ack made it back but the router never sees it.
        ++n_.probes_suppressed;
        continue;
      }
      {
        std::lock_guard<std::mutex> hold(health_mu_);
        health_.on_ack(b.id, f->msg, now);
      }
      ++n_.probe_acks;
      continue;
    }
    if (b.drop_data.load(std::memory_order_acquire)) {
      ++n_.data_suppressed;
      continue;
    }
    client_->send(*bytes);
    ++n_.b2c;
  }
  return busy;
}

void FabricRouter::tend_backend(BackendLink& b,
                                HealthMonitor::time_point now) {
  // Maintenance pause: apply edge transitions of the atomic flag to the
  // (pump-private) health FSM.
  const bool want_paused = b.probes_paused.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> hold(health_mu_);
  if (want_paused != b.applied_paused) {
    health_.set_paused(b.id, want_paused, now);
    b.applied_paused = want_paused;
  }
  if (!want_paused) {
    if (const auto nonce = health_.next_probe(b.id, now)) {
      if (b.drop_probes.load(std::memory_order_acquire)) {
        // The FSM believes the probe is on the wire (it charges the
        // timeout); the blackout ate it.  That asymmetry IS the fault.
        ++n_.probes_suppressed;
      } else if (ITransport* link =
                     b.link.load(std::memory_order_acquire)) {
        Frame probe;
        probe.kind = FrameKind::kProbe;
        probe.dir = sim::Dir::kSenderToReceiver;
        probe.session = kFabricSession;
        probe.msg = *nonce;
        link->send(net::encode(probe));
        ++n_.probes_sent;
      }
    }
  }
  const BackendHealth verdict = health_.health(b.id, now);
  if (membership_->health(b.id) != BackendHealth::kDead) {
    membership_->set_health(b.id, verdict);
  }
  if (verdict == BackendHealth::kDead && !b.reported_dead) {
    b.reported_dead = true;
    std::lock_guard<std::mutex> dq(dead_mu_);
    dead_.push_back(b.id);
  }
}

void FabricRouter::pump_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    bool busy = false;
    for (std::size_t i = 0; i < cfg_.burst; ++i) {
      auto bytes = client_->poll();
      if (!bytes) break;
      busy = true;
      const auto f = net::decode(*bytes);
      if (!f) {
        ++n_.rejects;
        continue;
      }
      route_inbound(*f, *bytes);
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& b : backends_) {
      busy = drain_backend(*b, now) || busy;
      tend_backend(*b, now);
    }
    pump_ticks_.fetch_add(1, std::memory_order_release);
    if (!busy) std::this_thread::sleep_for(cfg_.poll_backoff);
  }
}

}  // namespace stpx::fabric
