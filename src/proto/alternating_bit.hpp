// The Alternating Bit Protocol [BSW69], the classic data-link baseline the
// paper's §5 hybrid builds on.
//
// Assumes a FIFO channel that may lose or duplicate but NOT reorder.  The
// sender stamps each data item with a one-bit sequence number and retransmits
// until the matching ack arrives; the receiver writes an item when its bit
// matches the expected bit and (re-)acknowledges the last bit it saw.
//
// Message encodings over finite alphabets:
//   S -> R : bit * |D| + item            (|M^S| = 2|D|)
//   R -> S : bit                         (|M^R| = 2)
#pragma once

#include <optional>

#include "sim/process.hpp"

namespace stpx::proto {

class AbpSender final : public sim::ISender {
 public:
  explicit AbpSender(int domain_size);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return 2 * domain_size_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "abp-sender"; }

  std::size_t acked() const { return next_; }

 private:
  int domain_size_;
  seq::Sequence x_;
  std::size_t next_ = 0;
  int bit_ = 0;
};

class AbpReceiver final : public sim::IReceiver {
 public:
  explicit AbpReceiver(int domain_size);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return 2; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "abp-receiver"; }

 private:
  int domain_size_;
  int expected_bit_ = 0;
  std::optional<int> ack_bit_;  // last data bit seen; re-acked every step
  std::int64_t written_ = 0;    // emitted writes (durable-recovery cursor)
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
