// Generic encoding-driven protocols (the operational form of §3's
// necessary-condition argument).
//
// The paper argues that, over a dup channel, any solution effectively maps
// each input X to a repetition-free message word μ(X), sent in order with
// stop-and-wait acknowledgements.  This module implements exactly that
// protocol *for an arbitrary candidate encoding table*, so the impossibility
// experiments can hand it a table with |𝒳| > alpha(m) and watch the paper's
// prediction come true:
//
//   * EncodedSender     — transmits μ(X) symbol by symbol, stop-and-wait
//                         (non-uniform: it knows X, hence μ(X), up front).
//   * KnowledgeReceiver — the epistemically optimal receiver: it writes item
//                         j only when EVERY input whose word extends the
//                         received word agrees on item j (this is literally
//                         K_R(x_j) evaluated over the encoding).  It can
//                         never violate safety; with a bad encoding it
//                         *stalls* — the liveness half of Theorem 1.
//   * GreedyReceiver    — commits to the first (table-order) input whose
//                         word extends the received word and writes its
//                         items optimistically.  With a bad encoding the
//                         adversary steers it into writing a wrong item —
//                         the safety half of Theorem 1.
//
// Message alphabets: M^S = M^R = {0..m-1} (acks echo the symbol).
#pragma once

#include <memory>
#include <vector>

#include "seq/encoding.hpp"
#include "sim/process.hpp"

namespace stpx::proto {

/// Immutable shared view of an encoding table.
using EncodingTable = std::shared_ptr<const seq::Encoding>;

class EncodedSender final : public sim::ISender {
 public:
  /// `retransmit` selects del-channel behaviour (resend until acked).
  EncodedSender(EncodingTable table, bool retransmit);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return table_->alphabet_size; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "encoded-sender"; }

 private:
  EncodingTable table_;
  bool retransmit_;
  seq::MsgWord word_;          // μ(X) for the current input
  std::size_t next_ = 0;       // symbols acknowledged so far
  bool sent_current_ = false;  // send-once bookkeeping (dup mode)
};

class KnowledgeReceiver final : public sim::IReceiver {
 public:
  /// `reack` selects del-channel behaviour (re-acknowledge every step).
  KnowledgeReceiver(EncodingTable table, bool reack);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return table_->alphabet_size; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "knowledge-receiver"; }

 private:
  void recompute_knowledge();

  EncodingTable table_;
  bool reack_;
  std::vector<bool> seen_;
  seq::MsgWord received_;  // new messages, in first-receipt order
  std::size_t written_ = 0;
  std::vector<seq::DataItem> pending_writes_;
  std::vector<sim::MsgId> pending_acks_;
  std::optional<sim::MsgId> last_ack_;
};

class GreedyReceiver final : public sim::IReceiver {
 public:
  GreedyReceiver(EncodingTable table, bool reack);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return table_->alphabet_size; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "greedy-receiver"; }

 private:
  void recompute_guess();

  EncodingTable table_;
  bool reack_;
  std::vector<bool> seen_;
  seq::MsgWord received_;
  std::size_t written_ = 0;
  std::vector<seq::DataItem> pending_writes_;
  std::vector<sim::MsgId> pending_acks_;
  std::optional<sim::MsgId> last_ack_;
};

}  // namespace stpx::proto
