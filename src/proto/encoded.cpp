#include "proto/encoded.hpp"

#include <algorithm>

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {

constexpr std::int64_t kSenderTag = 161;
constexpr std::int64_t kKnowledgeTag = 162;
constexpr std::int64_t kGreedyTag = 163;

/// Index of `x` in the encoding table; throws if absent.
std::size_t table_index(const seq::Encoding& table, const seq::Sequence& x) {
  for (std::size_t i = 0; i < table.inputs.size(); ++i) {
    if (table.inputs[i] == x) return i;
  }
  STPX_EXPECT(false, "encoding table has no entry for input " +
                         seq::to_string(x));
  return 0;  // unreachable
}

bool word_extends(const seq::MsgWord& prefix, const seq::MsgWord& word) {
  if (prefix.size() > word.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), word.begin());
}

// Both receivers carry the same durable fields; share the blob layout.
std::string save_receiver_blob(std::int64_t tag, std::size_t written,
                               const seq::MsgWord& received,
                               const std::vector<seq::DataItem>& pending_writes,
                               const std::vector<sim::MsgId>& pending_acks,
                               const std::optional<sim::MsgId>& last_ack) {
  util::BlobWriter w;
  w.i64(tag);
  w.u64(written);
  std::vector<std::int64_t> recv(received.begin(), received.end());
  w.vec(recv);
  write_items(w, pending_writes);
  std::vector<std::int64_t> acks(pending_acks.begin(), pending_acks.end());
  w.vec(acks);
  w.i64(last_ack ? static_cast<std::int64_t>(*last_ack) : -1);
  return w.str();
}

bool restore_receiver_blob(const std::string& blob, std::int64_t want_tag,
                           int alphabet, const seq::Sequence& tape,
                           std::vector<bool>& seen, seq::MsgWord& received,
                           std::size_t& written,
                           std::vector<seq::DataItem>& pending_writes,
                           std::vector<sim::MsgId>& pending_acks,
                           std::optional<sim::MsgId>& last_ack) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t written_raw = 0;
  std::vector<std::int64_t> recv;
  std::vector<seq::DataItem> pending;
  std::vector<std::int64_t> acks;
  std::int64_t last = -1;
  if (!r.i64(tag) || tag != want_tag || !r.u64(written_raw) || !r.vec(recv) ||
      !read_items(r, pending) || !r.vec(acks) || !r.i64(last) || !r.done() ||
      last < -1 || last >= alphabet) {
    return false;
  }
  // seen_ is exactly the set of symbols in received_ — rebuild, don't store.
  seen.assign(static_cast<std::size_t>(alphabet), false);
  received.clear();
  for (std::int64_t s : recv) {
    if (s < 0 || s >= alphabet) return false;
    seen[static_cast<std::size_t>(s)] = true;
    received.push_back(static_cast<int>(s));
  }
  pending_acks.clear();
  for (std::int64_t a : acks) {
    if (a < 0 || a >= alphabet) return false;
    pending_acks.push_back(static_cast<sim::MsgId>(a));
  }
  last_ack = last < 0 ? std::nullopt
                      : std::optional<sim::MsgId>(static_cast<sim::MsgId>(last));
  std::int64_t written64 = static_cast<std::int64_t>(written_raw);
  pending_writes = std::move(pending);
  reconcile_with_tape(written64, pending_writes, tape);
  written = static_cast<std::size_t>(written64);
  return true;
}

}  // namespace

// ---------------------------------------------------------------- sender --

EncodedSender::EncodedSender(EncodingTable table, bool retransmit)
    : table_(std::move(table)), retransmit_(retransmit) {
  STPX_EXPECT(table_ != nullptr, "EncodedSender: null table");
  STPX_EXPECT(table_->alphabet_size >= 1, "EncodedSender: empty alphabet");
}

void EncodedSender::start(const seq::Sequence& x) {
  word_ = table_->words[table_index(*table_, x)];
  next_ = 0;
  sent_current_ = false;
}

sim::SenderEffect EncodedSender::on_step() {
  if (next_ >= word_.size()) return {};
  if (!retransmit_ && sent_current_) return {};
  sent_current_ = true;
  return sim::SenderEffect{.send = sim::MsgId{word_[next_]}};
}

void EncodedSender::on_deliver(sim::MsgId msg) {
  if (next_ < word_.size() && msg == sim::MsgId{word_[next_]}) {
    ++next_;
    sent_current_ = false;
  }
}

std::string EncodedSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  return w.str();
}

bool EncodedSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) || !r.done()) {
    return false;
  }
  if (next > word_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  sent_current_ = false;  // treat the in-flight copy as lost; resend once
  return true;
}

std::unique_ptr<sim::ISender> EncodedSender::clone() const {
  return std::make_unique<EncodedSender>(*this);
}

// ---------------------------------------------------- knowledge receiver --

KnowledgeReceiver::KnowledgeReceiver(EncodingTable table, bool reack)
    : table_(std::move(table)), reack_(reack) {
  STPX_EXPECT(table_ != nullptr, "KnowledgeReceiver: null table");
}

void KnowledgeReceiver::start() {
  seen_.assign(static_cast<std::size_t>(table_->alphabet_size), false);
  received_.clear();
  written_ = 0;
  pending_writes_.clear();
  pending_acks_.clear();
  last_ack_.reset();
}

void KnowledgeReceiver::recompute_knowledge() {
  // Candidates: inputs whose word extends (or equals) what we have received.
  // R knows x_j = d iff every candidate defines position j and agrees it is
  // d.  (An input shorter than j+1 that is itself a candidate means "the
  // sequence may already have ended", so nothing further is known... unless
  // the candidate's word is a *strict* prefix — it still vetoes.)
  const std::size_t already =
      written_ + pending_writes_.size();
  for (std::size_t j = already;; ++j) {
    std::optional<seq::DataItem> agreed;
    bool all_agree = true;
    bool any_candidate = false;
    for (std::size_t i = 0; i < table_->inputs.size(); ++i) {
      if (!word_extends(received_, table_->words[i])) continue;
      any_candidate = true;
      const seq::Sequence& x = table_->inputs[i];
      if (j >= x.size()) {
        all_agree = false;  // this candidate says the sequence ended
        break;
      }
      if (!agreed) {
        agreed = x[j];
      } else if (*agreed != x[j]) {
        all_agree = false;
        break;
      }
    }
    if (!any_candidate || !all_agree || !agreed) break;
    pending_writes_.push_back(*agreed);
  }
}

sim::ReceiverEffect KnowledgeReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += eff.writes.size();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  } else if (reack_ && last_ack_) {
    eff.send = *last_ack_;
  }
  return eff;
}

void KnowledgeReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= table_->alphabet_size) return;  // outside M^S: ignore
  const auto idx = static_cast<std::size_t>(msg);
  if (seen_[idx]) return;
  seen_[idx] = true;
  received_.push_back(static_cast<int>(msg));
  pending_acks_.push_back(msg);
  last_ack_ = msg;
  recompute_knowledge();
}

std::string KnowledgeReceiver::save_state() const {
  return save_receiver_blob(kKnowledgeTag, written_, received_,
                            pending_writes_, pending_acks_, last_ack_);
}

bool KnowledgeReceiver::restore_state(const std::string& blob,
                                      const seq::Sequence& tape) {
  if (!restore_receiver_blob(blob, kKnowledgeTag, table_->alphabet_size, tape,
                             seen_, received_, written_, pending_writes_,
                             pending_acks_, last_ack_)) {
    return false;
  }
  // Knowledge is a function of received_; recomputing can only re-derive
  // pending writes the reconciled cursor has not yet covered.
  recompute_knowledge();
  return true;
}

std::unique_ptr<sim::IReceiver> KnowledgeReceiver::clone() const {
  return std::make_unique<KnowledgeReceiver>(*this);
}

// ------------------------------------------------------- greedy receiver --

GreedyReceiver::GreedyReceiver(EncodingTable table, bool reack)
    : table_(std::move(table)), reack_(reack) {
  STPX_EXPECT(table_ != nullptr, "GreedyReceiver: null table");
}

void GreedyReceiver::start() {
  seen_.assign(static_cast<std::size_t>(table_->alphabet_size), false);
  received_.clear();
  written_ = 0;
  pending_writes_.clear();
  pending_acks_.clear();
  last_ack_.reset();
}

void GreedyReceiver::recompute_guess() {
  // Commit to the first candidate whose word the received word is a prefix
  // of, and optimistically write as far as the received word "pays for":
  // after k received symbols of a |w|-symbol word for an n-item input, write
  // floor(n * k / max(|w|,1)) items.  (Any committal rule works for the
  // experiment; this one makes steady progress and is deterministic.)
  for (std::size_t i = 0; i < table_->inputs.size(); ++i) {
    if (!word_extends(received_, table_->words[i])) continue;
    const seq::Sequence& x = table_->inputs[i];
    const std::size_t wlen = std::max<std::size_t>(table_->words[i].size(), 1);
    const std::size_t target =
        table_->words[i].empty()
            ? x.size()
            : x.size() * received_.size() / wlen;
    const std::size_t already = written_ + pending_writes_.size();
    for (std::size_t j = already; j < target && j < x.size(); ++j) {
      pending_writes_.push_back(x[j]);
    }
    return;
  }
}

sim::ReceiverEffect GreedyReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += eff.writes.size();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  } else if (reack_ && last_ack_) {
    eff.send = *last_ack_;
  }
  return eff;
}

void GreedyReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= table_->alphabet_size) return;  // outside M^S: ignore
  const auto idx = static_cast<std::size_t>(msg);
  if (seen_[idx]) return;
  seen_[idx] = true;
  received_.push_back(static_cast<int>(msg));
  pending_acks_.push_back(msg);
  last_ack_ = msg;
  recompute_guess();
}

std::string GreedyReceiver::save_state() const {
  return save_receiver_blob(kGreedyTag, written_, received_, pending_writes_,
                            pending_acks_, last_ack_);
}

bool GreedyReceiver::restore_state(const std::string& blob,
                                   const seq::Sequence& tape) {
  if (!restore_receiver_blob(blob, kGreedyTag, table_->alphabet_size, tape,
                             seen_, received_, written_, pending_writes_,
                             pending_acks_, last_ack_)) {
    return false;
  }
  recompute_guess();
  return true;
}

std::unique_ptr<sim::IReceiver> GreedyReceiver::clone() const {
  return std::make_unique<GreedyReceiver>(*this);
}

}  // namespace stpx::proto
