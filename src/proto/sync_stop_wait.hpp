// Stop-and-wait over the synchronous, detectable-loss link (§1's contrast
// class: [AUY79], [AUWY82]).
//
// With loss detection and order, the whole difficulty of STP evaporates:
// the sender transmits each item as itself, waits for the environment's
// per-transmission verdict (kSyncAck / kSyncNack), and resends on NACK; the
// receiver writes every arrival.  ALL sequences over D are carried —
// repetitions included — with |M^S| = |D| and the receiver never sending a
// single message.  Against the paper's channels the same alphabet supports
// at most alpha(|D|) sequences (Theorems 1/2): the alpha(m) wall is the
// price of asynchrony and reordering, not of loss (ablation A3).
#pragma once

#include "sim/process.hpp"

namespace stpx::proto {

class SyncStopWaitSender final : public sim::ISender {
 public:
  explicit SyncStopWaitSender(int domain_size);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return domain_size_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "sync-stopwait-sender"; }

 private:
  int domain_size_;
  seq::Sequence x_;
  std::size_t next_ = 0;
  bool awaiting_verdict_ = false;
  /// Set by restore_state: verdicts for pre-crash sends may still arrive
  /// and must be dropped, not asserted against (see on_deliver).
  bool recovered_ = false;
};

class SyncStopWaitReceiver final : public sim::IReceiver {
 public:
  explicit SyncStopWaitReceiver(int domain_size);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  /// Sends nothing; a 1-message alphabet keeps the engine's send check
  /// trivially satisfied if a future variant ever acks.
  int alphabet_size() const override { return 1; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "sync-stopwait-receiver"; }

 private:
  int domain_size_;
  std::int64_t written_ = 0;  // emitted writes (durable-recovery cursor)
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
