// The §5 construction: a *weakly bounded* but *unbounded* protocol.
//
// The paper's example shows why weak boundedness ([LMF88]) is too weak a
// notion: a protocol can satisfy it while taking unboundedly long to recover
// from a single fault.  The construction alternates between an Alternating
// Bit Protocol (fast path) and an [AFWZ89]-style whole-sequence transfer
// (recovery path) triggered when a message is lost:
//
//   * Fast path — plain ABP over a FIFO link; R learns items one at a time,
//     each within a constant number of steps (this is what makes the
//     protocol *weakly* bounded: from each t_i there is a k-step extension
//     reaching t_{i+1}).
//   * Recovery path — when the sender times out waiting for an ack, it
//     switches to a disjoint message alphabet and retransmits the ENTIRE
//     sequence, back-to-front, stop-and-wait, finishing with a special END
//     marker; on END the receiver reconstructs X and writes everything it
//     is still missing.  Recovery therefore costs Θ(|X|) steps — a function
//     of the input length, NOT of the index i being learnt, which is
//     precisely the failure of (strong) boundedness the paper criticizes.
//
// Simplification vs. the paper's sketch (documented in DESIGN.md): the paper
// alternates back to ABP if the lost message finally shows up, and stops the
// reverse transfer where it meets the learnt prefix; we always complete the
// reverse transfer from the end of the sequence down to position 0.  Both
// variants are weakly bounded with Θ(|X|) single-fault recovery, which is
// the property T6/F3 measure; ours keeps the receiver's knowledge
// unambiguous with a finite alphabet.
//
// Message encodings (finite alphabets; D = domain, m = |D|):
//   S -> R : [0, 2m)    ABP data        bit*m + item
//            [2m, 4m)   reverse data    2m + bit*m + item
//            4m         END marker                      (|M^S| = 4m + 1)
//   R -> S : 0,1        ABP acks
//            2,3        reverse acks
//            4          END ack                         (|M^R| = 5)
#pragma once

#include <optional>

#include "sim/process.hpp"

namespace stpx::proto {

/// Which part of the state machine a hybrid endpoint is executing.
enum class HybridPhase { kAbp, kReverse, kEnd, kDone };

class HybridSender final : public sim::ISender {
 public:
  /// `timeout` = sender steps without ack progress before declaring a fault.
  HybridSender(int domain_size, int timeout);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return 4 * domain_size_ + 1; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "hybrid-sender"; }

  HybridPhase phase() const { return phase_; }

 private:
  int domain_size_;
  int timeout_;
  seq::Sequence x_;
  HybridPhase phase_ = HybridPhase::kDone;
  // ABP state (send-once-and-wait: see on_step for why no retransmission).
  std::size_t next_ = 0;
  int bit_ = 0;
  int steps_since_progress_ = 0;
  bool sent_current_ = false;
  // Reverse-transfer state.
  std::int64_t rev_idx_ = -1;
  int rev_bit_ = 0;
};

class HybridReceiver final : public sim::IReceiver {
 public:
  explicit HybridReceiver(int domain_size);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return 5; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "hybrid-receiver"; }

  HybridPhase phase() const { return phase_; }

 private:
  int domain_size_;
  HybridPhase phase_ = HybridPhase::kAbp;
  // ABP state.
  int expected_bit_ = 0;
  std::size_t written_count_ = 0;  // includes pending writes
  // Reverse-transfer state: items arrive x[n-1], x[n-2], ...
  int expected_rev_bit_ = 0;
  seq::Sequence rev_buffer_;
  bool finalized_ = false;
  /// Receipt-driven acks, one per delivery (duplicates re-ack, which is
  /// what unsticks a sender whose previous ack was lost — but the receiver
  /// never acks spontaneously: a lost ack with a quiescent sender is
  /// exactly the fault that §5's fallback exists to recover from).
  std::vector<sim::MsgId> pending_acks_;
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
