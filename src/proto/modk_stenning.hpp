// Stenning's protocol with sequence numbers reduced mod K — the classic
// "finite headers" engineering shortcut, included as a cautionary ablation.
//
// With K distinct tags the alphabet is finite (K*|D| data messages, K
// acks), so by Theorem 1/2 it cannot solve STP for all sequences: on a
// reordering channel a stale message whose tag has wrapped around is
// indistinguishable from the current one, and the receiver writes a wrong
// item.  On a FIFO channel (no reordering) mod-2 tags suffice — that is
// exactly the Alternating Bit Protocol.  The test suite demonstrates both
// sides; the attack experiments show the wraparound being found
// automatically.
//
// Encodings:
//   S -> R : (seqno mod K) * |D| + item     (|M^S| = K|D|)
//   R -> S : number of items written mod K  (|M^R| = K; cumulative-style)
#pragma once

#include "sim/process.hpp"

namespace stpx::proto {

class ModKStenningSender final : public sim::ISender {
 public:
  ModKStenningSender(int domain_size, int modulus);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return modulus_ * domain_size_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "modk-stenning-sender"; }

  std::size_t acked() const { return next_; }

 private:
  int domain_size_;
  int modulus_;
  seq::Sequence x_;
  std::size_t next_ = 0;  // first unacknowledged index
};

class ModKStenningReceiver final : public sim::IReceiver {
 public:
  ModKStenningReceiver(int domain_size, int modulus);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return modulus_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "modk-stenning-receiver"; }

 private:
  int domain_size_;
  int modulus_;
  std::int64_t written_ = 0;
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
