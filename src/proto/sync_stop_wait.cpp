#include "proto/sync_stop_wait.hpp"

#include "channel/sync_channel.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

SyncStopWaitSender::SyncStopWaitSender(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "SyncStopWaitSender: empty domain");
}

void SyncStopWaitSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "SyncStopWaitSender: input outside domain");
  x_ = x;
  next_ = 0;
  awaiting_verdict_ = false;
}

sim::SenderEffect SyncStopWaitSender::on_step() {
  if (awaiting_verdict_ || next_ >= x_.size()) return {};
  awaiting_verdict_ = true;
  return sim::SenderEffect{.send = sim::MsgId{x_[next_]}};
}

void SyncStopWaitSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg == channel::kSyncAck || msg == channel::kSyncNack,
              "SyncStopWaitSender: expected an environment verdict token");
  STPX_EXPECT(awaiting_verdict_,
              "SyncStopWaitSender: verdict without an outstanding send");
  awaiting_verdict_ = false;
  if (msg == channel::kSyncAck) ++next_;  // NACK: resend on the next step
}

std::unique_ptr<sim::ISender> SyncStopWaitSender::clone() const {
  return std::make_unique<SyncStopWaitSender>(*this);
}

SyncStopWaitReceiver::SyncStopWaitReceiver(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "SyncStopWaitReceiver: empty domain");
}

void SyncStopWaitReceiver::start() { pending_writes_.clear(); }

sim::ReceiverEffect SyncStopWaitReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  return eff;
}

void SyncStopWaitReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < domain_size_,
              "SyncStopWaitReceiver: message outside M^S");
  // Order + no duplication + verdict-gated sending mean every arrival is
  // exactly the next item.
  pending_writes_.push_back(static_cast<seq::DataItem>(msg));
}

std::unique_ptr<sim::IReceiver> SyncStopWaitReceiver::clone() const {
  return std::make_unique<SyncStopWaitReceiver>(*this);
}

}  // namespace stpx::proto
