#include "proto/sync_stop_wait.hpp"

#include "channel/sync_channel.hpp"
#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 181;
constexpr std::int64_t kReceiverTag = 182;
}  // namespace

SyncStopWaitSender::SyncStopWaitSender(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "SyncStopWaitSender: empty domain");
}

void SyncStopWaitSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "SyncStopWaitSender: input outside domain");
  x_ = x;
  next_ = 0;
  awaiting_verdict_ = false;
  recovered_ = false;
}

sim::SenderEffect SyncStopWaitSender::on_step() {
  if (awaiting_verdict_ || next_ >= x_.size()) return {};
  awaiting_verdict_ = true;
  return sim::SenderEffect{.send = sim::MsgId{x_[next_]}};
}

void SyncStopWaitSender::on_deliver(sim::MsgId msg) {
  if (msg != channel::kSyncAck && msg != channel::kSyncNack) {
    return;  // not an environment verdict token: forged/corrupted, ignore
  }
  if (!awaiting_verdict_) {
    // A verdict with no outstanding send: either addressed to a pre-crash
    // incarnation (a restored checkpoint cannot know whether one is still
    // outstanding) or injected by the environment.  Drop it; the next
    // on_step re-sends x_[next_] and the lockstep resumes (or the rewind
    // hazard plays out — see restore_state).
    return;
  }
  awaiting_verdict_ = false;
  if (msg == channel::kSyncAck) ++next_;  // NACK: resend on the next step
}

std::string SyncStopWaitSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  w.boolean(awaiting_verdict_);
  return w.str();
}

bool SyncStopWaitSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  bool awaiting = false;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) ||
      !r.boolean(awaiting) || !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  awaiting_verdict_ = awaiting;
  recovered_ = true;  // tolerate verdicts addressed to the old incarnation
  return true;
}

std::unique_ptr<sim::ISender> SyncStopWaitSender::clone() const {
  return std::make_unique<SyncStopWaitSender>(*this);
}

SyncStopWaitReceiver::SyncStopWaitReceiver(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "SyncStopWaitReceiver: empty domain");
}

void SyncStopWaitReceiver::start() {
  written_ = 0;
  pending_writes_.clear();
}

sim::ReceiverEffect SyncStopWaitReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  return eff;
}

void SyncStopWaitReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= domain_size_) return;  // outside M^S: ignore
  // Order + no duplication + verdict-gated sending mean every arrival is
  // exactly the next item.
  pending_writes_.push_back(static_cast<seq::DataItem>(msg));
}

std::string SyncStopWaitReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(written_);
  write_items(w, pending_writes_);
  return w.str();
}

bool SyncStopWaitReceiver::restore_state(const std::string& blob,
                                         const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(written) ||
      !read_items(r, pending) || !r.done() || written < 0) {
    return false;
  }
  written_ = written;
  pending_writes_ = std::move(pending);
  // Without headers there is no way to dedup a rewound stream — exact
  // restore works, but a stale (lost-tail) record is a documented hazard:
  // the tape reconciliation below keeps the cursor honest, yet items the
  // record never saw are gone and the run can only stall or mis-write.
  reconcile_with_tape(written_, pending_writes_, tape);
  return true;
}

std::unique_ptr<sim::IReceiver> SyncStopWaitReceiver::clone() const {
  return std::make_unique<SyncStopWaitReceiver>(*this);
}

}  // namespace stpx::proto
