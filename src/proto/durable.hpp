#pragma once
// Helpers shared by the protocols' save_state()/restore_state()
// implementations (the durable recovery layer — see docs/RECOVERY.md).
//
// Blobs are util::Blob integer text.  Each protocol prefixes its blob with
// a distinct tag so a checkpoint from one protocol can never rehydrate
// another.  Receiver restores reconcile against the engine-owned output
// tape Y: a checkpoint may predate the newest writes (lost tail records),
// but every item the tape holds was definitely externalized, so the stale
// front of the pending-write queue is dropped and the write cursor
// advances to tape.size().  This is what makes a one-record rewind
// prefix-safe: a lost transition either changed no durable state (a pure
// retransmission) or drained a durable queue whose externalized part the
// tape replays.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "seq/types.hpp"
#include "util/blob.hpp"

namespace stpx::proto {

inline void write_items(util::BlobWriter& w,
                        const std::vector<seq::DataItem>& v) {
  std::vector<std::int64_t> tmp(v.begin(), v.end());
  w.vec(tmp);
}

inline bool read_items(util::BlobReader& r, std::vector<seq::DataItem>& out) {
  std::vector<std::int64_t> tmp;
  if (!r.vec(tmp)) return false;
  out.assign(tmp.begin(), tmp.end());
  return true;
}

/// Advance `written` to the tape length, dropping the already-externalized
/// front of `pending` (pending queues drain FIFO, so writes the tape holds
/// beyond the checkpoint's cursor are exactly the queue's front).
inline void reconcile_with_tape(std::int64_t& written,
                                std::vector<seq::DataItem>& pending,
                                const seq::Sequence& tape) {
  const auto n = static_cast<std::int64_t>(tape.size());
  if (n <= written) return;
  const std::int64_t drop = std::min<std::int64_t>(
      n - written, static_cast<std::int64_t>(pending.size()));
  pending.erase(pending.begin(), pending.begin() + drop);
  written = n;
}

}  // namespace stpx::proto
