// The paper's tight-bound protocol (end of §3 and §4).
//
// Domain D = M^S = M^R = {0..m-1}; the allowable set 𝒳 is the repetition-free
// sequences over D (|𝒳| = alpha(m), matching the upper bound exactly).
//
//   S sends the data items in sequence and waits for the appropriate
//   acknowledgement for each.  R awaits the arrival of some *new* message
//   (different from every previously received one); it then writes the new
//   data item and sends the appropriate acknowledgement.  Reordering is dealt
//   with by ignoring previously received messages.
//
// Duplication mode (X-STP(dup)): each message/ack is sent once — the channel
// itself replays them forever (Property 1c guarantees delivery), so
// retransmission buys nothing.
//
// Deletion mode (X-STP(del)): the channel may delete copies, so S retransmits
// the current unacknowledged item on every step and R re-acknowledges its
// most recently written item on every step.  This is the paper's "easily
// modified ... bounded solution": from any point, one S-send, one delivery,
// one R-step, one ack-send, one ack-delivery and one S-step suffice for the
// next item — a constant f(i), independent of history.
//
// Both modes are finite-state, as the paper notes.
//
// Crash-restart behaviour (see docs/FAULTS.md): neither process reliably
// survives amnesia.  The receiver's `seen_` set is the only defence against
// replayed messages, so a receiver restart with stale copies in flight
// re-writes an already-written item — a safety violation.  A sender restart
// rewinds to item 0, which the receiver (correctly) ignores; unless stale
// acknowledgements still in flight happen to fast-forward the sender back
// to the frontier, the run livelocks and the engine watchdog reports it.
// The paper's model simply has no crash fault; the soak harness exercises
// repfree only under channel-level chaos, where it is clean by design.
#pragma once

#include <optional>
#include <vector>

#include "sim/process.hpp"

namespace stpx::proto {

/// Retransmission behaviour selects which channel family the pair targets.
enum class RepFreeMode {
  kDup,  // send-once: for reorder+duplicate channels
  kDel,  // retransmit: for reorder+delete channels
};

class RepFreeSender final : public sim::ISender {
 public:
  RepFreeSender(int domain_size, RepFreeMode mode);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return domain_size_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override;

  /// Items acknowledged so far (progress indicator for experiments).
  std::size_t acked() const { return next_; }

 private:
  int domain_size_;
  RepFreeMode mode_;
  seq::Sequence x_;
  std::size_t next_ = 0;       // index of the item currently in flight
  bool sent_current_ = false;  // dup mode: current item already sent once
};

class RepFreeReceiver final : public sim::IReceiver {
 public:
  RepFreeReceiver(int domain_size, RepFreeMode mode);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return domain_size_; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override;

 private:
  int domain_size_;
  RepFreeMode mode_;
  std::vector<bool> seen_;
  std::int64_t written_ = 0;  // emitted writes (durable-recovery cursor)
  std::vector<seq::DataItem> pending_writes_;
  std::vector<sim::MsgId> pending_acks_;
  std::optional<sim::MsgId> last_ack_;  // del mode: re-ack target
};

}  // namespace stpx::proto
