#include "proto/sliding_window.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::proto {

// ------------------------------------------------------------- go-back-n --

GoBackNSender::GoBackNSender(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1, "GoBackNSender: domain must be non-empty");
  STPX_EXPECT(window >= 1, "GoBackNSender: window must be positive");
}

void GoBackNSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "GoBackNSender: input outside domain");
  x_ = x;
  base_ = 0;
  rotate_ = 0;
}

sim::SenderEffect GoBackNSender::on_step() {
  if (base_ >= x_.size()) return {};
  const std::size_t limit = std::min(base_ + window_, x_.size());
  // Rotate through the window so every outstanding item keeps being
  // retransmitted (a deletion channel can eat any individual copy).
  const std::size_t idx = base_ + (rotate_++ % (limit - base_));
  const auto seqno = static_cast<sim::MsgId>(idx);
  return sim::SenderEffect{.send = seqno * domain_size_ + x_[idx]};
}

void GoBackNSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "GoBackNSender: malformed ack");
  const auto count = static_cast<std::size_t>(msg);  // cumulative: items written
  if (count > base_) {
    base_ = count;
    rotate_ = 0;
  }
}

std::unique_ptr<sim::ISender> GoBackNSender::clone() const {
  return std::make_unique<GoBackNSender>(*this);
}

// ------------------------------------------------------ selective repeat --

SelectiveRepeatSender::SelectiveRepeatSender(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1,
              "SelectiveRepeatSender: domain must be non-empty");
  STPX_EXPECT(window >= 1, "SelectiveRepeatSender: window must be positive");
}

void SelectiveRepeatSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "SelectiveRepeatSender: input outside domain");
  x_ = x;
  base_ = 0;
  acked_.clear();
  rotate_ = 0;
}

sim::SenderEffect SelectiveRepeatSender::on_step() {
  if (base_ >= x_.size()) return {};
  const std::size_t limit = std::min(base_ + window_, x_.size());
  // Collect unacked indices in the window; retransmit round-robin.
  std::vector<std::size_t> outstanding;
  for (std::size_t i = base_; i < limit; ++i) {
    if (acked_.find(i) == acked_.end()) outstanding.push_back(i);
  }
  if (outstanding.empty()) return {};
  const std::size_t idx = outstanding[rotate_++ % outstanding.size()];
  const auto seqno = static_cast<sim::MsgId>(idx);
  return sim::SenderEffect{.send = seqno * domain_size_ + x_[idx]};
}

void SelectiveRepeatSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "SelectiveRepeatSender: malformed ack");
  acked_.insert(static_cast<std::size_t>(msg));
  while (base_ < x_.size() && acked_.count(base_)) ++base_;
}

std::unique_ptr<sim::ISender> SelectiveRepeatSender::clone() const {
  return std::make_unique<SelectiveRepeatSender>(*this);
}

SelectiveRepeatReceiver::SelectiveRepeatReceiver(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1,
              "SelectiveRepeatReceiver: domain must be non-empty");
  STPX_EXPECT(window >= 1, "SelectiveRepeatReceiver: window must be positive");
}

void SelectiveRepeatReceiver::start() {
  written_ = 0;
  buffer_.clear();
  pending_acks_.clear();
  pending_writes_.clear();
}

sim::ReceiverEffect SelectiveRepeatReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void SelectiveRepeatReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "SelectiveRepeatReceiver: malformed message");
  const std::int64_t seqno = msg / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  const std::int64_t frontier =
      written_ + static_cast<std::int64_t>(pending_writes_.size());
  // Every arrival is (re-)acknowledged — the sender may be retransmitting
  // because our previous ack was deleted.
  pending_acks_.push_back(sim::MsgId{seqno});
  if (seqno < frontier) return;  // duplicate of something already accepted
  if (seqno >= frontier + static_cast<std::int64_t>(window_)) return;
  buffer_.emplace(seqno, item);  // no-op if already buffered
  // Drain the contiguous run into pending writes.
  auto it = buffer_.find(written_ +
                         static_cast<std::int64_t>(pending_writes_.size()));
  while (it != buffer_.end()) {
    pending_writes_.push_back(it->second);
    buffer_.erase(it);
    it = buffer_.find(written_ +
                      static_cast<std::int64_t>(pending_writes_.size()));
  }
}

std::unique_ptr<sim::IReceiver> SelectiveRepeatReceiver::clone() const {
  return std::make_unique<SelectiveRepeatReceiver>(*this);
}

}  // namespace stpx::proto
