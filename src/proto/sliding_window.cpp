#include "proto/sliding_window.hpp"

#include <algorithm>

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kGbnSenderTag = 141;
constexpr std::int64_t kSrSenderTag = 142;
constexpr std::int64_t kSrReceiverTag = 143;
}  // namespace

// ------------------------------------------------------------- go-back-n --

GoBackNSender::GoBackNSender(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1, "GoBackNSender: domain must be non-empty");
  STPX_EXPECT(window >= 1, "GoBackNSender: window must be positive");
}

void GoBackNSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "GoBackNSender: input outside domain");
  x_ = x;
  base_ = 0;
  rotate_ = 0;
}

sim::SenderEffect GoBackNSender::on_step() {
  if (base_ >= x_.size()) return {};
  const std::size_t limit = std::min(base_ + window_, x_.size());
  // Rotate through the window so every outstanding item keeps being
  // retransmitted (a deletion channel can eat any individual copy).
  const std::size_t idx = base_ + (rotate_++ % (limit - base_));
  const auto seqno = static_cast<sim::MsgId>(idx);
  return sim::SenderEffect{.send = seqno * domain_size_ + x_[idx]};
}

void GoBackNSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "GoBackNSender: malformed ack");
  const auto count = static_cast<std::size_t>(msg);  // cumulative: items written
  if (count > base_) {
    base_ = count;
    rotate_ = 0;
  }
}

std::string GoBackNSender::save_state() const {
  util::BlobWriter w;
  w.i64(kGbnSenderTag);
  w.u64(base_);
  return w.str();
}

bool GoBackNSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t base = 0;
  if (!r.i64(tag) || tag != kGbnSenderTag || !r.u64(base) || !r.done()) {
    return false;
  }
  if (base > x_.size()) return false;
  base_ = static_cast<std::size_t>(base);
  rotate_ = 0;  // round-robin cursor is volatile scratch
  return true;
}

std::unique_ptr<sim::ISender> GoBackNSender::clone() const {
  return std::make_unique<GoBackNSender>(*this);
}

// ------------------------------------------------------ selective repeat --

SelectiveRepeatSender::SelectiveRepeatSender(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1,
              "SelectiveRepeatSender: domain must be non-empty");
  STPX_EXPECT(window >= 1, "SelectiveRepeatSender: window must be positive");
}

void SelectiveRepeatSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "SelectiveRepeatSender: input outside domain");
  x_ = x;
  base_ = 0;
  acked_.clear();
  rotate_ = 0;
}

sim::SenderEffect SelectiveRepeatSender::on_step() {
  if (base_ >= x_.size()) return {};
  const std::size_t limit = std::min(base_ + window_, x_.size());
  // Collect unacked indices in the window; retransmit round-robin.
  std::vector<std::size_t> outstanding;
  for (std::size_t i = base_; i < limit; ++i) {
    if (acked_.find(i) == acked_.end()) outstanding.push_back(i);
  }
  if (outstanding.empty()) return {};
  const std::size_t idx = outstanding[rotate_++ % outstanding.size()];
  const auto seqno = static_cast<sim::MsgId>(idx);
  return sim::SenderEffect{.send = seqno * domain_size_ + x_[idx]};
}

void SelectiveRepeatSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "SelectiveRepeatSender: malformed ack");
  acked_.insert(static_cast<std::size_t>(msg));
  while (base_ < x_.size() && acked_.count(base_)) ++base_;
}

std::string SelectiveRepeatSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSrSenderTag);
  w.u64(base_);
  std::vector<std::int64_t> acked(acked_.begin(), acked_.end());
  w.vec(acked);
  return w.str();
}

bool SelectiveRepeatSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t base = 0;
  std::vector<std::int64_t> acked;
  if (!r.i64(tag) || tag != kSrSenderTag || !r.u64(base) || !r.vec(acked) ||
      !r.done()) {
    return false;
  }
  if (base > x_.size()) return false;
  base_ = static_cast<std::size_t>(base);
  acked_.clear();
  for (std::int64_t a : acked) {
    if (a < 0) return false;
    acked_.insert(static_cast<std::size_t>(a));
  }
  // Re-run the cumulative advance in case the record predates it.
  while (base_ < x_.size() && acked_.count(base_)) ++base_;
  rotate_ = 0;
  return true;
}

std::unique_ptr<sim::ISender> SelectiveRepeatSender::clone() const {
  return std::make_unique<SelectiveRepeatSender>(*this);
}

SelectiveRepeatReceiver::SelectiveRepeatReceiver(int domain_size, int window)
    : domain_size_(domain_size), window_(static_cast<std::size_t>(window)) {
  STPX_EXPECT(domain_size >= 1,
              "SelectiveRepeatReceiver: domain must be non-empty");
  STPX_EXPECT(window >= 1, "SelectiveRepeatReceiver: window must be positive");
}

void SelectiveRepeatReceiver::start() {
  written_ = 0;
  buffer_.clear();
  pending_acks_.clear();
  pending_writes_.clear();
}

sim::ReceiverEffect SelectiveRepeatReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void SelectiveRepeatReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "SelectiveRepeatReceiver: malformed message");
  const std::int64_t seqno = msg / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  const std::int64_t frontier =
      written_ + static_cast<std::int64_t>(pending_writes_.size());
  // Every arrival is (re-)acknowledged — the sender may be retransmitting
  // because our previous ack was deleted.
  pending_acks_.push_back(sim::MsgId{seqno});
  if (seqno < frontier) return;  // duplicate of something already accepted
  if (seqno >= frontier + static_cast<std::int64_t>(window_)) return;
  buffer_.emplace(seqno, item);  // no-op if already buffered
  // Drain the contiguous run into pending writes.
  auto it = buffer_.find(written_ +
                         static_cast<std::int64_t>(pending_writes_.size()));
  while (it != buffer_.end()) {
    pending_writes_.push_back(it->second);
    buffer_.erase(it);
    it = buffer_.find(written_ +
                      static_cast<std::int64_t>(pending_writes_.size()));
  }
}

std::string SelectiveRepeatReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kSrReceiverTag);
  w.i64(written_);
  std::vector<std::int64_t> buf;
  buf.reserve(buffer_.size() * 2);
  for (const auto& [seqno, item] : buffer_) {
    buf.push_back(seqno);
    buf.push_back(item);
  }
  w.vec(buf);
  std::vector<std::int64_t> acks(pending_acks_.begin(), pending_acks_.end());
  w.vec(acks);
  write_items(w, pending_writes_);
  return w.str();
}

bool SelectiveRepeatReceiver::restore_state(const std::string& blob,
                                            const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::vector<std::int64_t> buf;
  std::vector<std::int64_t> acks;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kSrReceiverTag || !r.i64(written) || !r.vec(buf) ||
      !r.vec(acks) || !read_items(r, pending) || !r.done() || written < 0 ||
      buf.size() % 2 != 0) {
    return false;
  }
  written_ = written;
  buffer_.clear();
  for (std::size_t i = 0; i + 1 < buf.size(); i += 2) {
    if (buf[i] < 0 || buf[i + 1] < 0) return false;
    buffer_.emplace(buf[i], static_cast<seq::DataItem>(buf[i + 1]));
  }
  pending_acks_.clear();
  for (std::int64_t a : acks) {
    if (a < 0) return false;
    pending_acks_.push_back(static_cast<sim::MsgId>(a));
  }
  pending_writes_ = std::move(pending);
  reconcile_with_tape(written_, pending_writes_, tape);
  // Anything the tape proves externalized is stale in the reorder buffer.
  buffer_.erase(buffer_.begin(), buffer_.lower_bound(written_));
  return true;
}

std::unique_ptr<sim::IReceiver> SelectiveRepeatReceiver::clone() const {
  return std::make_unique<SelectiveRepeatReceiver>(*this);
}

}  // namespace stpx::proto
