#include "proto/repfree.hpp"

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 131;
constexpr std::int64_t kReceiverTag = 132;
}  // namespace

// ---------------------------------------------------------------- sender --

RepFreeSender::RepFreeSender(int domain_size, RepFreeMode mode)
    : domain_size_(domain_size), mode_(mode) {
  STPX_EXPECT(domain_size >= 1, "RepFreeSender: domain must be non-empty");
}

void RepFreeSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::repetition_free(x),
              "RepFreeSender: input must be repetition-free (outside 𝒳)");
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "RepFreeSender: input outside domain");
  x_ = x;
  next_ = 0;
  sent_current_ = false;
}

sim::SenderEffect RepFreeSender::on_step() {
  if (next_ >= x_.size()) return {};  // everything acknowledged
  if (mode_ == RepFreeMode::kDup && sent_current_) {
    // Dup channel: the first copy is replayable forever; sending another
    // identical message would change nothing.
    return {};
  }
  sent_current_ = true;
  return sim::SenderEffect{.send = sim::MsgId{x_[next_]}};
}

void RepFreeSender::on_deliver(sim::MsgId msg) {
  // Only the acknowledgement of the *current* item advances the protocol;
  // acks of earlier items (replayed or reordered) are stale and ignored —
  // repetition-freedom makes the comparison unambiguous.
  if (next_ < x_.size() && msg == sim::MsgId{x_[next_]}) {
    ++next_;
    sent_current_ = false;
  }
}

std::string RepFreeSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  return w.str();
}

bool RepFreeSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) || !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  // Treat the in-flight copy as lost; dup mode re-sends once, del mode
  // retransmits anyway.
  sent_current_ = false;
  return true;
}

std::unique_ptr<sim::ISender> RepFreeSender::clone() const {
  return std::make_unique<RepFreeSender>(*this);
}

std::string RepFreeSender::name() const {
  return mode_ == RepFreeMode::kDup ? "repfree-dup-sender"
                                    : "repfree-del-sender";
}

// -------------------------------------------------------------- receiver --

RepFreeReceiver::RepFreeReceiver(int domain_size, RepFreeMode mode)
    : domain_size_(domain_size), mode_(mode) {
  STPX_EXPECT(domain_size >= 1, "RepFreeReceiver: domain must be non-empty");
}

void RepFreeReceiver::start() {
  seen_.assign(static_cast<std::size_t>(domain_size_), false);
  written_ = 0;
  pending_writes_.clear();
  pending_acks_.clear();
  last_ack_.reset();
}

sim::ReceiverEffect RepFreeReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  } else if (mode_ == RepFreeMode::kDel && last_ack_) {
    // Deletion channel: the ack may have been deleted; keep re-acking the
    // most recently written item until the sender moves on.
    eff.send = *last_ack_;
  }
  return eff;
}

void RepFreeReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= domain_size_) return;  // outside M^S: ignore
  const auto idx = static_cast<std::size_t>(msg);
  if (seen_[idx]) return;  // an old message, replayed or reordered: ignore
  seen_[idx] = true;
  pending_writes_.push_back(static_cast<seq::DataItem>(msg));
  pending_acks_.push_back(msg);
  last_ack_ = msg;
}

std::string RepFreeReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(written_);
  std::vector<std::int64_t> seen;
  seen.reserve(seen_.size());
  for (bool b : seen_) seen.push_back(b ? 1 : 0);
  w.vec(seen);
  write_items(w, pending_writes_);
  std::vector<std::int64_t> acks(pending_acks_.begin(), pending_acks_.end());
  w.vec(acks);
  w.i64(last_ack_ ? static_cast<std::int64_t>(*last_ack_) : -1);
  return w.str();
}

bool RepFreeReceiver::restore_state(const std::string& blob,
                                    const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::vector<std::int64_t> seen;
  std::vector<seq::DataItem> pending;
  std::vector<std::int64_t> acks;
  std::int64_t last = -1;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(written) || !r.vec(seen) ||
      !read_items(r, pending) || !r.vec(acks) || !r.i64(last) || !r.done() ||
      written < 0 || seen.size() != static_cast<std::size_t>(domain_size_)) {
    return false;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 0 && seen[i] != 1) return false;
    seen_[i] = seen[i] == 1;
  }
  written_ = written;
  pending_writes_ = std::move(pending);
  pending_acks_.clear();
  for (std::int64_t a : acks) {
    if (a < 0 || a >= domain_size_) return false;
    pending_acks_.push_back(static_cast<sim::MsgId>(a));
  }
  if (last < -1 || last >= domain_size_) return false;
  last_ack_ = last < 0 ? std::nullopt
                       : std::optional<sim::MsgId>(static_cast<sim::MsgId>(last));
  reconcile_with_tape(written_, pending_writes_, tape);
  // The engine-owned tape is ground truth for what was externalized: even if
  // the recovered record predates some writes, every taped item must stay in
  // seen_ (the only replay defence) and the re-ack target must cover the
  // newest taped item so a stalled sender can still be unstuck.
  for (seq::DataItem item : tape) {
    if (item >= 0 && item < domain_size_) {
      seen_[static_cast<std::size_t>(item)] = true;
    }
  }
  if (!tape.empty()) last_ack_ = sim::MsgId{tape.back()};
  return true;
}

std::unique_ptr<sim::IReceiver> RepFreeReceiver::clone() const {
  return std::make_unique<RepFreeReceiver>(*this);
}

std::string RepFreeReceiver::name() const {
  return mode_ == RepFreeMode::kDup ? "repfree-dup-receiver"
                                    : "repfree-del-receiver";
}

}  // namespace stpx::proto
