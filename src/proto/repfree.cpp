#include "proto/repfree.hpp"

#include "util/expect.hpp"

namespace stpx::proto {

// ---------------------------------------------------------------- sender --

RepFreeSender::RepFreeSender(int domain_size, RepFreeMode mode)
    : domain_size_(domain_size), mode_(mode) {
  STPX_EXPECT(domain_size >= 1, "RepFreeSender: domain must be non-empty");
}

void RepFreeSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::repetition_free(x),
              "RepFreeSender: input must be repetition-free (outside 𝒳)");
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "RepFreeSender: input outside domain");
  x_ = x;
  next_ = 0;
  sent_current_ = false;
}

sim::SenderEffect RepFreeSender::on_step() {
  if (next_ >= x_.size()) return {};  // everything acknowledged
  if (mode_ == RepFreeMode::kDup && sent_current_) {
    // Dup channel: the first copy is replayable forever; sending another
    // identical message would change nothing.
    return {};
  }
  sent_current_ = true;
  return sim::SenderEffect{.send = sim::MsgId{x_[next_]}};
}

void RepFreeSender::on_deliver(sim::MsgId msg) {
  // Only the acknowledgement of the *current* item advances the protocol;
  // acks of earlier items (replayed or reordered) are stale and ignored —
  // repetition-freedom makes the comparison unambiguous.
  if (next_ < x_.size() && msg == sim::MsgId{x_[next_]}) {
    ++next_;
    sent_current_ = false;
  }
}

std::unique_ptr<sim::ISender> RepFreeSender::clone() const {
  return std::make_unique<RepFreeSender>(*this);
}

std::string RepFreeSender::name() const {
  return mode_ == RepFreeMode::kDup ? "repfree-dup-sender"
                                    : "repfree-del-sender";
}

// -------------------------------------------------------------- receiver --

RepFreeReceiver::RepFreeReceiver(int domain_size, RepFreeMode mode)
    : domain_size_(domain_size), mode_(mode) {
  STPX_EXPECT(domain_size >= 1, "RepFreeReceiver: domain must be non-empty");
}

void RepFreeReceiver::start() {
  seen_.assign(static_cast<std::size_t>(domain_size_), false);
  pending_writes_.clear();
  pending_acks_.clear();
  last_ack_.reset();
}

sim::ReceiverEffect RepFreeReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  } else if (mode_ == RepFreeMode::kDel && last_ack_) {
    // Deletion channel: the ack may have been deleted; keep re-acking the
    // most recently written item until the sender moves on.
    eff.send = *last_ack_;
  }
  return eff;
}

void RepFreeReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < domain_size_,
              "RepFreeReceiver: message outside M^S");
  const auto idx = static_cast<std::size_t>(msg);
  if (seen_[idx]) return;  // an old message, replayed or reordered: ignore
  seen_[idx] = true;
  pending_writes_.push_back(static_cast<seq::DataItem>(msg));
  pending_acks_.push_back(msg);
  last_ack_ = msg;
}

std::unique_ptr<sim::IReceiver> RepFreeReceiver::clone() const {
  return std::make_unique<RepFreeReceiver>(*this);
}

std::string RepFreeReceiver::name() const {
  return mode_ == RepFreeMode::kDup ? "repfree-dup-receiver"
                                    : "repfree-del-receiver";
}

}  // namespace stpx::proto
