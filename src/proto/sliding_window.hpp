// Sliding-window baselines with unbounded sequence numbers.
//
// Go-Back-N pipelines W in-flight items with cumulative acks (receiver
// accepts only in-order delivery, like Stenning's); Selective Repeat buffers
// out-of-order arrivals within the window and acknowledges each item
// individually.  Both tolerate reordering, duplication, and deletion — at
// the cost of unbounded headers, the resource the paper's bounds forbid.
// They serve as the "what finite alphabets give up" baselines in F2.
//
// Encodings (unbounded ids):
//   S -> R : seqno * |D| + item
//   R -> S : Go-Back-N: cumulative count of items written;
//            Selective Repeat: the individual seqno being acknowledged.
#pragma once

#include <map>
#include <set>

#include "sim/process.hpp"

namespace stpx::proto {

class GoBackNSender final : public sim::ISender {
 public:
  GoBackNSender(int domain_size, int window);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "go-back-n-sender"; }

  std::size_t acked() const { return base_; }

 private:
  int domain_size_;
  std::size_t window_;
  seq::Sequence x_;
  std::size_t base_ = 0;    // first unacknowledged index
  std::size_t rotate_ = 0;  // round-robin cursor within the window
};

class SelectiveRepeatSender final : public sim::ISender {
 public:
  SelectiveRepeatSender(int domain_size, int window);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "selective-repeat-sender"; }

  std::size_t acked_count() const { return acked_.size(); }

 private:
  int domain_size_;
  std::size_t window_;
  seq::Sequence x_;
  std::size_t base_ = 0;  // first unacknowledged index
  std::set<std::size_t> acked_;
  std::size_t rotate_ = 0;
};

class SelectiveRepeatReceiver final : public sim::IReceiver {
 public:
  SelectiveRepeatReceiver(int domain_size, int window);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "selective-repeat-receiver"; }

 private:
  int domain_size_;
  std::size_t window_;
  std::int64_t written_ = 0;  // emitted writes
  std::map<std::int64_t, seq::DataItem> buffer_;
  std::vector<sim::MsgId> pending_acks_;
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
