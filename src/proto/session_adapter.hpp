// Session adapters: drive an ISender / IReceiver without the simulation
// engine.
//
// The engine owns a global lock-step clock, the output tape, and the
// online safety check; a network session has none of those — frames
// arrive whenever the transport delivers them and steps happen whenever
// the mux sweeps the session.  An ISessionEndpoint is the minimal
// poll-driven contract the mux needs:
//
//   on_deliver(msg)  — a decoded frame's payload arrived;
//   step()           — one protocol step; returns at most one outgoing
//                      message (the paper's one-message-per-step model);
//   done()/safety_ok()/items_done() — session-local verdict inputs.
//
// The receiver adapter owns the session's output tape and re-implements
// the engine's online prefix-safety check against the expected sequence:
// every write is compared as it lands, so a violation is caught at the
// step it happens ("prefix at all times"), not at the end of the run.
//
// Both adapters apply the defensive-ignore convention at the trust
// boundary: a delivered message outside the non-negative id space every
// stpx protocol uses is dropped before the protocol sees it (protocols
// assert on malformed ids — a contract violation in the simulator, but
// over a wire it is just a hostile or buggy peer).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/process.hpp"

namespace stpx::proto {

class ISessionEndpoint {
 public:
  virtual ~ISessionEndpoint() = default;

  /// A payload arrived for this session.
  virtual void on_deliver(sim::MsgId msg) = 0;

  /// The peer signalled completion (a FIN frame).  Default: ignore —
  /// only sender endpoints act on it.
  virtual void on_fin() {}

  /// Take one protocol step; at most one message out.
  virtual std::optional<sim::MsgId> step() = 0;

  /// The endpoint's local work is finished (receiver: the full expected
  /// sequence is written; sender: the peer's receipt was confirmed).
  virtual bool done() const = 0;

  /// Prefix safety so far (senders are trivially safe — they own no tape).
  virtual bool safety_ok() const = 0;

  /// Items transferred so far from this endpoint's point of view.
  virtual std::size_t items_done() const = 0;

  virtual std::string name() const = 0;

  /// Durable-state plumbing for the session manifest (docs/RECOVERY.md).
  /// save_state() is an opaque blob (empty = nothing durable yet);
  /// restore_state() rebuilds a freshly-constructed endpoint from one.
  /// A false return means the blob was unusable and the endpoint is in
  /// its cold-started state — safe to run, durable position lost.  A
  /// true return with safety_ok() == false means the blob itself
  /// witnessed an inconsistency (e.g. a restored tape that is not a
  /// prefix of the expected sequence): the caller must surface that as a
  /// recovery violation, never run the session as if nothing happened.
  virtual std::string save_state() const { return {}; }
  virtual bool restore_state(const std::string& blob) {
    (void)blob;
    return false;
  }
};

/// Wraps an ISender and its input sequence.  done() flips when finish()
/// is called — completion is confirmed by the peer (the mux calls it on a
/// FIN frame), because a sender cannot observe the remote tape.
class SenderSessionEndpoint final : public ISessionEndpoint {
 public:
  SenderSessionEndpoint(std::unique_ptr<sim::ISender> sender,
                        seq::Sequence x);

  void on_deliver(sim::MsgId msg) override;
  void on_fin() override { finish(); }
  std::optional<sim::MsgId> step() override;
  bool done() const override { return finished_; }
  bool safety_ok() const override { return true; }
  std::size_t items_done() const override {
    return finished_ ? x_.size() : 0;
  }
  std::string name() const override { return sender_->name(); }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;

  /// The peer confirmed full receipt (FIN).
  void finish() { finished_ = true; }
  const seq::Sequence& input() const { return x_; }

 private:
  std::unique_ptr<sim::ISender> sender_;
  seq::Sequence x_;
  bool finished_ = false;
};

/// Wraps an IReceiver, the session's output tape, and the expected input
/// it must reproduce.  Safety (prefix at all times) is checked write by
/// write; once broken it stays broken and the endpoint goes silent.
class ReceiverSessionEndpoint final : public ISessionEndpoint {
 public:
  ReceiverSessionEndpoint(std::unique_ptr<sim::IReceiver> receiver,
                          seq::Sequence expected);

  void on_deliver(sim::MsgId msg) override;
  std::optional<sim::MsgId> step() override;
  bool done() const override {
    return safety_ok_ && y_.size() == expected_.size();
  }
  bool safety_ok() const override { return safety_ok_; }
  std::size_t items_done() const override { return y_.size(); }
  std::string name() const override { return receiver_->name(); }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;

  const seq::Sequence& output() const { return y_; }
  const seq::Sequence& expected() const { return expected_; }

 private:
  std::unique_ptr<sim::IReceiver> receiver_;
  seq::Sequence expected_;
  seq::Sequence y_;
  bool safety_ok_ = true;
};

}  // namespace stpx::proto
