#include "proto/hybrid.hpp"

#include <algorithm>

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 171;
constexpr std::int64_t kReceiverTag = 172;
}  // namespace

// ---------------------------------------------------------------- sender --

HybridSender::HybridSender(int domain_size, int timeout)
    : domain_size_(domain_size), timeout_(timeout) {
  STPX_EXPECT(domain_size >= 1, "HybridSender: domain must be non-empty");
  STPX_EXPECT(timeout >= 1, "HybridSender: timeout must be positive");
}

void HybridSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "HybridSender: input outside domain");
  x_ = x;
  next_ = 0;
  bit_ = 0;
  steps_since_progress_ = 0;
  sent_current_ = false;
  rev_idx_ = -1;
  rev_bit_ = 0;
  phase_ = x_.empty() ? HybridPhase::kDone : HybridPhase::kAbp;
}

sim::SenderEffect HybridSender::on_step() {
  switch (phase_) {
    case HybridPhase::kAbp: {
      if (next_ >= x_.size()) {
        phase_ = HybridPhase::kDone;
        return {};
      }
      if (++steps_since_progress_ > timeout_) {
        // Fault detected: abandon ABP and fall back to the whole-sequence
        // reverse transfer on a disjoint alphabet.
        phase_ = HybridPhase::kReverse;
        rev_idx_ = static_cast<std::int64_t>(x_.size()) - 1;
        rev_bit_ = 0;
        return on_step();
      }
      // Send-once-and-wait: the fast path does NOT retransmit — a lost
      // message is what hands control to the recovery path, which is the
      // whole point of the §5 construction.  (A retransmitting fast path
      // would absorb single faults itself and the fallback, whose
      // unboundedness §5 criticizes, would never be exercised.)
      if (sent_current_) return {};
      sent_current_ = true;
      return sim::SenderEffect{
          .send = sim::MsgId{bit_ * domain_size_ + x_[next_]}};
    }
    case HybridPhase::kReverse: {
      if (rev_idx_ < 0) {
        phase_ = HybridPhase::kEnd;
        return on_step();
      }
      return sim::SenderEffect{
          .send = sim::MsgId{2 * domain_size_ + rev_bit_ * domain_size_ +
                             x_[static_cast<std::size_t>(rev_idx_)]}};
    }
    case HybridPhase::kEnd:
      return sim::SenderEffect{.send = sim::MsgId{4 * domain_size_}};
    case HybridPhase::kDone:
      return {};
  }
  return {};
}

void HybridSender::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= 5) return;  // outside M^R: ignore
  switch (phase_) {
    case HybridPhase::kAbp:
      if ((msg == 0 || msg == 1) && next_ < x_.size() && msg == bit_) {
        ++next_;
        bit_ ^= 1;
        steps_since_progress_ = 0;
        sent_current_ = false;
        if (next_ >= x_.size()) phase_ = HybridPhase::kDone;
      }
      break;
    case HybridPhase::kReverse:
      if ((msg == 2 || msg == 3) && msg - 2 == rev_bit_) {
        --rev_idx_;
        rev_bit_ ^= 1;
        if (rev_idx_ < 0) phase_ = HybridPhase::kEnd;
      }
      break;
    case HybridPhase::kEnd:
      if (msg == 4) phase_ = HybridPhase::kDone;
      break;
    case HybridPhase::kDone:
      break;  // stale acks after completion are harmless
  }
}

std::string HybridSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.i64(static_cast<std::int64_t>(phase_));
  w.u64(next_);
  w.i64(bit_);
  w.i64(rev_idx_);
  w.i64(rev_bit_);
  return w.str();
}

bool HybridSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t phase = 0;
  std::uint64_t next = 0;
  std::int64_t bit = 0;
  std::int64_t rev_idx = -1;
  std::int64_t rev_bit = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.i64(phase) || !r.u64(next) ||
      !r.i64(bit) || !r.i64(rev_idx) || !r.i64(rev_bit) || !r.done()) {
    return false;
  }
  if (phase < 0 || phase > 3 || next > x_.size() || (bit != 0 && bit != 1) ||
      rev_idx < -1 || rev_idx >= static_cast<std::int64_t>(x_.size()) ||
      (rev_bit != 0 && rev_bit != 1)) {
    return false;
  }
  phase_ = static_cast<HybridPhase>(phase);
  next_ = static_cast<std::size_t>(next);
  bit_ = static_cast<int>(bit);
  rev_idx_ = rev_idx;
  rev_bit_ = static_cast<int>(rev_bit);
  // Progress/scratch counters are volatile: restart the timeout window and
  // treat any in-flight fast-path copy as lost (worst case the timeout fires
  // again and recovery re-runs, which is safe).
  steps_since_progress_ = 0;
  sent_current_ = false;
  return true;
}

std::unique_ptr<sim::ISender> HybridSender::clone() const {
  return std::make_unique<HybridSender>(*this);
}

// -------------------------------------------------------------- receiver --

HybridReceiver::HybridReceiver(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "HybridReceiver: domain must be non-empty");
}

void HybridReceiver::start() {
  phase_ = HybridPhase::kAbp;
  expected_bit_ = 0;
  written_count_ = 0;
  expected_rev_bit_ = 0;
  rev_buffer_.clear();
  finalized_ = false;
  pending_acks_.clear();
  pending_writes_.clear();
}

sim::ReceiverEffect HybridReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void HybridReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg > 4 * domain_size_) return;  // outside M^S: ignore
  if (msg < 2 * domain_size_) {
    // ABP data.  Once we have switched to the recovery path, stale fast-path
    // messages are ignored (the paper's variant resumes ABP here; see the
    // header for why we complete recovery instead).
    if (phase_ != HybridPhase::kAbp) return;
    const int bit = static_cast<int>(msg) / domain_size_;
    const auto item = static_cast<seq::DataItem>(msg % domain_size_);
    if (bit == expected_bit_) {
      pending_writes_.push_back(item);
      ++written_count_;
      expected_bit_ ^= 1;
    }
    pending_acks_.push_back(sim::MsgId{bit});
    return;
  }
  if (msg < 4 * domain_size_) {
    // Reverse-transfer data: switch to recovery on first sight.
    if (phase_ == HybridPhase::kAbp) phase_ = HybridPhase::kReverse;
    if (finalized_) return;
    const int bit = static_cast<int>(msg - 2 * domain_size_) / domain_size_;
    const auto item = static_cast<seq::DataItem>(msg % domain_size_);
    if (phase_ == HybridPhase::kReverse && bit == expected_rev_bit_) {
      rev_buffer_.push_back(item);
      expected_rev_bit_ ^= 1;
    }
    pending_acks_.push_back(sim::MsgId{2 + bit});
    return;
  }
  // END marker: the reverse buffer now holds all of X, back to front.
  if (!finalized_) {
    seq::Sequence full(rev_buffer_.rbegin(), rev_buffer_.rend());
    if (written_count_ > full.size()) {
      // A forged/premature END: the buffer is shorter than the prefix we
      // already wrote, so this marker cannot be genuine.  Ignore it and
      // keep collecting the reverse transfer.
      pending_acks_.push_back(sim::MsgId{4});
      return;
    }
    finalized_ = true;
    phase_ = HybridPhase::kDone;
    for (std::size_t i = written_count_; i < full.size(); ++i) {
      pending_writes_.push_back(full[i]);
    }
    written_count_ = full.size();
  }
  pending_acks_.push_back(sim::MsgId{4});
}

std::string HybridReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(static_cast<std::int64_t>(phase_));
  w.i64(expected_bit_);
  w.u64(written_count_);
  w.i64(expected_rev_bit_);
  write_items(w, rev_buffer_);
  w.boolean(finalized_);
  std::vector<std::int64_t> acks(pending_acks_.begin(), pending_acks_.end());
  w.vec(acks);
  write_items(w, pending_writes_);
  return w.str();
}

bool HybridReceiver::restore_state(const std::string& blob,
                                   const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t phase = 0;
  std::int64_t expected_bit = 0;
  std::uint64_t written_count = 0;
  std::int64_t expected_rev_bit = 0;
  seq::Sequence rev_buffer;
  bool finalized = false;
  std::vector<std::int64_t> acks;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(phase) ||
      !r.i64(expected_bit) || !r.u64(written_count) ||
      !r.i64(expected_rev_bit) || !read_items(r, rev_buffer) ||
      !r.boolean(finalized) || !r.vec(acks) || !read_items(r, pending) ||
      !r.done()) {
    return false;
  }
  if (phase < 0 || phase > 3 || (expected_bit != 0 && expected_bit != 1) ||
      (expected_rev_bit != 0 && expected_rev_bit != 1) ||
      written_count < pending.size()) {
    return false;
  }
  phase_ = static_cast<HybridPhase>(phase);
  expected_bit_ = static_cast<int>(expected_bit);
  expected_rev_bit_ = static_cast<int>(expected_rev_bit);
  rev_buffer_ = std::move(rev_buffer);
  finalized_ = finalized;
  pending_acks_.clear();
  for (std::int64_t a : acks) {
    if (a < 0 || a > 4) return false;
    pending_acks_.push_back(static_cast<sim::MsgId>(a));
  }
  // written_count_ is the ACCEPTED count (externalized writes + pending);
  // split off the externalized part, let the tape arbitrate it, and restore
  // the invariant afterwards.
  std::int64_t written = static_cast<std::int64_t>(written_count) -
                         static_cast<std::int64_t>(pending.size());
  reconcile_with_tape(written, pending, tape);
  pending_writes_ = std::move(pending);
  written_count_ = static_cast<std::size_t>(written) + pending_writes_.size();
  return true;
}

std::unique_ptr<sim::IReceiver> HybridReceiver::clone() const {
  return std::make_unique<HybridReceiver>(*this);
}

}  // namespace stpx::proto
