#include "proto/hybrid.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::proto {

// ---------------------------------------------------------------- sender --

HybridSender::HybridSender(int domain_size, int timeout)
    : domain_size_(domain_size), timeout_(timeout) {
  STPX_EXPECT(domain_size >= 1, "HybridSender: domain must be non-empty");
  STPX_EXPECT(timeout >= 1, "HybridSender: timeout must be positive");
}

void HybridSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "HybridSender: input outside domain");
  x_ = x;
  next_ = 0;
  bit_ = 0;
  steps_since_progress_ = 0;
  sent_current_ = false;
  rev_idx_ = -1;
  rev_bit_ = 0;
  phase_ = x_.empty() ? HybridPhase::kDone : HybridPhase::kAbp;
}

sim::SenderEffect HybridSender::on_step() {
  switch (phase_) {
    case HybridPhase::kAbp: {
      if (next_ >= x_.size()) {
        phase_ = HybridPhase::kDone;
        return {};
      }
      if (++steps_since_progress_ > timeout_) {
        // Fault detected: abandon ABP and fall back to the whole-sequence
        // reverse transfer on a disjoint alphabet.
        phase_ = HybridPhase::kReverse;
        rev_idx_ = static_cast<std::int64_t>(x_.size()) - 1;
        rev_bit_ = 0;
        return on_step();
      }
      // Send-once-and-wait: the fast path does NOT retransmit — a lost
      // message is what hands control to the recovery path, which is the
      // whole point of the §5 construction.  (A retransmitting fast path
      // would absorb single faults itself and the fallback, whose
      // unboundedness §5 criticizes, would never be exercised.)
      if (sent_current_) return {};
      sent_current_ = true;
      return sim::SenderEffect{
          .send = sim::MsgId{bit_ * domain_size_ + x_[next_]}};
    }
    case HybridPhase::kReverse: {
      if (rev_idx_ < 0) {
        phase_ = HybridPhase::kEnd;
        return on_step();
      }
      return sim::SenderEffect{
          .send = sim::MsgId{2 * domain_size_ + rev_bit_ * domain_size_ +
                             x_[static_cast<std::size_t>(rev_idx_)]}};
    }
    case HybridPhase::kEnd:
      return sim::SenderEffect{.send = sim::MsgId{4 * domain_size_}};
    case HybridPhase::kDone:
      return {};
  }
  return {};
}

void HybridSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < 5, "HybridSender: ack outside M^R");
  switch (phase_) {
    case HybridPhase::kAbp:
      if ((msg == 0 || msg == 1) && next_ < x_.size() && msg == bit_) {
        ++next_;
        bit_ ^= 1;
        steps_since_progress_ = 0;
        sent_current_ = false;
        if (next_ >= x_.size()) phase_ = HybridPhase::kDone;
      }
      break;
    case HybridPhase::kReverse:
      if ((msg == 2 || msg == 3) && msg - 2 == rev_bit_) {
        --rev_idx_;
        rev_bit_ ^= 1;
        if (rev_idx_ < 0) phase_ = HybridPhase::kEnd;
      }
      break;
    case HybridPhase::kEnd:
      if (msg == 4) phase_ = HybridPhase::kDone;
      break;
    case HybridPhase::kDone:
      break;  // stale acks after completion are harmless
  }
}

std::unique_ptr<sim::ISender> HybridSender::clone() const {
  return std::make_unique<HybridSender>(*this);
}

// -------------------------------------------------------------- receiver --

HybridReceiver::HybridReceiver(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "HybridReceiver: domain must be non-empty");
}

void HybridReceiver::start() {
  phase_ = HybridPhase::kAbp;
  expected_bit_ = 0;
  written_count_ = 0;
  expected_rev_bit_ = 0;
  rev_buffer_.clear();
  finalized_ = false;
  pending_acks_.clear();
  pending_writes_.clear();
}

sim::ReceiverEffect HybridReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void HybridReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg <= 4 * domain_size_,
              "HybridReceiver: message outside M^S");
  if (msg < 2 * domain_size_) {
    // ABP data.  Once we have switched to the recovery path, stale fast-path
    // messages are ignored (the paper's variant resumes ABP here; see the
    // header for why we complete recovery instead).
    if (phase_ != HybridPhase::kAbp) return;
    const int bit = static_cast<int>(msg) / domain_size_;
    const auto item = static_cast<seq::DataItem>(msg % domain_size_);
    if (bit == expected_bit_) {
      pending_writes_.push_back(item);
      ++written_count_;
      expected_bit_ ^= 1;
    }
    pending_acks_.push_back(sim::MsgId{bit});
    return;
  }
  if (msg < 4 * domain_size_) {
    // Reverse-transfer data: switch to recovery on first sight.
    if (phase_ == HybridPhase::kAbp) phase_ = HybridPhase::kReverse;
    if (finalized_) return;
    const int bit = static_cast<int>(msg - 2 * domain_size_) / domain_size_;
    const auto item = static_cast<seq::DataItem>(msg % domain_size_);
    if (phase_ == HybridPhase::kReverse && bit == expected_rev_bit_) {
      rev_buffer_.push_back(item);
      expected_rev_bit_ ^= 1;
    }
    pending_acks_.push_back(sim::MsgId{2 + bit});
    return;
  }
  // END marker: the reverse buffer now holds all of X, back to front.
  if (!finalized_) {
    finalized_ = true;
    phase_ = HybridPhase::kDone;
    seq::Sequence full(rev_buffer_.rbegin(), rev_buffer_.rend());
    STPX_EXPECT(written_count_ <= full.size(),
                "HybridReceiver: prefix longer than reconstructed sequence");
    for (std::size_t i = written_count_; i < full.size(); ++i) {
      pending_writes_.push_back(full[i]);
    }
    written_count_ = full.size();
  }
  pending_acks_.push_back(sim::MsgId{4});
}

std::unique_ptr<sim::IReceiver> HybridReceiver::clone() const {
  return std::make_unique<HybridReceiver>(*this);
}

}  // namespace stpx::proto
