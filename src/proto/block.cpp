#include "proto/block.hpp"

#include "util/expect.hpp"

namespace stpx::proto {

namespace {

/// d^b, validated small enough to embed in MsgId comfortably.
std::int64_t power(int d, int b) {
  std::int64_t out = 1;
  for (int i = 0; i < b; ++i) {
    out *= d;
    STPX_EXPECT(out <= (std::int64_t{1} << 40), "block space too large");
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- sender --

BlockSender::BlockSender(int domain_size, int block_size, int max_len)
    : domain_size_(domain_size),
      block_size_(block_size),
      max_len_(max_len) {
  STPX_EXPECT(domain_size >= 1, "BlockSender: domain must be non-empty");
  STPX_EXPECT(block_size >= 1, "BlockSender: block size must be positive");
  STPX_EXPECT(max_len >= 0, "BlockSender: negative max length");
  (void)power(domain_size_, block_size_);  // validate
}

int BlockSender::alphabet_size() const {
  return static_cast<int>(2 * power(domain_size_, block_size_)) + max_len_ +
         1;
}

void BlockSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "BlockSender: input outside domain");
  STPX_EXPECT(x.size() <= static_cast<std::size_t>(max_len_),
              "BlockSender: input longer than max_len");
  x_ = x;
  header_acked_ = false;
  next_block_ = 0;
  block_count_ = (x.size() + static_cast<std::size_t>(block_size_) - 1) /
                 static_cast<std::size_t>(block_size_);
}

sim::MsgId BlockSender::block_message(std::size_t block_index) const {
  const std::int64_t space = power(domain_size_, block_size_);
  std::int64_t content = 0;
  std::int64_t digit = 1;
  for (int j = 0; j < block_size_; ++j) {
    const std::size_t pos =
        block_index * static_cast<std::size_t>(block_size_) +
        static_cast<std::size_t>(j);
    const seq::DataItem item = pos < x_.size() ? x_[pos] : 0;  // padding
    content += digit * item;
    digit *= domain_size_;
  }
  const std::int64_t bit = static_cast<std::int64_t>(block_index % 2);
  return bit * space + content;
}

sim::SenderEffect BlockSender::on_step() {
  if (!header_acked_) {
    // Header: announce |X| so the receiver knows where the padding starts.
    const std::int64_t space = power(domain_size_, block_size_);
    return sim::SenderEffect{
        .send = 2 * space + static_cast<sim::MsgId>(x_.size())};
  }
  if (next_block_ >= block_count_) return {};
  return sim::SenderEffect{.send = block_message(next_block_)};
}

void BlockSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < 3, "BlockSender: ack outside M^R");
  if (msg == 2) {
    header_acked_ = true;
    return;
  }
  if (header_acked_ && next_block_ < block_count_ &&
      msg == static_cast<sim::MsgId>(next_block_ % 2)) {
    ++next_block_;
  }
}

std::unique_ptr<sim::ISender> BlockSender::clone() const {
  return std::make_unique<BlockSender>(*this);
}

// -------------------------------------------------------------- receiver --

BlockReceiver::BlockReceiver(int domain_size, int block_size, int max_len)
    : domain_size_(domain_size),
      block_size_(block_size),
      max_len_(max_len) {
  STPX_EXPECT(domain_size >= 1, "BlockReceiver: domain must be non-empty");
  STPX_EXPECT(block_size >= 1, "BlockReceiver: block size must be positive");
  STPX_EXPECT(max_len >= 0, "BlockReceiver: negative max length");
  (void)power(domain_size_, block_size_);
}

void BlockReceiver::start() {
  expected_len_ = -1;
  expected_bit_ = 0;
  received_items_ = 0;
  write_queue_.clear();
  pending_acks_.clear();
}

sim::ReceiverEffect BlockReceiver::on_step() {
  sim::ReceiverEffect eff;
  // The §2.4 point: the model writes ONE item per step, however many a
  // message conveyed — knowledge runs ahead of the output tape.
  if (!write_queue_.empty()) {
    eff.writes.push_back(write_queue_.front());
    write_queue_.erase(write_queue_.begin());
  }
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void BlockReceiver::on_deliver(sim::MsgId msg) {
  const std::int64_t space = power(domain_size_, block_size_);
  STPX_EXPECT(msg >= 0 && msg <= 2 * space + max_len_,
              "BlockReceiver: message outside M^S");
  if (msg >= 2 * space) {
    // Header.
    if (expected_len_ < 0) expected_len_ = msg - 2 * space;
    pending_acks_.push_back(2);
    return;
  }
  const int bit = static_cast<int>(msg / space);
  std::int64_t content = msg % space;
  pending_acks_.push_back(sim::MsgId{bit});
  if (expected_len_ < 0 || bit != expected_bit_) return;  // stale block
  // Decode the block; accept only the non-padding positions.
  for (int j = 0; j < block_size_; ++j) {
    const auto item = static_cast<seq::DataItem>(content % domain_size_);
    content /= domain_size_;
    if (static_cast<std::int64_t>(received_items_) < expected_len_) {
      write_queue_.push_back(item);
      ++received_items_;
    }
  }
  expected_bit_ ^= 1;
}

std::unique_ptr<sim::IReceiver> BlockReceiver::clone() const {
  return std::make_unique<BlockReceiver>(*this);
}

}  // namespace stpx::proto
