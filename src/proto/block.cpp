#include "proto/block.hpp"

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {

constexpr std::int64_t kSenderTag = 151;
constexpr std::int64_t kReceiverTag = 152;

/// d^b, validated small enough to embed in MsgId comfortably.
std::int64_t power(int d, int b) {
  std::int64_t out = 1;
  for (int i = 0; i < b; ++i) {
    out *= d;
    STPX_EXPECT(out <= (std::int64_t{1} << 40), "block space too large");
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- sender --

BlockSender::BlockSender(int domain_size, int block_size, int max_len)
    : domain_size_(domain_size),
      block_size_(block_size),
      max_len_(max_len) {
  STPX_EXPECT(domain_size >= 1, "BlockSender: domain must be non-empty");
  STPX_EXPECT(block_size >= 1, "BlockSender: block size must be positive");
  STPX_EXPECT(max_len >= 0, "BlockSender: negative max length");
  (void)power(domain_size_, block_size_);  // validate
}

int BlockSender::alphabet_size() const {
  return static_cast<int>(2 * power(domain_size_, block_size_)) + max_len_ +
         1;
}

void BlockSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "BlockSender: input outside domain");
  STPX_EXPECT(x.size() <= static_cast<std::size_t>(max_len_),
              "BlockSender: input longer than max_len");
  x_ = x;
  header_acked_ = false;
  next_block_ = 0;
  block_count_ = (x.size() + static_cast<std::size_t>(block_size_) - 1) /
                 static_cast<std::size_t>(block_size_);
}

sim::MsgId BlockSender::block_message(std::size_t block_index) const {
  const std::int64_t space = power(domain_size_, block_size_);
  std::int64_t content = 0;
  std::int64_t digit = 1;
  for (int j = 0; j < block_size_; ++j) {
    const std::size_t pos =
        block_index * static_cast<std::size_t>(block_size_) +
        static_cast<std::size_t>(j);
    const seq::DataItem item = pos < x_.size() ? x_[pos] : 0;  // padding
    content += digit * item;
    digit *= domain_size_;
  }
  const std::int64_t bit = static_cast<std::int64_t>(block_index % 2);
  return bit * space + content;
}

sim::SenderEffect BlockSender::on_step() {
  if (!header_acked_) {
    // Header: announce |X| so the receiver knows where the padding starts.
    const std::int64_t space = power(domain_size_, block_size_);
    return sim::SenderEffect{
        .send = 2 * space + static_cast<sim::MsgId>(x_.size())};
  }
  if (next_block_ >= block_count_) return {};
  return sim::SenderEffect{.send = block_message(next_block_)};
}

void BlockSender::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= 3) return;  // outside M^R: ignore
  if (msg == 2) {
    header_acked_ = true;
    return;
  }
  if (header_acked_ && next_block_ < block_count_ &&
      msg == static_cast<sim::MsgId>(next_block_ % 2)) {
    ++next_block_;
  }
}

std::string BlockSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.boolean(header_acked_);
  w.u64(next_block_);
  return w.str();
}

bool BlockSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  bool header_acked = false;
  std::uint64_t next_block = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.boolean(header_acked) ||
      !r.u64(next_block) || !r.done()) {
    return false;
  }
  if (next_block > block_count_) return false;
  header_acked_ = header_acked;
  next_block_ = static_cast<std::size_t>(next_block);
  return true;
}

std::unique_ptr<sim::ISender> BlockSender::clone() const {
  return std::make_unique<BlockSender>(*this);
}

// -------------------------------------------------------------- receiver --

BlockReceiver::BlockReceiver(int domain_size, int block_size, int max_len)
    : domain_size_(domain_size),
      block_size_(block_size),
      max_len_(max_len) {
  STPX_EXPECT(domain_size >= 1, "BlockReceiver: domain must be non-empty");
  STPX_EXPECT(block_size >= 1, "BlockReceiver: block size must be positive");
  STPX_EXPECT(max_len >= 0, "BlockReceiver: negative max length");
  (void)power(domain_size_, block_size_);
}

void BlockReceiver::start() {
  expected_len_ = -1;
  expected_bit_ = 0;
  received_items_ = 0;
  write_queue_.clear();
  pending_acks_.clear();
}

sim::ReceiverEffect BlockReceiver::on_step() {
  sim::ReceiverEffect eff;
  // The §2.4 point: the model writes ONE item per step, however many a
  // message conveyed — knowledge runs ahead of the output tape.
  if (!write_queue_.empty()) {
    eff.writes.push_back(write_queue_.front());
    write_queue_.erase(write_queue_.begin());
  }
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  }
  return eff;
}

void BlockReceiver::on_deliver(sim::MsgId msg) {
  const std::int64_t space = power(domain_size_, block_size_);
  if (msg < 0 || msg > 2 * space + max_len_) return;  // outside M^S: ignore
  if (msg >= 2 * space) {
    // Header.
    if (expected_len_ < 0) expected_len_ = msg - 2 * space;
    pending_acks_.push_back(2);
    return;
  }
  const int bit = static_cast<int>(msg / space);
  std::int64_t content = msg % space;
  pending_acks_.push_back(sim::MsgId{bit});
  if (expected_len_ < 0 || bit != expected_bit_) return;  // stale block
  // Decode the block; accept only the non-padding positions.
  for (int j = 0; j < block_size_; ++j) {
    const auto item = static_cast<seq::DataItem>(content % domain_size_);
    content /= domain_size_;
    if (static_cast<std::int64_t>(received_items_) < expected_len_) {
      write_queue_.push_back(item);
      ++received_items_;
    }
  }
  expected_bit_ ^= 1;
}

std::string BlockReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(expected_len_);
  w.i64(expected_bit_);
  w.u64(received_items_);
  write_items(w, write_queue_);
  std::vector<std::int64_t> acks(pending_acks_.begin(), pending_acks_.end());
  w.vec(acks);
  return w.str();
}

bool BlockReceiver::restore_state(const std::string& blob,
                                  const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t expected_len = -1;
  std::int64_t expected_bit = 0;
  std::uint64_t received = 0;
  std::vector<seq::DataItem> queue;
  std::vector<std::int64_t> acks;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(expected_len) ||
      !r.i64(expected_bit) || !r.u64(received) || !read_items(r, queue) ||
      !r.vec(acks) || !r.done() || expected_len < -1 ||
      expected_len > max_len_ || (expected_bit != 0 && expected_bit != 1) ||
      received < queue.size()) {
    return false;
  }
  expected_len_ = expected_len;
  expected_bit_ = static_cast<int>(expected_bit);
  // The accepted count splits into externalized writes plus the queue; let
  // the tape arbitrate the externalized part, then restore the invariant
  // received_items_ == written + |write_queue_|.
  std::int64_t written =
      static_cast<std::int64_t>(received) -
      static_cast<std::int64_t>(queue.size());
  reconcile_with_tape(written, queue, tape);
  write_queue_ = std::move(queue);
  received_items_ = static_cast<std::size_t>(written) + write_queue_.size();
  pending_acks_.clear();
  for (std::int64_t a : acks) {
    if (a < 0 || a > 2) return false;
    pending_acks_.push_back(static_cast<sim::MsgId>(a));
  }
  return true;
}

std::unique_ptr<sim::IReceiver> BlockReceiver::clone() const {
  return std::make_unique<BlockReceiver>(*this);
}

}  // namespace stpx::proto
