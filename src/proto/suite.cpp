#include "proto/suite.hpp"

namespace stpx::proto {

ProtocolPair make_repfree_dup(int domain_size) {
  return {std::make_unique<RepFreeSender>(domain_size, RepFreeMode::kDup),
          std::make_unique<RepFreeReceiver>(domain_size, RepFreeMode::kDup)};
}

ProtocolPair make_repfree_del(int domain_size) {
  return {std::make_unique<RepFreeSender>(domain_size, RepFreeMode::kDel),
          std::make_unique<RepFreeReceiver>(domain_size, RepFreeMode::kDel)};
}

ProtocolPair make_repfree_flood(int domain_size) {
  // Del-mode sender floods retransmissions; dup-mode receiver acks once per
  // item (the ack is replayable forever on a dup channel anyway).
  return {std::make_unique<RepFreeSender>(domain_size, RepFreeMode::kDel),
          std::make_unique<RepFreeReceiver>(domain_size, RepFreeMode::kDup)};
}

ProtocolPair make_abp(int domain_size) {
  return {std::make_unique<AbpSender>(domain_size),
          std::make_unique<AbpReceiver>(domain_size)};
}

ProtocolPair make_stenning(int domain_size, bool sender_ack_rewind) {
  return {std::make_unique<StenningSender>(domain_size, sender_ack_rewind),
          std::make_unique<StenningReceiver>(domain_size)};
}

ProtocolPair make_modk_stenning(int domain_size, int modulus) {
  return {std::make_unique<ModKStenningSender>(domain_size, modulus),
          std::make_unique<ModKStenningReceiver>(domain_size, modulus)};
}

ProtocolPair make_go_back_n(int domain_size, int window) {
  return {std::make_unique<GoBackNSender>(domain_size, window),
          std::make_unique<StenningReceiver>(domain_size)};
}

ProtocolPair make_selective_repeat(int domain_size, int window) {
  return {std::make_unique<SelectiveRepeatSender>(domain_size, window),
          std::make_unique<SelectiveRepeatReceiver>(domain_size, window)};
}

ProtocolPair make_sync_stop_wait(int domain_size) {
  return {std::make_unique<SyncStopWaitSender>(domain_size),
          std::make_unique<SyncStopWaitReceiver>(domain_size)};
}

ProtocolPair make_block(int domain_size, int block_size, int max_len) {
  return {std::make_unique<BlockSender>(domain_size, block_size, max_len),
          std::make_unique<BlockReceiver>(domain_size, block_size, max_len)};
}

ProtocolPair make_hybrid(int domain_size, int timeout) {
  return {std::make_unique<HybridSender>(domain_size, timeout),
          std::make_unique<HybridReceiver>(domain_size)};
}

ProtocolPair make_hardened(int domain_size) {
  return {std::make_unique<HardenedSender>(domain_size),
          std::make_unique<HardenedReceiver>(domain_size)};
}

}  // namespace stpx::proto
