#include "proto/session_adapter.hpp"

#include <utility>

#include "util/expect.hpp"

namespace stpx::proto {

SenderSessionEndpoint::SenderSessionEndpoint(
    std::unique_ptr<sim::ISender> sender, seq::Sequence x)
    : sender_(std::move(sender)), x_(std::move(x)) {
  STPX_EXPECT(sender_ != nullptr, "SenderSessionEndpoint: null sender");
  sender_->start(x_);
}

void SenderSessionEndpoint::on_deliver(sim::MsgId msg) {
  // Defensive-ignore at the trust boundary: every stpx protocol uses
  // non-negative ids; anything else cannot be a well-formed ack.
  if (msg < 0) return;
  sender_->on_deliver(msg);
}

std::optional<sim::MsgId> SenderSessionEndpoint::step() {
  if (finished_) return std::nullopt;
  return sender_->on_step().send;
}

ReceiverSessionEndpoint::ReceiverSessionEndpoint(
    std::unique_ptr<sim::IReceiver> receiver, seq::Sequence expected)
    : receiver_(std::move(receiver)), expected_(std::move(expected)) {
  STPX_EXPECT(receiver_ != nullptr, "ReceiverSessionEndpoint: null receiver");
  receiver_->start();
}

void ReceiverSessionEndpoint::on_deliver(sim::MsgId msg) {
  if (msg < 0) return;
  if (!safety_ok_) return;  // violated sessions go silent
  receiver_->on_deliver(msg);
}

std::optional<sim::MsgId> ReceiverSessionEndpoint::step() {
  if (!safety_ok_ || done()) return std::nullopt;
  sim::ReceiverEffect eff = receiver_->on_step();
  for (const seq::DataItem item : eff.writes) {
    // The engine's online prefix check, session-local: the write must be
    // the next item of the expected sequence, every time.
    if (y_.size() >= expected_.size() || item != expected_[y_.size()]) {
      safety_ok_ = false;
      return std::nullopt;
    }
    y_.push_back(item);
  }
  return eff.send;
}

}  // namespace stpx::proto
