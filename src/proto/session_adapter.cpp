#include "proto/session_adapter.hpp"

#include <utility>

#include "proto/durable.hpp"
#include "util/blob.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
// Adapter blob tags — distinct from every protocol's own state tag, so a
// raw protocol blob cannot masquerade as an adapter blob (and vice
// versa).  The protocol blob nests inside as one length-prefixed vec.
constexpr std::int64_t kSenderAdapterTag = 201;
constexpr std::int64_t kReceiverAdapterTag = 202;

std::vector<std::int64_t> nested_tokens(const std::string& blob) {
  auto toks = util::blob_tokens(blob);
  return toks ? std::move(*toks) : std::vector<std::int64_t>{};
}
}  // namespace

SenderSessionEndpoint::SenderSessionEndpoint(
    std::unique_ptr<sim::ISender> sender, seq::Sequence x)
    : sender_(std::move(sender)), x_(std::move(x)) {
  STPX_EXPECT(sender_ != nullptr, "SenderSessionEndpoint: null sender");
  sender_->start(x_);
}

void SenderSessionEndpoint::on_deliver(sim::MsgId msg) {
  // Defensive-ignore at the trust boundary: every stpx protocol uses
  // non-negative ids; anything else cannot be a well-formed ack.
  if (msg < 0) return;
  sender_->on_deliver(msg);
}

std::optional<sim::MsgId> SenderSessionEndpoint::step() {
  if (finished_) return std::nullopt;
  return sender_->on_step().send;
}

std::string SenderSessionEndpoint::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderAdapterTag);
  w.boolean(finished_);
  w.vec(nested_tokens(sender_->save_state()));
  return w.str();
}

bool SenderSessionEndpoint::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  bool finished = false;
  std::vector<std::int64_t> inner_toks;
  if (!r.i64(tag) || tag != kSenderAdapterTag || !r.boolean(finished) ||
      !r.vec(inner_toks) || !r.done()) {
    return false;
  }
  if (finished) {
    // The peer durably confirmed full receipt; protocol state is moot.
    finished_ = true;
    return true;
  }
  const std::string inner = util::blob_join(inner_toks);
  // No (or unusable) protocol state: the ctor already cold-started the
  // sender, which for every stpx sender means "resend from the front" —
  // safe, so report a cold restore and keep running.
  if (inner.empty()) return false;
  return sender_->restore_state(inner);
}

ReceiverSessionEndpoint::ReceiverSessionEndpoint(
    std::unique_ptr<sim::IReceiver> receiver, seq::Sequence expected)
    : receiver_(std::move(receiver)), expected_(std::move(expected)) {
  STPX_EXPECT(receiver_ != nullptr, "ReceiverSessionEndpoint: null receiver");
  receiver_->start();
}

void ReceiverSessionEndpoint::on_deliver(sim::MsgId msg) {
  if (msg < 0) return;
  if (!safety_ok_) return;  // violated sessions go silent
  receiver_->on_deliver(msg);
}

std::optional<sim::MsgId> ReceiverSessionEndpoint::step() {
  if (!safety_ok_ || done()) return std::nullopt;
  sim::ReceiverEffect eff = receiver_->on_step();
  for (const seq::DataItem item : eff.writes) {
    // The engine's online prefix check, session-local: the write must be
    // the next item of the expected sequence, every time.
    if (y_.size() >= expected_.size() || item != expected_[y_.size()]) {
      safety_ok_ = false;
      return std::nullopt;
    }
    y_.push_back(item);
  }
  return eff.send;
}

std::string ReceiverSessionEndpoint::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverAdapterTag);
  w.boolean(safety_ok_);
  write_items(w, y_);
  w.vec(nested_tokens(receiver_->save_state()));
  return w.str();
}

bool ReceiverSessionEndpoint::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  bool saved_ok = true;
  std::vector<seq::DataItem> tape;
  std::vector<std::int64_t> inner_toks;
  if (!r.i64(tag) || tag != kReceiverAdapterTag || !r.boolean(saved_ok) ||
      !read_items(r, tape) || !r.vec(inner_toks) || !r.done()) {
    return false;
  }
  y_.assign(tape.begin(), tape.end());
  safety_ok_ = saved_ok;
  // The tape is externalized state.  A restored tape that is not a prefix
  // of the expected sequence means the durable log attests to a delivery
  // this session never should have made — a recovery violation the
  // caller must surface, never a truncate-and-carry-on.
  if (!seq::is_prefix(y_, expected_)) safety_ok_ = false;
  if (!safety_ok_) return true;  // restored, and provably broken
  const std::string inner = util::blob_join(inner_toks);
  if (!inner.empty() && receiver_->restore_state(inner, y_)) return true;
  // Unusable protocol state: fall back to a cold receiver.  The tape
  // cannot be kept — a cold receiver re-delivers from the front, and
  // appending that onto a non-empty y_ would double-deliver.
  y_.clear();
  receiver_->start();
  return false;
}

}  // namespace stpx::proto
