#include "proto/hardened.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "proto/durable.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx::proto {

namespace {

constexpr std::int64_t kSenderTag = 191;
constexpr std::int64_t kReceiverTag = 192;

// Direction salts keep a reflected message (an ack replayed at the
// receiver, or vice versa) from validating.
constexpr std::uint64_t kDataSalt = 0xD47A'5EA1'0C5A'17EDULL;
constexpr std::uint64_t kAckSalt = 0xACC5'EA1E'D0C5'A17BULL;
constexpr std::uint64_t kBlobSalt = 0xB10B'5EA1'ED05'A17FULL;

constexpr std::int64_t kCsumBits = 10;
constexpr std::int64_t kCsumMask = (std::int64_t{1} << kCsumBits) - 1;
constexpr std::int64_t kItemBits = 8;
constexpr std::int64_t kSeqnoBits = 20;

std::uint64_t mix(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

sim::MsgId seal(std::int64_t body, std::uint64_t salt) {
  const auto csum = static_cast<std::int64_t>(
      mix(static_cast<std::uint64_t>(body) ^ salt) & kCsumMask);
  return (body << kCsumBits) | csum;
}

std::optional<std::int64_t> unseal(sim::MsgId id, std::uint64_t salt) {
  if (id < 0) return std::nullopt;
  const std::int64_t body = id >> kCsumBits;
  if (seal(body, salt) != id) return std::nullopt;
  return body;
}

std::int64_t data_body(std::uint64_t epoch, std::size_t seqno,
                       seq::DataItem item) {
  return (static_cast<std::int64_t>(epoch) << (kSeqnoBits + kItemBits)) |
         (static_cast<std::int64_t>(seqno) << kItemBits) |
         static_cast<std::int64_t>(item);
}

std::int64_t ack_body(std::uint64_t epoch, std::size_t frontier) {
  return (static_cast<std::int64_t>(epoch) << (kSeqnoBits + kItemBits)) |
         (static_cast<std::int64_t>(frontier) << kItemBits);
}

}  // namespace

std::string hardened_seal_blob(const std::string& payload) {
  std::uint64_t h = kBlobSalt ^ mix(payload.size());
  for (unsigned char c : payload) h = mix(h ^ c);
  // Masked so the token round-trips through the signed-int64 blob text.
  h &= 0x3FFF'FFFF'FFFF'FFFFULL;
  return payload + ' ' + std::to_string(h);
}

bool hardened_unseal_blob(const std::string& blob, std::string& payload) {
  const std::size_t pos = blob.find_last_of(' ');
  if (pos == std::string::npos) return false;
  std::istringstream is(blob.substr(pos + 1));
  std::int64_t stored = 0;
  char extra = 0;
  if (!(is >> stored) || (is >> extra)) return false;
  const std::string candidate = blob.substr(0, pos);
  std::uint64_t h = kBlobSalt ^ mix(candidate.size());
  for (unsigned char c : candidate) h = mix(h ^ c);
  h &= 0x3FFF'FFFF'FFFF'FFFFULL;
  if (static_cast<std::int64_t>(h) != stored) return false;
  payload = candidate;
  return true;
}

// ---------------------------------------------------------------- sender --

HardenedSender::HardenedSender(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "HardenedSender: domain must be non-empty");
  STPX_EXPECT(domain_size <= (1 << kItemBits),
              "HardenedSender: domain exceeds the item field");
}

void HardenedSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "HardenedSender: input outside domain");
  STPX_EXPECT(x.size() < (std::size_t{1} << kSeqnoBits),
              "HardenedSender: input exceeds the seqno field");
  x_ = x;
  next_ = 0;
  epoch_ = 0;
  rejected_ = 0;
}

sim::SenderEffect HardenedSender::on_step() {
  if (next_ >= x_.size()) return {};
  return sim::SenderEffect{
      .send = seal(data_body(epoch_, next_, x_[next_]), kDataSalt)};
}

void HardenedSender::on_deliver(sim::MsgId msg) {
  const auto body = unseal(msg, kAckSalt);
  if (!body) {
    ++rejected_;  // corrupted or forged: shed it, retransmission recovers
    return;
  }
  const auto epoch =
      static_cast<std::uint64_t>(*body >> (kSeqnoBits + kItemBits));
  const auto frontier = static_cast<std::size_t>(
      (*body >> kItemBits) & ((std::int64_t{1} << kSeqnoBits) - 1));
  const std::size_t capped = std::min(frontier, x_.size());
  if (epoch > epoch_) {
    // The receiver restarted: adopt its epoch and its frontier outright,
    // even when that moves our cursor backwards — resending a suffix is
    // the price of re-converging after the receiver shed state.
    epoch_ = epoch;
    next_ = capped;
  } else if (epoch == epoch_) {
    next_ = std::max(next_, capped);  // cumulative ack
  }
  // Older epoch: a stale ack from before a restart we already know about.
}

std::string HardenedSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(epoch_);
  w.u64(next_);
  return hardened_seal_blob(w.str());
}

bool HardenedSender::restore_state(const std::string& blob) {
  std::string payload;
  if (!hardened_unseal_blob(blob, payload)) return false;
  util::BlobReader r(payload);
  std::int64_t tag = 0;
  std::uint64_t epoch = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(epoch) || !r.u64(next) ||
      !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  epoch_ = epoch;
  next_ = static_cast<std::size_t>(next);
  return true;
}

std::unique_ptr<sim::ISender> HardenedSender::clone() const {
  return std::make_unique<HardenedSender>(*this);
}

// -------------------------------------------------------------- receiver --

HardenedReceiver::HardenedReceiver(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "HardenedReceiver: domain must be non-empty");
  STPX_EXPECT(domain_size <= (1 << kItemBits),
              "HardenedReceiver: domain exceeds the item field");
}

void HardenedReceiver::start() {
  epoch_ = 0;
  written_ = 0;
  pending_writes_.clear();
  rejected_ = 0;
}

sim::ReceiverEffect HardenedReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  eff.send = seal(ack_body(epoch_, frontier()), kAckSalt);
  return eff;
}

void HardenedReceiver::on_deliver(sim::MsgId msg) {
  const auto body = unseal(msg, kDataSalt);
  if (!body) {
    ++rejected_;  // corrupted or forged: shed it, retransmission recovers
    return;
  }
  const auto epoch =
      static_cast<std::uint64_t>(*body >> (kSeqnoBits + kItemBits));
  const auto seqno = static_cast<std::size_t>(
      (*body >> kItemBits) & ((std::int64_t{1} << kSeqnoBits) - 1));
  const auto item =
      static_cast<seq::DataItem>(*body & ((std::int64_t{1} << kItemBits) - 1));
  if (item >= domain_size_) {
    ++rejected_;  // validated but out of domain: a config mixup, shed it
    return;
  }
  // Data from an older epoch predates our last restart; data from a newer
  // epoch is impossible (only we bump the epoch).  Either way, drop.
  if (epoch != epoch_) return;
  if (seqno == frontier()) pending_writes_.push_back(item);
}

std::string HardenedReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.u64(epoch_);
  w.i64(written_);
  write_items(w, pending_writes_);
  return hardened_seal_blob(w.str());
}

bool HardenedReceiver::restore_state(const std::string& blob,
                                     const seq::Sequence& tape) {
  std::string payload;
  if (!hardened_unseal_blob(blob, payload)) return false;
  util::BlobReader r(payload);
  std::int64_t tag = 0;
  std::uint64_t epoch = 0;
  std::int64_t written = 0;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.u64(epoch) ||
      !r.i64(written) || !read_items(r, pending) || !r.done() || written < 0) {
    return false;
  }
  written_ = written;
  pending_writes_ = std::move(pending);
  reconcile_with_tape(written_, pending_writes_, tape);
  // Announce the restart: the next ack carries a fresh epoch, which makes
  // the sender adopt our (possibly rewound) frontier and resend from it.
  epoch_ = epoch + 1;
  return true;
}

std::unique_ptr<sim::IReceiver> HardenedReceiver::clone() const {
  return std::make_unique<HardenedReceiver>(*this);
}

}  // namespace stpx::proto
