// Convenience factories producing matched (sender, receiver) pairs.
//
// Each factory documents which channel family the pair is designed for;
// running a pair on a hostile channel it was not designed for is a valid
// experiment (that is how the kernel's safety checker earns its keep), but
// the correctness claims below hold only on the stated family.
#pragma once

#include <memory>

#include "proto/alternating_bit.hpp"
#include "proto/block.hpp"
#include "proto/hardened.hpp"
#include "proto/hybrid.hpp"
#include "proto/modk_stenning.hpp"
#include "proto/repfree.hpp"
#include "proto/sliding_window.hpp"
#include "proto/stenning.hpp"
#include "proto/sync_stop_wait.hpp"

namespace stpx::proto {

struct ProtocolPair {
  std::unique_ptr<sim::ISender> sender;
  std::unique_ptr<sim::IReceiver> receiver;
};

/// Paper's α(m) protocol for reorder+duplicate channels (send-once).
ProtocolPair make_repfree_dup(int domain_size);

/// Paper's bounded α(m) protocol for reorder+delete channels (retransmit).
ProtocolPair make_repfree_del(int domain_size);

/// A deliberately wasteful variant for the F1 overhead ablation: identical
/// receiver, but the sender retransmits on every step even on a dup channel
/// where one copy would do.
ProtocolPair make_repfree_flood(int domain_size);

/// Alternating Bit Protocol — FIFO channels with loss/duplication only.
ProtocolPair make_abp(int domain_size);

/// Stenning's protocol — any channel; unbounded headers.  The optional
/// flag arms the sender's dup-ack go-back (wire-layer receiver-amnesia
/// healing, see StenningSender); engine runs leave it off.
ProtocolPair make_stenning(int domain_size, bool sender_ack_rewind = false);

/// Stenning with mod-K tags — finite alphabet (K|D| + K messages); correct
/// on FIFO channels, provably (and demonstrably) broken under reordering
/// for long enough inputs: the ablation that shows Theorem 1/2 biting a
/// classic design.
ProtocolPair make_modk_stenning(int domain_size, int modulus);

/// Go-Back-N — any channel; unbounded headers, cumulative acks.
/// (Reuses the Stenning receiver: in-order accept + cumulative ack.)
ProtocolPair make_go_back_n(int domain_size, int window);

/// Selective Repeat — any channel; unbounded headers, per-item acks.
ProtocolPair make_selective_repeat(int domain_size, int window);

/// §5 hybrid: ABP fast path + whole-sequence recovery; FIFO channels.
ProtocolPair make_hybrid(int domain_size, int timeout);

/// Stop-and-wait over the synchronous detectable-loss link ([AUY79]
/// contrast class): all sequences over D, |M^S| = |D|, zero receiver
/// messages.  Requires channel::SyncLossChannel.
ProtocolPair make_sync_stop_wait(int domain_size);

/// Block transfer (§2.4 remark): each message carries `block_size` items,
/// writes drain one per step — knowledge strictly precedes writing.  FIFO
/// channels (and loss/duplication); inputs up to max_len items.
ProtocolPair make_block(int domain_size, int block_size, int max_len);

/// Self-stabilizing Stenning variant: checksummed ids, checksummed
/// checkpoints, epoch resync (proto/hardened.hpp).  Any channel; survives
/// the transient-corruption fault model of docs/STABILIZATION.md.
ProtocolPair make_hardened(int domain_size);

}  // namespace stpx::proto
