#include "proto/stenning.hpp"

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 101;
constexpr std::int64_t kReceiverTag = 102;
}  // namespace

StenningSender::StenningSender(int domain_size, bool ack_rewind)
    : domain_size_(domain_size), ack_rewind_(ack_rewind) {
  STPX_EXPECT(domain_size >= 1, "StenningSender: domain must be non-empty");
}

void StenningSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "StenningSender: input outside domain");
  x_ = x;
  next_ = 0;
  low_ack_ = -1;
  dup_low_acks_ = 0;
}

sim::SenderEffect StenningSender::on_step() {
  if (next_ >= x_.size()) return {};
  // Stop-and-wait with retransmission: keep sending (next_, x[next_]).
  const auto seqno = static_cast<sim::MsgId>(next_);
  return sim::SenderEffect{.send = seqno * domain_size_ + x_[next_]};
}

void StenningSender::on_deliver(sim::MsgId msg) {
  // msg encodes ack(k) = k + 1, a cumulative ack for items [0, k].
  const std::int64_t written_count = msg;  // = k + 1
  STPX_EXPECT(written_count >= 0, "StenningSender: malformed ack");
  if (static_cast<std::size_t>(written_count) > next_) {
    next_ = static_cast<std::size_t>(written_count);
    low_ack_ = -1;
    dup_low_acks_ = 0;
  } else if (ack_rewind_ && static_cast<std::size_t>(written_count) < next_) {
    // Dup-ack go-back (see the ctor comment): the receiver keeps acking a
    // frontier below ours, so it durably rewound — adopt its frontier.
    if (low_ack_ == written_count) {
      if (++dup_low_acks_ >= kDupAckRewind) {
        next_ = static_cast<std::size_t>(written_count);
        low_ack_ = -1;
        dup_low_acks_ = 0;
      }
    } else {
      low_ack_ = written_count;
      dup_low_acks_ = 1;
    }
  }
}

std::string StenningSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  return w.str();
}

bool StenningSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) || !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  return true;
}

std::unique_ptr<sim::ISender> StenningSender::clone() const {
  return std::make_unique<StenningSender>(*this);
}

StenningReceiver::StenningReceiver(int domain_size)
    : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "StenningReceiver: domain must be non-empty");
}

void StenningReceiver::start() {
  written_ = 0;
  pending_writes_.clear();
}

sim::ReceiverEffect StenningReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  // Cumulative ack of everything written so far (idempotent; re-sent every
  // step so deletions cannot wedge the sender).
  eff.send = sim::MsgId{written_};
  return eff;
}

void StenningReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0, "StenningReceiver: malformed message");
  const std::int64_t seqno = msg / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  // Accept exactly the next expected item; written_ counts emitted writes
  // and pending_writes_ holds in-order arrivals since the last step.
  if (seqno == written_ + static_cast<std::int64_t>(pending_writes_.size())) {
    pending_writes_.push_back(item);
  }
}

std::string StenningReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(written_);
  write_items(w, pending_writes_);
  return w.str();
}

bool StenningReceiver::restore_state(const std::string& blob,
                                     const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(written) ||
      !read_items(r, pending) || !r.done() || written < 0) {
    return false;
  }
  written_ = written;
  pending_writes_ = std::move(pending);
  reconcile_with_tape(written_, pending_writes_, tape);
  return true;
}

std::unique_ptr<sim::IReceiver> StenningReceiver::clone() const {
  return std::make_unique<StenningReceiver>(*this);
}

}  // namespace stpx::proto
