#include "proto/alternating_bit.hpp"

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 111;
constexpr std::int64_t kReceiverTag = 112;
}  // namespace

AbpSender::AbpSender(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "AbpSender: domain must be non-empty");
}

void AbpSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "AbpSender: input outside domain");
  x_ = x;
  next_ = 0;
  bit_ = 0;
}

sim::SenderEffect AbpSender::on_step() {
  if (next_ >= x_.size()) return {};
  // Retransmit the current (bit, item) every step until acknowledged.
  return sim::SenderEffect{
      .send = sim::MsgId{bit_ * domain_size_ + x_[next_]}};
}

void AbpSender::on_deliver(sim::MsgId msg) {
  if (msg != 0 && msg != 1) return;  // outside M^R: corrupted/forged, ignore
  if (next_ < x_.size() && msg == bit_) {
    ++next_;
    bit_ ^= 1;
  }
}

std::string AbpSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  return w.str();
}

bool AbpSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) || !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  // The bit is derivable: both sides start at 0 and flip once per advance.
  bit_ = static_cast<int>(next_ % 2);
  return true;
}

std::unique_ptr<sim::ISender> AbpSender::clone() const {
  return std::make_unique<AbpSender>(*this);
}

AbpReceiver::AbpReceiver(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "AbpReceiver: domain must be non-empty");
}

void AbpReceiver::start() {
  expected_bit_ = 0;
  ack_bit_.reset();
  written_ = 0;
  pending_writes_.clear();
}

sim::ReceiverEffect AbpReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  if (ack_bit_) eff.send = sim::MsgId{*ack_bit_};
  return eff;
}

void AbpReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= 2 * domain_size_) return;  // outside M^S: ignore
  const int bit = static_cast<int>(msg) / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  if (bit == expected_bit_) {
    pending_writes_.push_back(item);
    expected_bit_ ^= 1;
  }
  // Ack the bit we just saw (a duplicate gets its old bit re-acked, which is
  // exactly what unsticks a sender whose previous ack was lost).
  ack_bit_ = bit;
}

std::string AbpReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(written_);
  w.i64(ack_bit_ ? *ack_bit_ : -1);
  write_items(w, pending_writes_);
  return w.str();
}

bool AbpReceiver::restore_state(const std::string& blob,
                                const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::int64_t ack = -1;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(written) || !r.i64(ack) ||
      !read_items(r, pending) || !r.done() || written < 0 || ack < -1 ||
      ack > 1) {
    return false;
  }
  written_ = written;
  ack_bit_ = ack < 0 ? std::nullopt : std::optional<int>(static_cast<int>(ack));
  pending_writes_ = std::move(pending);
  reconcile_with_tape(written_, pending_writes_, tape);
  // The expected bit equals the parity of the accept count — derive it
  // from the reconciled cursor so even a multi-record rewind re-syncs.
  expected_bit_ = static_cast<int>(
      (written_ + static_cast<std::int64_t>(pending_writes_.size())) % 2);
  return true;
}

std::unique_ptr<sim::IReceiver> AbpReceiver::clone() const {
  return std::make_unique<AbpReceiver>(*this);
}

}  // namespace stpx::proto
