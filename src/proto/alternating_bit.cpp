#include "proto/alternating_bit.hpp"

#include "util/expect.hpp"

namespace stpx::proto {

AbpSender::AbpSender(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "AbpSender: domain must be non-empty");
}

void AbpSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "AbpSender: input outside domain");
  x_ = x;
  next_ = 0;
  bit_ = 0;
}

sim::SenderEffect AbpSender::on_step() {
  if (next_ >= x_.size()) return {};
  // Retransmit the current (bit, item) every step until acknowledged.
  return sim::SenderEffect{
      .send = sim::MsgId{bit_ * domain_size_ + x_[next_]}};
}

void AbpSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg == 0 || msg == 1, "AbpSender: ack outside M^R");
  if (next_ < x_.size() && msg == bit_) {
    ++next_;
    bit_ ^= 1;
  }
}

std::unique_ptr<sim::ISender> AbpSender::clone() const {
  return std::make_unique<AbpSender>(*this);
}

AbpReceiver::AbpReceiver(int domain_size) : domain_size_(domain_size) {
  STPX_EXPECT(domain_size >= 1, "AbpReceiver: domain must be non-empty");
}

void AbpReceiver::start() {
  expected_bit_ = 0;
  ack_bit_.reset();
  pending_writes_.clear();
}

sim::ReceiverEffect AbpReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  if (ack_bit_) eff.send = sim::MsgId{*ack_bit_};
  return eff;
}

void AbpReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < 2 * domain_size_,
              "AbpReceiver: message outside M^S");
  const int bit = static_cast<int>(msg) / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  if (bit == expected_bit_) {
    pending_writes_.push_back(item);
    expected_bit_ ^= 1;
  }
  // Ack the bit we just saw (a duplicate gets its old bit re-acked, which is
  // exactly what unsticks a sender whose previous ack was lost).
  ack_bit_ = bit;
}

std::unique_ptr<sim::IReceiver> AbpReceiver::clone() const {
  return std::make_unique<AbpReceiver>(*this);
}

}  // namespace stpx::proto
