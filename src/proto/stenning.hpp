// Stenning's data transfer protocol [Ste76] — the unbounded-header baseline.
//
// Every data message carries its full sequence number, so the protocol works
// over channels that reorder, duplicate, AND delete — but its message
// alphabet is infinite, which is exactly the resource the paper's theorems
// forbid.
//
// Crash-restart behaviour (see docs/FAULTS.md): the *sender* survives
// amnesia — after a restart it resends from seqno 0, the receiver ignores
// stale seqnos, and the cumulative ack fast-forwards the sender to the
// frontier.  A *receiver* crash loses `written_`, after which arriving
// seqnos never match the reset expectation: safety holds but progress stops
// (the engine watchdog reports the livelock).  Including it makes the trade-off measurable: unbounded headers
// buy unrestricted 𝒳 (any sequence over any domain), finite alphabets cap
// |𝒳| at alpha(m).
//
// Encodings (unbounded ids):
//   S -> R : seqno * |D| + item
//   R -> S : seqno of the highest item written so far (cumulative ack),
//            or -2 when nothing is written yet ("ack of -1", offset to keep
//            ids distinct from data).  We simply encode ack(k) as k, with
//            k = -1 allowed... but MsgId -1 is reserved, so ack(k) = k + 1
//            (ack ids are in a different direction, no clash with data).
#pragma once

#include "sim/process.hpp"

namespace stpx::proto {

class StenningSender final : public sim::ISender {
 public:
  /// ack_rewind arms dup-ack go-back, the wire layer's receiver-amnesia
  /// healing (off by default; engine runs keep the classic behaviour):
  /// a cumulative ack strictly below the cursor, repeated kDupAckRewind
  /// times with the same value, means the receiver durably rewound (its
  /// newest checkpoints were lost in a storage fault) — the sender
  /// adopts the receiver's frontier and refills the gap.  Going back is
  /// always safe: resending delivered items is just retransmission, so a
  /// spurious rewind triggered by stale reordered acks costs bounded
  /// retransmission, never safety.
  explicit StenningSender(int domain_size, bool ack_rewind = false);

  static constexpr int kDupAckRewind = 3;

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "stenning-sender"; }

  std::size_t acked() const { return next_; }

 private:
  int domain_size_;
  bool ack_rewind_;
  seq::Sequence x_;
  std::size_t next_ = 0;       // first unacknowledged index
  std::int64_t low_ack_ = -1;  // last ack seen strictly below next_
  int dup_low_acks_ = 0;       // consecutive repeats of low_ack_
};

class StenningReceiver final : public sim::IReceiver {
 public:
  explicit StenningReceiver(int domain_size);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "stenning-receiver"; }

 private:
  int domain_size_;
  std::int64_t written_ = 0;  // count of items written (= next expected seqno)
  std::vector<seq::DataItem> pending_writes_;
};

}  // namespace stpx::proto
