#include "proto/modk_stenning.hpp"

#include "proto/durable.hpp"
#include "util/expect.hpp"

namespace stpx::proto {

namespace {
constexpr std::int64_t kSenderTag = 121;
constexpr std::int64_t kReceiverTag = 122;
}  // namespace

ModKStenningSender::ModKStenningSender(int domain_size, int modulus)
    : domain_size_(domain_size), modulus_(modulus) {
  STPX_EXPECT(domain_size >= 1, "ModKStenningSender: empty domain");
  STPX_EXPECT(modulus >= 2, "ModKStenningSender: modulus must be >= 2");
}

void ModKStenningSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "ModKStenningSender: input outside domain");
  x_ = x;
  next_ = 0;
}

sim::SenderEffect ModKStenningSender::on_step() {
  if (next_ >= x_.size()) return {};
  const auto tag = static_cast<sim::MsgId>(next_ % static_cast<std::size_t>(modulus_));
  return sim::SenderEffect{.send = tag * domain_size_ + x_[next_]};
}

void ModKStenningSender::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= modulus_) return;  // outside M^R: ignore
  // Ack carries (items written) mod K.  We advance when it names the tag
  // after ours — which is ambiguous once counts wrap: the well-known hole.
  if (next_ < x_.size() &&
      msg == static_cast<sim::MsgId>((next_ + 1) %
                                     static_cast<std::size_t>(modulus_))) {
    ++next_;
  }
}

std::string ModKStenningSender::save_state() const {
  util::BlobWriter w;
  w.i64(kSenderTag);
  w.u64(next_);
  return w.str();
}

bool ModKStenningSender::restore_state(const std::string& blob) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::uint64_t next = 0;
  if (!r.i64(tag) || tag != kSenderTag || !r.u64(next) || !r.done()) {
    return false;
  }
  if (next > x_.size()) return false;
  next_ = static_cast<std::size_t>(next);
  return true;
}

std::unique_ptr<sim::ISender> ModKStenningSender::clone() const {
  return std::make_unique<ModKStenningSender>(*this);
}

ModKStenningReceiver::ModKStenningReceiver(int domain_size, int modulus)
    : domain_size_(domain_size), modulus_(modulus) {
  STPX_EXPECT(domain_size >= 1, "ModKStenningReceiver: empty domain");
  STPX_EXPECT(modulus >= 2, "ModKStenningReceiver: modulus must be >= 2");
}

void ModKStenningReceiver::start() {
  written_ = 0;
  pending_writes_.clear();
}

sim::ReceiverEffect ModKStenningReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  eff.send = sim::MsgId{written_ % modulus_};
  return eff;
}

void ModKStenningReceiver::on_deliver(sim::MsgId msg) {
  if (msg < 0 || msg >= modulus_ * domain_size_) return;  // outside M^S
  const std::int64_t tag = msg / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  const std::int64_t frontier =
      written_ + static_cast<std::int64_t>(pending_writes_.size());
  // Accept when the tag matches the expected index mod K — on a reordering
  // channel a stale wrapped message passes this test and corrupts Y.
  if (tag == frontier % modulus_) pending_writes_.push_back(item);
}

std::string ModKStenningReceiver::save_state() const {
  util::BlobWriter w;
  w.i64(kReceiverTag);
  w.i64(written_);
  write_items(w, pending_writes_);
  return w.str();
}

bool ModKStenningReceiver::restore_state(const std::string& blob,
                                         const seq::Sequence& tape) {
  util::BlobReader r(blob);
  std::int64_t tag = 0;
  std::int64_t written = 0;
  std::vector<seq::DataItem> pending;
  if (!r.i64(tag) || tag != kReceiverTag || !r.i64(written) ||
      !read_items(r, pending) || !r.done() || written < 0) {
    return false;
  }
  written_ = written;
  pending_writes_ = std::move(pending);
  reconcile_with_tape(written_, pending_writes_, tape);
  return true;
}

std::unique_ptr<sim::IReceiver> ModKStenningReceiver::clone() const {
  return std::make_unique<ModKStenningReceiver>(*this);
}

}  // namespace stpx::proto
