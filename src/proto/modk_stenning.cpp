#include "proto/modk_stenning.hpp"

#include "util/expect.hpp"

namespace stpx::proto {

ModKStenningSender::ModKStenningSender(int domain_size, int modulus)
    : domain_size_(domain_size), modulus_(modulus) {
  STPX_EXPECT(domain_size >= 1, "ModKStenningSender: empty domain");
  STPX_EXPECT(modulus >= 2, "ModKStenningSender: modulus must be >= 2");
}

void ModKStenningSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "ModKStenningSender: input outside domain");
  x_ = x;
  next_ = 0;
}

sim::SenderEffect ModKStenningSender::on_step() {
  if (next_ >= x_.size()) return {};
  const auto tag = static_cast<sim::MsgId>(next_ % static_cast<std::size_t>(modulus_));
  return sim::SenderEffect{.send = tag * domain_size_ + x_[next_]};
}

void ModKStenningSender::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < modulus_, "ModKStenningSender: bad ack");
  // Ack carries (items written) mod K.  We advance when it names the tag
  // after ours — which is ambiguous once counts wrap: the well-known hole.
  if (next_ < x_.size() &&
      msg == static_cast<sim::MsgId>((next_ + 1) %
                                     static_cast<std::size_t>(modulus_))) {
    ++next_;
  }
}

std::unique_ptr<sim::ISender> ModKStenningSender::clone() const {
  return std::make_unique<ModKStenningSender>(*this);
}

ModKStenningReceiver::ModKStenningReceiver(int domain_size, int modulus)
    : domain_size_(domain_size), modulus_(modulus) {
  STPX_EXPECT(domain_size >= 1, "ModKStenningReceiver: empty domain");
  STPX_EXPECT(modulus >= 2, "ModKStenningReceiver: modulus must be >= 2");
}

void ModKStenningReceiver::start() {
  written_ = 0;
  pending_writes_.clear();
}

sim::ReceiverEffect ModKStenningReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  written_ += static_cast<std::int64_t>(eff.writes.size());
  eff.send = sim::MsgId{written_ % modulus_};
  return eff;
}

void ModKStenningReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < modulus_ * domain_size_,
              "ModKStenningReceiver: bad message");
  const std::int64_t tag = msg / domain_size_;
  const auto item = static_cast<seq::DataItem>(msg % domain_size_);
  const std::int64_t frontier =
      written_ + static_cast<std::int64_t>(pending_writes_.size());
  // Accept when the tag matches the expected index mod K — on a reordering
  // channel a stale wrapped message passes this test and corrupts Y.
  if (tag == frontier % modulus_) pending_writes_.push_back(item);
}

std::unique_ptr<sim::IReceiver> ModKStenningReceiver::clone() const {
  return std::make_unique<ModKStenningReceiver>(*this);
}

}  // namespace stpx::proto
