// Block transfer: one message carries several data items (§2.4's remark).
//
// The paper motivates defining t_i via knowledge rather than writes with
// exactly this protocol shape: "S can send R a single message which informs
// R the values of several data items, and there is no way R can write them
// at the same step."  Here each message encodes a block of `block_size`
// items; the receiver learns the whole block at the delivery instant but
// drains its writes ONE PER STEP, so knowledge strictly precedes writing —
// measurable with the knowledge layer (see F4/F5 and the tests).
//
// Encodings (stop-and-wait per block, alternating block bit for dedup):
//   S -> R : bit * (d^b) + (block contents in base d), padded with item 0;
//            a final-length field is not needed because the sender also
//            alternates the bit and the receiver counts arrivals: the LAST
//            block may carry fewer real items, so the sender prepends the
//            sequence length in a HEADER block of one item (length encoded
//            in unary across... no — kept simple: the header message id
//            space 2*d^b..2*d^b+L_max encodes |X| directly, bounding the
//            supported lengths by alphabet choice, exactly the finite-
//            alphabet trade the paper is about).
//   R -> S : 0/1 block-bit acks, 2 = header ack        (|M^R| = 3)
#pragma once

#include "sim/process.hpp"

namespace stpx::proto {

class BlockSender final : public sim::ISender {
 public:
  /// Supports inputs with |X| <= max_len over {0..d-1}, b items per block.
  BlockSender(int domain_size, int block_size, int max_len);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override;
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "block-sender"; }

 private:
  sim::MsgId block_message(std::size_t block_index) const;

  int domain_size_;
  int block_size_;
  int max_len_;
  seq::Sequence x_;
  bool header_acked_ = false;
  std::size_t next_block_ = 0;
  std::size_t block_count_ = 0;
};

class BlockReceiver final : public sim::IReceiver {
 public:
  BlockReceiver(int domain_size, int block_size, int max_len);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return 3; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "block-receiver"; }

 private:
  int domain_size_;
  int block_size_;
  int max_len_;
  std::int64_t expected_len_ = -1;  // from the header; -1 = unknown
  int expected_bit_ = 0;
  std::size_t received_items_ = 0;  // accepted into the write queue
  std::vector<seq::DataItem> write_queue_;  // drained ONE per step
  std::vector<sim::MsgId> pending_acks_;
};

}  // namespace stpx::proto
