// Hardened Stenning: a self-stabilizing unbounded-header protocol.
//
// Plain Stenning survives loss, duplication, and reordering, but trusts
// every bit it is handed: a corrupted payload is decoded as a (wrong) data
// item, a forged ack advances the cursor, and a scrambled checkpoint is
// rehydrated verbatim.  This variant spends header bits on *integrity* so
// that transient state corruption — the stabilization fault model of
// docs/STABILIZATION.md — is detected and shed instead of believed:
//
//   1. Checksummed ids.  Every message is  id = (body << 10) | csum  with
//      csum = mix(body ^ direction_salt) & 0x3FF.  A flipped bit (chaos
//      `corrupt-payload`) or an id invented without the salt (chaos
//      `forge-message`) fails validation and is dropped on delivery; the
//      ordinary retransmission loop replaces the lost copy.
//   2. Checksummed checkpoints.  save_state() appends a hash of the blob
//      text, restore_state() recomputes it first, so a scrambled blob
//      (chaos `scramble-state`) is rejected and the live state survives.
//   3. Epoch resync.  The receiver stamps every ack with an epoch it bumps
//      after each successful restore; a sender seeing a *newer* epoch
//      adopts the receiver's frontier outright — even backwards — and
//      resends from there.  This closes the receiver-amnesia livelock that
//      plain Stenning exhibits: after a rewind the receiver's expected
//      seqno regresses, and without the epoch signal the sender would keep
//      transmitting from its own (now too-far-ahead) cursor forever.
//
// Message bodies (direction disambiguated by distinct csum salts):
//   S -> R : (epoch << 28) | (seqno << 8) | item
//   R -> S : (epoch << 28) | (frontier << 8)      frontier = items accepted
//
// Limits (checked): |D| <= 256, |X| < 2^20, epochs unbounded.
#pragma once

#include <cstdint>

#include "sim/process.hpp"

namespace stpx::proto {

class HardenedSender final : public sim::ISender {
 public:
  explicit HardenedSender(int domain_size);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob) override;
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "hardened-sender"; }

  std::size_t acked() const { return next_; }
  std::uint64_t epoch() const { return epoch_; }
  /// Deliveries dropped because the checksum did not validate.
  std::uint64_t rejected() const { return rejected_; }

 private:
  int domain_size_;
  seq::Sequence x_;
  std::size_t next_ = 0;        // first unacknowledged index
  std::uint64_t epoch_ = 0;     // newest receiver epoch seen
  std::uint64_t rejected_ = 0;  // volatile diagnostic, not checkpointed
};

class HardenedReceiver final : public sim::IReceiver {
 public:
  explicit HardenedReceiver(int domain_size);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override { return sim::kUnboundedAlphabet; }
  std::string save_state() const override;
  bool restore_state(const std::string& blob,
                     const seq::Sequence& tape) override;
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "hardened-receiver"; }

  std::uint64_t epoch() const { return epoch_; }
  /// Deliveries dropped because the checksum did not validate.
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::size_t frontier() const {
    return static_cast<std::size_t>(written_) + pending_writes_.size();
  }

  int domain_size_;
  std::uint64_t epoch_ = 0;  // bumped on every successful restore
  std::int64_t written_ = 0;
  std::vector<seq::DataItem> pending_writes_;
  std::uint64_t rejected_ = 0;  // volatile diagnostic, not checkpointed
};

/// The sealed-blob helpers, exposed for tests (tamper-detection coverage).
/// make_hardened() lives in proto/suite.hpp with the other factories.
std::string hardened_seal_blob(const std::string& payload);
bool hardened_unseal_blob(const std::string& blob, std::string& payload);

}  // namespace stpx::proto
