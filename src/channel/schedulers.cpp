#include "channel/schedulers.hpp"

#include "util/expect.hpp"

namespace stpx::channel {

using sim::Action;
using sim::ActionKind;
using sim::SchedView;

// ---------------------------------------------------------------- random --

FairRandomScheduler::FairRandomScheduler(FairRandomConfig config)
    : config_(config), rng_(config.seed) {
  STPX_EXPECT(config.sender_weight >= 0 && config.receiver_weight >= 0 &&
                  config.delivery_weight >= 0,
              "FairRandomScheduler: negative weight");
  STPX_EXPECT(config.sender_weight + config.receiver_weight +
                      config.delivery_weight > 0,
              "FairRandomScheduler: all weights zero");
}

void FairRandomScheduler::reset() {
  rng_.reseed(config_.seed);
  since_sender_ = 0;
  since_receiver_ = 0;
}

Action FairRandomScheduler::choose(const SchedView& view) {
  // Anti-starvation overrides keep both processes stepping.
  if (since_sender_ >= config_.starvation_limit) {
    since_sender_ = 0;
    ++since_receiver_;
    return Action{ActionKind::kSenderStep, -1};
  }
  if (since_receiver_ >= config_.starvation_limit) {
    since_receiver_ = 0;
    ++since_sender_;
    return Action{ActionKind::kReceiverStep, -1};
  }

  const bool any_delivery = !view.deliverable_to_receiver.empty() ||
                            !view.deliverable_to_sender.empty();
  const double dw = any_delivery ? config_.delivery_weight : 0.0;
  const double total = config_.sender_weight + config_.receiver_weight + dw;
  const double u =
      static_cast<double>(rng_() >> 11) * 0x1.0p-53 * total;

  Action out;
  if (u < config_.sender_weight) {
    out = Action{ActionKind::kSenderStep, -1};
  } else if (u < config_.sender_weight + config_.receiver_weight) {
    out = Action{ActionKind::kReceiverStep, -1};
  } else {
    // Pick uniformly among all deliverable messages, both directions.
    const std::size_t nr = view.deliverable_to_receiver.size();
    const std::size_t ns = view.deliverable_to_sender.size();
    const std::size_t idx = static_cast<std::size_t>(rng_.below(nr + ns));
    if (idx < nr) {
      out = Action{ActionKind::kDeliverToReceiver,
                   view.deliverable_to_receiver[idx]};
    } else {
      out = Action{ActionKind::kDeliverToSender,
                   view.deliverable_to_sender[idx - nr]};
    }
  }

  if (out.kind == ActionKind::kSenderStep) {
    since_sender_ = 0;
    ++since_receiver_;
  } else if (out.kind == ActionKind::kReceiverStep) {
    since_receiver_ = 0;
    ++since_sender_;
  } else {
    ++since_sender_;
    ++since_receiver_;
  }
  return out;
}

std::unique_ptr<sim::IScheduler> FairRandomScheduler::clone() const {
  return std::make_unique<FairRandomScheduler>(*this);
}

// ----------------------------------------------------------- round robin --

void RoundRobinScheduler::reset() {
  phase_ = 0;
  rotate_r_ = 0;
  rotate_s_ = 0;
}

Action RoundRobinScheduler::choose(const SchedView& view) {
  // Four-phase rotation; delivery phases fall through to the next phase when
  // nothing is deliverable in that direction.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t phase = phase_ % 4;
    ++phase_;
    switch (phase) {
      case 0:
        return Action{ActionKind::kSenderStep, -1};
      case 1:
        if (!view.deliverable_to_receiver.empty()) {
          const auto& v = view.deliverable_to_receiver;
          return Action{ActionKind::kDeliverToReceiver,
                        v[rotate_r_++ % v.size()]};
        }
        break;
      case 2:
        return Action{ActionKind::kReceiverStep, -1};
      case 3:
        if (!view.deliverable_to_sender.empty()) {
          const auto& v = view.deliverable_to_sender;
          return Action{ActionKind::kDeliverToSender,
                        v[rotate_s_++ % v.size()]};
        }
        break;
    }
  }
  return Action{ActionKind::kSenderStep, -1};
}

std::unique_ptr<sim::IScheduler> RoundRobinScheduler::clone() const {
  return std::make_unique<RoundRobinScheduler>(*this);
}

// -------------------------------------------------------------- scripted --

ScriptedScheduler::ScriptedScheduler(std::vector<sim::Action> script)
    : script_(std::move(script)) {}

void ScriptedScheduler::reset() {
  next_ = 0;
  fallback_.reset();
}

Action ScriptedScheduler::choose(const SchedView& view) {
  if (next_ < script_.size()) return script_[next_++];
  return fallback_.choose(view);
}

std::unique_ptr<sim::IScheduler> ScriptedScheduler::clone() const {
  return std::make_unique<ScriptedScheduler>(*this);
}

}  // namespace stpx::channel
