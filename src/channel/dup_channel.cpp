#include "channel/dup_channel.hpp"

#include "util/expect.hpp"

namespace stpx::channel {

void DupChannel::reset() {
  ever_sent_[0].clear();
  ever_sent_[1].clear();
}

void DupChannel::send(sim::Dir dir, sim::MsgId msg) { bag(dir).insert(msg); }

std::vector<sim::MsgId> DupChannel::deliverable(sim::Dir dir) const {
  return {bag(dir).begin(), bag(dir).end()};
}

std::uint64_t DupChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  return bag(dir).count(msg) ? 1 : 0;
}

void DupChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "DupChannel::deliver: message never sent");
  // A dup channel never forgets: the message stays deliverable.
}

void DupChannel::drop(sim::Dir, sim::MsgId) {
  STPX_EXPECT(false, "DupChannel cannot drop messages (Property 1c)");
}

std::unique_ptr<sim::IChannel> DupChannel::clone() const {
  return std::make_unique<DupChannel>(*this);
}

}  // namespace stpx::channel
