#include "channel/dupdel_channel.hpp"

#include "util/expect.hpp"

namespace stpx::channel {

DupDelChannel::DupDelChannel(double suppress_prob, std::uint64_t seed)
    : suppress_prob_(suppress_prob), rng_(seed) {
  STPX_EXPECT(suppress_prob >= 0.0 && suppress_prob <= 1.0,
              "DupDelChannel: suppress_prob out of [0,1]");
}

void DupDelChannel::reset() {
  live_[0].clear();
  live_[1].clear();
}

void DupDelChannel::send(sim::Dir dir, sim::MsgId msg) {
  const bool suppressed =
      suppress_prob_ > 0.0 && rng_.chance(suppress_prob_);
  auto [it, inserted] = bag(dir).emplace(msg, !suppressed);
  if (!inserted && !suppressed) it->second = true;  // re-send revives the id
}

std::vector<sim::MsgId> DupDelChannel::deliverable(sim::Dir dir) const {
  std::vector<sim::MsgId> out;
  for (const auto& [msg, live] : bag(dir)) {
    if (live) out.push_back(msg);
  }
  return out;
}

std::uint64_t DupDelChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  const auto it = bag(dir).find(msg);
  return it != bag(dir).end() && it->second ? 1 : 0;
}

void DupDelChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "DupDelChannel::deliver: not live");
  // Duplication: delivery never consumes; the id stays live.
}

void DupDelChannel::drop(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "DupDelChannel::drop: not live");
  bag(dir)[msg] = false;
}

std::uint64_t DupDelChannel::drop_everything() {
  std::uint64_t dropped = 0;
  for (auto& dir_bag : live_) {
    for (auto& [msg, live] : dir_bag) {
      (void)msg;
      if (live) {
        live = false;
        ++dropped;
      }
    }
  }
  return dropped;
}

std::unique_ptr<sim::IChannel> DupDelChannel::clone() const {
  return std::make_unique<DupDelChannel>(*this);
}

}  // namespace stpx::channel
