#include "channel/sync_channel.hpp"

#include "util/expect.hpp"

namespace stpx::channel {

SyncLossChannel::SyncLossChannel(double loss_prob, std::uint64_t seed)
    : loss_prob_(loss_prob), rng_(seed) {
  STPX_EXPECT(loss_prob >= 0.0 && loss_prob <= 1.0,
              "SyncLossChannel: loss_prob out of [0,1]");
}

void SyncLossChannel::reset() {
  queues_[0].clear();
  queues_[1].clear();
}

void SyncLossChannel::send(sim::Dir dir, sim::MsgId msg) {
  if (dir == sim::Dir::kSenderToReceiver) {
    // Each data transmission gets an environment verdict, delivered to the
    // sender through the reverse direction.
    if (loss_prob_ > 0.0 && rng_.chance(loss_prob_)) {
      queue(sim::Dir::kReceiverToSender).push_back(kSyncNack);
      return;
    }
    queue(dir).push_back(msg);
    queue(sim::Dir::kReceiverToSender).push_back(kSyncAck);
    return;
  }
  // Receiver->sender traffic (unused by the sync protocol) is a plain
  // lossless FIFO so verdict tokens and acks cannot be confused.
  queue(dir).push_back(msg);
}

std::vector<sim::MsgId> SyncLossChannel::deliverable(sim::Dir dir) const {
  if (queue(dir).empty()) return {};
  return {queue(dir).front()};
}

std::uint64_t SyncLossChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  return (!queue(dir).empty() && queue(dir).front() == msg) ? 1 : 0;
}

void SyncLossChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "SyncLossChannel::deliver: not at head");
  queue(dir).pop_front();
}

void SyncLossChannel::drop(sim::Dir, sim::MsgId) {
  STPX_EXPECT(false,
              "SyncLossChannel: loss happens only at send time (detected)");
}

std::unique_ptr<sim::IChannel> SyncLossChannel::clone() const {
  return std::make_unique<SyncLossChannel>(*this);
}

}  // namespace stpx::channel
