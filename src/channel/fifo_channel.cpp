#include "channel/fifo_channel.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::channel {

FifoChannel::FifoChannel(double loss_prob, double dup_prob,
                         std::uint64_t seed)
    : loss_prob_(loss_prob), dup_prob_(dup_prob), rng_(seed) {
  STPX_EXPECT(loss_prob >= 0.0 && loss_prob <= 1.0,
              "FifoChannel: loss_prob out of [0,1]");
  STPX_EXPECT(dup_prob >= 0.0 && dup_prob <= 1.0,
              "FifoChannel: dup_prob out of [0,1]");
}

void FifoChannel::reset() {
  queues_[0].clear();
  queues_[1].clear();
}

void FifoChannel::send(sim::Dir dir, sim::MsgId msg) {
  if (loss_prob_ > 0.0 && rng_.chance(loss_prob_)) return;
  queue(dir).push_back(msg);
  if (dup_prob_ > 0.0 && rng_.chance(dup_prob_)) queue(dir).push_back(msg);
}

std::vector<sim::MsgId> FifoChannel::deliverable(sim::Dir dir) const {
  if (queue(dir).empty()) return {};
  return {queue(dir).front()};
}

std::uint64_t FifoChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  // Only the head is deliverable, so at most one "copy" is visible.
  return (!queue(dir).empty() && queue(dir).front() == msg) ? 1 : 0;
}

void FifoChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "FifoChannel::deliver: not at head");
  queue(dir).pop_front();
}

void FifoChannel::drop(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(copies(dir, msg) > 0, "FifoChannel::drop: not at head");
  queue(dir).pop_front();
}

std::uint64_t FifoChannel::drop_everything() {
  const std::uint64_t total = queues_[0].size() + queues_[1].size();
  queues_[0].clear();
  queues_[1].clear();
  return total;
}

std::unique_ptr<sim::IChannel> FifoChannel::clone() const {
  return std::make_unique<FifoChannel>(*this);
}

}  // namespace stpx::channel
