// Order-preserving channel with optional loss and duplication.
//
// Outside the paper's reordering regime: used by baselines that assume FIFO
// links (the Alternating Bit Protocol, and the §5 hybrid construction whose
// first phase is ABP).  Loss deletes a sent copy with probability
// `loss_prob`; duplication enqueues a second copy with probability
// `dup_prob`.  Only the head of the queue is deliverable.
#pragma once

#include <deque>

#include "sim/channel_iface.hpp"
#include "util/rng.hpp"

namespace stpx::channel {

class FifoChannel final : public sim::IChannel {
 public:
  FifoChannel() = default;
  FifoChannel(double loss_prob, double dup_prob, std::uint64_t seed);

  void reset() override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return true; }
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "fifo-channel"; }

  /// Fault injection: clear both queues; returns copies deleted.
  std::uint64_t drop_everything();

  std::size_t queue_length(sim::Dir dir) const {
    return queue(dir).size();
  }

 private:
  const std::deque<sim::MsgId>& queue(sim::Dir dir) const {
    return queues_[static_cast<std::size_t>(dir)];
  }
  std::deque<sim::MsgId>& queue(sim::Dir dir) {
    return queues_[static_cast<std::size_t>(dir)];
  }

  std::deque<sim::MsgId> queues_[2];
  double loss_prob_ = 0.0;
  double dup_prob_ = 0.0;
  Rng rng_{0};
};

}  // namespace stpx::channel
