// The reordering + duplicating channel of 𝒳-STP(dup) (paper §2.2, §3).
//
// Environment state per direction is the *set* of messages ever sent: once a
// message has been sent, the channel may deliver an unbounded number of
// copies of it, at any time, forever.  deliver() therefore does not consume
// anything, and deletion is impossible (Property 1c: every sent message is
// eventually delivered at least as often as sent — trivially satisfiable
// here since the set never shrinks).
#pragma once

#include <set>

#include "sim/channel_iface.hpp"

namespace stpx::channel {

class DupChannel final : public sim::IChannel {
 public:
  void reset() override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return false; }
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "dup-channel"; }

 private:
  const std::set<sim::MsgId>& bag(sim::Dir dir) const {
    return ever_sent_[static_cast<std::size_t>(dir)];
  }
  std::set<sim::MsgId>& bag(sim::Dir dir) {
    return ever_sent_[static_cast<std::size_t>(dir)];
  }

  std::set<sim::MsgId> ever_sent_[2];
};

}  // namespace stpx::channel
