// Scheduler implementations.
//
// * FairRandomScheduler — seeded randomized "nature": both processes step
//   regularly and every deliverable message keeps getting chances, so fair
//   runs (in the paper's sense) occur with probability 1 as the step budget
//   grows.  Starvation is additionally prevented by aging: an action
//   category unchosen for too long is forced.
// * RoundRobinScheduler — deterministic S-step / deliver→R / R-step /
//   deliver→S rotation; a maximally benign channel for smoke tests.
// * ScriptedScheduler — replays a fixed action list (the adversary of a
//   synthesized attack, or a recorded run); falls back to round-robin when
//   the script is exhausted.
#pragma once

#include <cstdint>

#include "sim/scheduler_iface.hpp"
#include "util/rng.hpp"

namespace stpx::channel {

struct FairRandomConfig {
  std::uint64_t seed = 1;
  /// Relative weights of the action categories.
  double sender_weight = 1.0;
  double receiver_weight = 1.0;
  double delivery_weight = 2.0;
  /// Force a process step if it has not run for this many steps.
  std::uint64_t starvation_limit = 64;
};

class FairRandomScheduler final : public sim::IScheduler {
 public:
  explicit FairRandomScheduler(FairRandomConfig config);
  explicit FairRandomScheduler(std::uint64_t seed)
      : FairRandomScheduler(FairRandomConfig{.seed = seed}) {}

  void reset() override;
  sim::Action choose(const sim::SchedView& view) override;
  std::unique_ptr<sim::IScheduler> clone() const override;
  std::string name() const override { return "fair-random"; }

 private:
  FairRandomConfig config_;
  Rng rng_;
  std::uint64_t since_sender_ = 0;
  std::uint64_t since_receiver_ = 0;
};

class RoundRobinScheduler final : public sim::IScheduler {
 public:
  void reset() override;
  sim::Action choose(const sim::SchedView& view) override;
  std::unique_ptr<sim::IScheduler> clone() const override;
  std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t phase_ = 0;
  std::size_t rotate_r_ = 0;  // rotating pick within deliverable sets
  std::size_t rotate_s_ = 0;
};

class ScriptedScheduler final : public sim::IScheduler {
 public:
  explicit ScriptedScheduler(std::vector<sim::Action> script);

  void reset() override;
  sim::Action choose(const sim::SchedView& view) override;
  std::unique_ptr<sim::IScheduler> clone() const override;
  std::string name() const override { return "scripted"; }

 private:
  std::vector<sim::Action> script_;
  std::size_t next_ = 0;
  RoundRobinScheduler fallback_;
};

}  // namespace stpx::channel
