// The reordering + deleting channel of 𝒳-STP(del) (paper §2.2, §4).
//
// Environment state per direction is a *multiset*: the number of copies of
// each message sent and not yet delivered (the paper's dlvrble_p vector for
// the deletion case).  deliver() consumes a copy; drop() deletes one — the
// adversary's move.  An optional Bernoulli loss policy deletes each sent
// copy with probability `loss_prob` at send time (statistically equivalent
// to an adversary that deletes independently, used by the cost experiments).
#pragma once

#include <map>

#include "sim/channel_iface.hpp"
#include "util/rng.hpp"

namespace stpx::channel {

class DelChannel final : public sim::IChannel {
 public:
  DelChannel() = default;
  /// loss_prob in [0,1]: probability each sent copy is deleted immediately.
  DelChannel(double loss_prob, std::uint64_t seed);

  void reset() override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return true; }
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "del-channel"; }

  /// Fault injection: delete every in-flight copy in both directions.
  /// Returns the number of copies deleted.
  std::uint64_t drop_everything();

  /// Total in-flight copies in `dir`.
  std::uint64_t in_flight(sim::Dir dir) const;

 private:
  const std::map<sim::MsgId, std::uint64_t>& bag(sim::Dir dir) const {
    return pending_[static_cast<std::size_t>(dir)];
  }
  std::map<sim::MsgId, std::uint64_t>& bag(sim::Dir dir) {
    return pending_[static_cast<std::size_t>(dir)];
  }
  void remove_copy(sim::Dir dir, sim::MsgId msg, const char* what);

  std::map<sim::MsgId, std::uint64_t> pending_[2];
  double loss_prob_ = 0.0;
  Rng rng_{0};
};

}  // namespace stpx::channel
