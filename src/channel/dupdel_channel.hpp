// The reorder + duplicate + delete channel.
//
// [AFWZ89] (cited in §1) shows 𝒳-STP is unsolvable when the channel can
// both duplicate and reorder, *for uncountable 𝒳*; with countable 𝒳 the
// interesting boundary is liveness: a message may be replayed forever OR
// suppressed forever, so a sender that transmits a message only once (the
// optimal move on a pure dup channel) can starve the receiver.
//
// Semantics: per direction, every message id is in one of three states —
// never-sent, suppressed (deleted: all copies gone, replays impossible
// until re-sent), or live (deliverable arbitrarily many times).  At send
// time the adversary may suppress the transmission with probability
// `suppress_prob`; a later re-send of the same id can succeed and make the
// id live.  With suppress_prob = 0 this degenerates to DupChannel; with
// re-sends it models "each transmission independently lost or amplified".
#pragma once

#include <map>

#include "sim/channel_iface.hpp"
#include "util/rng.hpp"

namespace stpx::channel {

class DupDelChannel final : public sim::IChannel {
 public:
  DupDelChannel() = default;
  DupDelChannel(double suppress_prob, std::uint64_t seed);

  void reset() override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return true; }
  /// Drop = suppress a live id (deletes "all copies" at once — on a
  /// duplicating channel partial deletion is meaningless).
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "dupdel-channel"; }

  /// Fault injection: suppress every live id in both directions.
  std::uint64_t drop_everything();

 private:
  const std::map<sim::MsgId, bool>& bag(sim::Dir dir) const {
    return live_[static_cast<std::size_t>(dir)];
  }
  std::map<sim::MsgId, bool>& bag(sim::Dir dir) {
    return live_[static_cast<std::size_t>(dir)];
  }

  // id -> live?  (present+false = suppressed, absent = never sent)
  std::map<sim::MsgId, bool> live_[2];
  double suppress_prob_ = 0.0;
  Rng rng_{0};
};

}  // namespace stpx::channel
