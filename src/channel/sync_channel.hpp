// The synchronous, detectable-loss link of the early protocol literature
// ([AUY79], [AUWY82] — the paper's §1 contrast class).
//
// In that model a transmission either arrives or its loss is DETECTED by
// the sender; nothing is reordered or duplicated.  We realize detection as
// an environment-generated verdict token per transmission: each send
// either enqueues the message (FIFO) and an ACK token, or drops it and
// enqueues a NACK token.  Verdict tokens travel the reverse direction and
// are delivered like any message (the sender learns each transmission's
// fate, in order).
//
// The point of carrying this channel at all: with detectability and order,
// STP for ALL sequences needs |M^S| = |D| and no receiver->sender messages
// whatsoever (see proto::SyncStopAndWait) — it is the paper's *asynchronous
// reordering* assumptions that create the alpha(m) wall (ablation A3).
#pragma once

#include <deque>

#include "sim/channel_iface.hpp"
#include "util/rng.hpp"

namespace stpx::channel {

/// Environment verdict tokens (outside any protocol alphabet).
inline constexpr sim::MsgId kSyncAck = 1 << 20;
inline constexpr sim::MsgId kSyncNack = (1 << 20) + 1;

class SyncLossChannel final : public sim::IChannel {
 public:
  SyncLossChannel() = default;
  SyncLossChannel(double loss_prob, std::uint64_t seed);

  void reset() override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return false; }  // loss is policy-only
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "sync-loss-channel"; }

 private:
  const std::deque<sim::MsgId>& queue(sim::Dir dir) const {
    return queues_[static_cast<std::size_t>(dir)];
  }
  std::deque<sim::MsgId>& queue(sim::Dir dir) {
    return queues_[static_cast<std::size_t>(dir)];
  }

  std::deque<sim::MsgId> queues_[2];
  double loss_prob_ = 0.0;
  Rng rng_{0};
};

}  // namespace stpx::channel
