#include "channel/del_channel.hpp"

#include "util/expect.hpp"

namespace stpx::channel {

DelChannel::DelChannel(double loss_prob, std::uint64_t seed)
    : loss_prob_(loss_prob), rng_(seed) {
  STPX_EXPECT(loss_prob >= 0.0 && loss_prob <= 1.0,
              "DelChannel: loss_prob out of [0,1]");
}

void DelChannel::reset() {
  pending_[0].clear();
  pending_[1].clear();
}

void DelChannel::send(sim::Dir dir, sim::MsgId msg) {
  if (loss_prob_ > 0.0 && rng_.chance(loss_prob_)) {
    return;  // the adversary deletes this copy at once
  }
  ++bag(dir)[msg];
}

std::vector<sim::MsgId> DelChannel::deliverable(sim::Dir dir) const {
  std::vector<sim::MsgId> out;
  out.reserve(bag(dir).size());
  for (const auto& [msg, count] : bag(dir)) {
    if (count > 0) out.push_back(msg);
  }
  return out;
}

std::uint64_t DelChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  auto it = bag(dir).find(msg);
  return it == bag(dir).end() ? 0 : it->second;
}

void DelChannel::remove_copy(sim::Dir dir, sim::MsgId msg, const char* what) {
  auto it = bag(dir).find(msg);
  STPX_EXPECT(it != bag(dir).end() && it->second > 0,
              std::string("DelChannel::") + what + ": no copy in flight");
  if (--it->second == 0) bag(dir).erase(it);
}

void DelChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  remove_copy(dir, msg, "deliver");
}

void DelChannel::drop(sim::Dir dir, sim::MsgId msg) {
  remove_copy(dir, msg, "drop");
}

std::uint64_t DelChannel::drop_everything() {
  std::uint64_t dropped = 0;
  for (auto& dir_bag : pending_) {
    for (const auto& [msg, count] : dir_bag) {
      (void)msg;
      dropped += count;
    }
    dir_bag.clear();
  }
  return dropped;
}

std::uint64_t DelChannel::in_flight(sim::Dir dir) const {
  std::uint64_t total = 0;
  for (const auto& [msg, count] : bag(dir)) {
    (void)msg;
    total += count;
  }
  return total;
}

std::unique_ptr<sim::IChannel> DelChannel::clone() const {
  return std::make_unique<DelChannel>(*this);
}

}  // namespace stpx::channel
