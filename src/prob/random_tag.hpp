// Probabilistic STP — the paper's §6 future-work direction, implemented.
//
//   "it is conceivable that we sometimes can be satisfied with 'solutions'
//    to 𝒳-STP with |𝒳| > alpha(m) that, although having the possibility of
//    failure, present an acceptably low probability of failure."
//
// The construction: to carry an ARBITRARY sequence over domain D (|D| = d —
// repetitions allowed, so |𝒳| = d^L >> alpha(m) for length-L inputs), the
// sender tags each position with a fresh random k-bit tag and transmits
// (tag_i, x_i) with the repetition-free discipline over the enlarged
// alphabet M^S = {0 .. d*2^k - 1}.  The receiver writes the item of every
// *new* message and echoes it as the acknowledgement — it is exactly the
// paper's protocol run on the tagged alphabet.
//
// Failure mode: if two positions draw the same (tag, item) pair, the
// channel can replay the first copy as the second, the receiver ignores it
// as a duplicate, the stale echoed ack releases the sender, and the output
// skips an item — a genuine safety violation.  Per-pair collision
// probability is 2^-k when the items already match, so
//
//     P(failure) <= C(L,2) * 2^-k         (union bound; birthday regime)
//
// decaying exponentially in the tag width while the alphabet grows only
// linearly in 2^k.  Theorems 1/2 say epsilon = 0 is impossible at this
// |𝒳|; this module measures how cheaply epsilon > 0 can be bought.
//
// A deterministic ablation is included: tags assigned round-robin
// (position mod 2^k).  Same alphabet, but any input repeating an item at
// distance exactly 2^k fails with certainty — randomization buys
// worst-case smoothing, not just average-case.
#pragma once

#include "proto/suite.hpp"
#include "util/rng.hpp"

namespace stpx::prob {

/// How position tags are assigned.
enum class TagPolicy {
  kRandom,      // fresh k-bit tag per position (seeded, reproducible)
  kRoundRobin,  // tag = position mod 2^k (deterministic ablation)
};

class TaggedSender final : public sim::ISender {
 public:
  /// domain_size = |D|; tag_bits = k; retransmit selects del-channel mode.
  TaggedSender(int domain_size, int tag_bits, TagPolicy policy,
               std::uint64_t seed, bool retransmit);

  void start(const seq::Sequence& x) override;
  sim::SenderEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override {
    return domain_size_ * (1 << tag_bits_);
  }
  std::unique_ptr<sim::ISender> clone() const override;
  std::string name() const override { return "tagged-sender"; }

  /// The tagged word chosen for the current input (for tests/diagnosis).
  const std::vector<sim::MsgId>& word() const { return word_; }

 private:
  int domain_size_;
  int tag_bits_;
  TagPolicy policy_;
  Rng rng_;
  bool retransmit_;
  std::vector<sim::MsgId> word_;
  std::size_t next_ = 0;
  bool sent_current_ = false;
};

class TaggedReceiver final : public sim::IReceiver {
 public:
  TaggedReceiver(int domain_size, int tag_bits, bool reack);

  void start() override;
  sim::ReceiverEffect on_step() override;
  void on_deliver(sim::MsgId msg) override;
  int alphabet_size() const override {
    return domain_size_ * (1 << tag_bits_);
  }
  std::unique_ptr<sim::IReceiver> clone() const override;
  std::string name() const override { return "tagged-receiver"; }

 private:
  int domain_size_;
  int tag_bits_;
  bool reack_;
  std::vector<bool> seen_;
  std::vector<sim::MsgId> pending_acks_;
  std::optional<sim::MsgId> last_ack_;
  std::vector<seq::DataItem> pending_writes_;
};

/// Dup-channel pair (send-once).  `seed` drives the tag draws.
proto::ProtocolPair make_tagged_dup(int domain_size, int tag_bits,
                                    TagPolicy policy, std::uint64_t seed);

/// Del-channel pair (retransmit + re-ack).
proto::ProtocolPair make_tagged_del(int domain_size, int tag_bits,
                                    TagPolicy policy, std::uint64_t seed);

/// Union-bound failure estimate C(L,2) * 2^-k (an upper bound; the true
/// rate also requires the colliding positions to carry equal items).
double collision_upper_bound(std::size_t length, int tag_bits);

}  // namespace stpx::prob
