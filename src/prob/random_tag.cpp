#include "prob/random_tag.hpp"

#include "util/expect.hpp"

namespace stpx::prob {

// ---------------------------------------------------------------- sender --

TaggedSender::TaggedSender(int domain_size, int tag_bits, TagPolicy policy,
                           std::uint64_t seed, bool retransmit)
    : domain_size_(domain_size),
      tag_bits_(tag_bits),
      policy_(policy),
      rng_(seed),
      retransmit_(retransmit) {
  STPX_EXPECT(domain_size >= 1, "TaggedSender: domain must be non-empty");
  STPX_EXPECT(tag_bits >= 0 && tag_bits <= 20,
              "TaggedSender: tag_bits out of sane range");
}

void TaggedSender::start(const seq::Sequence& x) {
  STPX_EXPECT(seq::in_domain(x, seq::Domain{domain_size_}),
              "TaggedSender: input outside domain");
  const std::uint64_t tags = std::uint64_t{1} << tag_bits_;
  word_.clear();
  word_.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::uint64_t tag = policy_ == TagPolicy::kRandom
                                  ? rng_.below(tags)
                                  : i % tags;
    word_.push_back(static_cast<sim::MsgId>(tag) * domain_size_ + x[i]);
  }
  next_ = 0;
  sent_current_ = false;
}

sim::SenderEffect TaggedSender::on_step() {
  if (next_ >= word_.size()) return {};
  if (!retransmit_ && sent_current_) return {};
  sent_current_ = true;
  return sim::SenderEffect{.send = word_[next_]};
}

void TaggedSender::on_deliver(sim::MsgId msg) {
  // Echo acknowledgement of the current tagged message.  A *stale* echo of
  // an identical earlier (tag, item) pair is indistinguishable — that is
  // precisely the probabilistic failure mode.
  if (next_ < word_.size() && msg == word_[next_]) {
    ++next_;
    sent_current_ = false;
  }
}

std::unique_ptr<sim::ISender> TaggedSender::clone() const {
  return std::make_unique<TaggedSender>(*this);
}

// -------------------------------------------------------------- receiver --

TaggedReceiver::TaggedReceiver(int domain_size, int tag_bits, bool reack)
    : domain_size_(domain_size), tag_bits_(tag_bits), reack_(reack) {
  STPX_EXPECT(domain_size >= 1, "TaggedReceiver: domain must be non-empty");
  STPX_EXPECT(tag_bits >= 0 && tag_bits <= 20,
              "TaggedReceiver: tag_bits out of sane range");
}

void TaggedReceiver::start() {
  seen_.assign(static_cast<std::size_t>(alphabet_size()), false);
  pending_acks_.clear();
  last_ack_.reset();
  pending_writes_.clear();
}

sim::ReceiverEffect TaggedReceiver::on_step() {
  sim::ReceiverEffect eff;
  eff.writes = std::move(pending_writes_);
  pending_writes_.clear();
  if (!pending_acks_.empty()) {
    eff.send = pending_acks_.front();
    pending_acks_.erase(pending_acks_.begin());
  } else if (reack_ && last_ack_) {
    eff.send = *last_ack_;
  }
  return eff;
}

void TaggedReceiver::on_deliver(sim::MsgId msg) {
  STPX_EXPECT(msg >= 0 && msg < alphabet_size(),
              "TaggedReceiver: message outside M^S");
  const auto idx = static_cast<std::size_t>(msg);
  if (seen_[idx]) return;  // duplicate or replay — or a tag collision
  seen_[idx] = true;
  pending_writes_.push_back(static_cast<seq::DataItem>(msg % domain_size_));
  pending_acks_.push_back(msg);
  last_ack_ = msg;
}

std::unique_ptr<sim::IReceiver> TaggedReceiver::clone() const {
  return std::make_unique<TaggedReceiver>(*this);
}

// -------------------------------------------------------------- factories --

proto::ProtocolPair make_tagged_dup(int domain_size, int tag_bits,
                                    TagPolicy policy, std::uint64_t seed) {
  return {std::make_unique<TaggedSender>(domain_size, tag_bits, policy, seed,
                                         /*retransmit=*/false),
          std::make_unique<TaggedReceiver>(domain_size, tag_bits,
                                           /*reack=*/false)};
}

proto::ProtocolPair make_tagged_del(int domain_size, int tag_bits,
                                    TagPolicy policy, std::uint64_t seed) {
  return {std::make_unique<TaggedSender>(domain_size, tag_bits, policy, seed,
                                         /*retransmit=*/true),
          std::make_unique<TaggedReceiver>(domain_size, tag_bits,
                                           /*reack=*/true)};
}

double collision_upper_bound(std::size_t length, int tag_bits) {
  const double pairs =
      static_cast<double>(length) * static_cast<double>(length - 1) / 2.0;
  return pairs / static_cast<double>(std::uint64_t{1} << tag_bits);
}

}  // namespace stpx::prob
