// Conformance suite for the wire layer (ctest -L net_smoke):
//
//   * codec — round-trip identity, field validation, and the byte-mangling
//     sweep (every single-byte corruption of a valid frame is rejected;
//     decode never throws on arbitrary bytes);
//   * loopback transport — FaultPlan-scripted drop/dup/blackout/freeze/cap
//     semantics, bounded queues, seeded reordering;
//   * session adapters — engine-free protocol driving with the online
//     prefix-safety check;
//   * SessionMux / service façade — small perfect-link runs, lossy runs,
//     routing rejects, inbox backpressure, idle eviction, metrics; and the
//     acceptance run: >= 1000 concurrent sessions over a lossy reordering
//     link, every one completing with its output an exact copy of its
//     input, prefix-safe at every write (attested by a checking probe);
//   * UDP transport — skipped gracefully where the environment forbids
//     sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "fault/plan.hpp"
#include "net/frame.hpp"
#include "net/loopback.hpp"
#include "net/mux.hpp"
#include "net/service.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"
#include "proto/session_adapter.hpp"
#include "proto/suite.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx {
namespace {

using namespace std::chrono_literals;

constexpr int kDomain = 8;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

std::vector<std::uint8_t> frame_bytes(std::uint32_t session, sim::MsgId msg,
                                      sim::Dir dir = sim::Dir::kSenderToReceiver,
                                      net::FrameKind kind = net::FrameKind::kData) {
  net::Frame f;
  f.kind = kind;
  f.dir = dir;
  f.session = session;
  f.msg = msg;
  return net::encode(f);
}

/// Re-stamp the checksum after tampering with header bytes, so the reject
/// reason under test is the field check rather than the checksum.
void restamp(std::vector<std::uint8_t>& b) {
  const std::uint32_t sum = net::fnv1a32(b.data(), net::kFrameSize - 4);
  b[17] = static_cast<std::uint8_t>(sum & 0xFF);
  b[18] = static_cast<std::uint8_t>((sum >> 8) & 0xFF);
  b[19] = static_cast<std::uint8_t>((sum >> 16) & 0xFF);
  b[20] = static_cast<std::uint8_t>((sum >> 24) & 0xFF);
}

// --------------------------------------------------------------------------
// Codec
// --------------------------------------------------------------------------

TEST(NetFrame, EncodeLayout) {
  const auto b = frame_bytes(0x01020304, 7);
  ASSERT_EQ(b.size(), net::kFrameSize);
  EXPECT_EQ(b[0], net::kMagic0);
  EXPECT_EQ(b[1], net::kMagic1);
  EXPECT_EQ(b[2], net::kWireVersion);
  EXPECT_EQ(b[3], 0);  // data
  EXPECT_EQ(b[4], 0);  // S->R
  // Session id, little-endian.
  EXPECT_EQ(b[5], 0x04);
  EXPECT_EQ(b[6], 0x03);
  EXPECT_EQ(b[7], 0x02);
  EXPECT_EQ(b[8], 0x01);
}

TEST(NetFrame, RoundTripSweep) {
  const std::uint32_t sessions[] = {0, 1, 77, 0xFFFFFFFFu};
  const sim::MsgId msgs[] = {0, 1, 4096, -1,
                             std::numeric_limits<sim::MsgId>::max(),
                             std::numeric_limits<sim::MsgId>::min()};
  for (const auto kind :
       {net::FrameKind::kData, net::FrameKind::kFin, net::FrameKind::kProbe,
        net::FrameKind::kProbeAck, net::FrameKind::kJoin,
        net::FrameKind::kJoinAck, net::FrameKind::kResolve,
        net::FrameKind::kResolveAck, net::FrameKind::kNotOwner}) {
    for (const auto dir :
         {sim::Dir::kSenderToReceiver, sim::Dir::kReceiverToSender}) {
      for (const auto session : sessions) {
        for (const auto msg : msgs) {
          net::Frame f;
          f.kind = kind;
          f.dir = dir;
          f.session = session;
          f.msg = msg;
          const auto decoded = net::decode(net::encode(f));
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(*decoded, f);
        }
      }
    }
  }
}

TEST(NetFrame, Fnv1aKnownVectors) {
  EXPECT_EQ(net::fnv1a32(nullptr, 0), 0x811C9DC5u);
  const std::uint8_t a = 'a';
  EXPECT_EQ(net::fnv1a32(&a, 1), 0xE40C292Cu);
  // Single-byte sensitivity at a fixed position: all 256 values hash apart.
  std::uint8_t buf[4] = {1, 2, 3, 4};
  std::map<std::uint32_t, int> seen;
  for (int v = 0; v < 256; ++v) {
    buf[2] = static_cast<std::uint8_t>(v);
    ++seen[net::fnv1a32(buf, 4)];
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(NetFrame, RejectsBadSize) {
  const auto good = frame_bytes(3, 9);
  for (std::size_t len = 0; len < net::kFrameSize; ++len) {
    net::RejectReason why{};
    EXPECT_FALSE(net::decode(good.data(), len, &why).has_value());
    EXPECT_EQ(why, net::RejectReason::kBadSize);
  }
  auto longer = good;
  longer.resize(net::kFrameSize + 3, 0);
  net::RejectReason why{};
  EXPECT_FALSE(net::decode(longer, &why).has_value());
  EXPECT_EQ(why, net::RejectReason::kBadSize);
}

TEST(NetFrame, RejectsBadFields) {
  struct Case {
    std::size_t offset;
    std::uint8_t value;
    net::RejectReason want;
  };
  const Case cases[] = {
      {0, 0x00, net::RejectReason::kBadMagic},
      {1, 0xFF, net::RejectReason::kBadMagic},
      {2, net::kWireVersion + 1, net::RejectReason::kBadVersion},
      {3, net::kMaxFrameKind + 1, net::RejectReason::kBadKind},
      {4, 2, net::RejectReason::kBadDir},
  };
  for (const auto& c : cases) {
    auto b = frame_bytes(3, 9);
    b[c.offset] = c.value;
    restamp(b);  // isolate the field check from the checksum check
    net::RejectReason why{};
    EXPECT_FALSE(net::decode(b, &why).has_value());
    EXPECT_EQ(why, c.want) << "offset " << c.offset;
  }
  // And an intact header with a wrong checksum.
  auto b = frame_bytes(3, 9);
  b[19] ^= 0x40;
  net::RejectReason why{};
  EXPECT_FALSE(net::decode(b, &why).has_value());
  EXPECT_EQ(why, net::RejectReason::kBadChecksum);
}

// The deterministic mangling sweep: every possible single-byte corruption
// of a valid frame (21 positions x 255 deltas) must be rejected — the
// checksum catches whatever the field checks let through.
TEST(NetFrame, SingleByteMangleAlwaysRejected) {
  const auto good = frame_bytes(0xDEADBEEF, 123456789, sim::Dir::kReceiverToSender,
                                net::FrameKind::kFin);
  ASSERT_TRUE(net::decode(good).has_value());
  for (std::size_t pos = 0; pos < net::kFrameSize; ++pos) {
    for (int delta = 1; delta < 256; ++delta) {
      auto b = good;
      b[pos] = static_cast<std::uint8_t>(b[pos] ^ delta);
      EXPECT_FALSE(net::decode(b).has_value())
          << "pos " << pos << " delta " << delta;
    }
  }
}

TEST(NetFrame, GarbageFuzzNeverThrows) {
  Rng rng(0xF00DF00DULL);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> b(static_cast<std::size_t>(rng.below(48)));
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.below(256));
    // Must not throw or crash; acceptance is allowed but wildly unlikely.
    (void)net::decode(b);
  }
}

// --------------------------------------------------------------------------
// Loopback transport
// --------------------------------------------------------------------------

TEST(NetLoopback, PerfectLinkIsFifoBothWays) {
  auto pair = net::make_loopback();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pair.a->send(frame_bytes(1, i)));
    EXPECT_TRUE(pair.b->send(frame_bytes(2, 100 + i)));
  }
  for (int i = 0; i < 5; ++i) {
    const auto from_a = pair.b->poll();
    ASSERT_TRUE(from_a.has_value());
    EXPECT_EQ(net::decode(*from_a)->msg, i);
    const auto from_b = pair.a->poll();
    ASSERT_TRUE(from_b.has_value());
    EXPECT_EQ(net::decode(*from_b)->msg, 100 + i);
  }
  EXPECT_FALSE(pair.a->poll().has_value());
  EXPECT_FALSE(pair.b->poll().has_value());
}

TEST(NetLoopback, DropBurstDiscardsExactCount) {
  // Fires as the 2nd send arrives: sends #2 and #3 are discarded.
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("drop @sends 2 dir SR count 2");
  auto pair = net::make_loopback(cfg);
  for (int i = 1; i <= 5; ++i) pair.a->send(frame_bytes(1, i));
  std::vector<sim::MsgId> got;
  while (auto b = pair.b->poll()) got.push_back(net::decode(*b)->msg);
  EXPECT_EQ(got, (std::vector<sim::MsgId>{1, 4, 5}));
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).dropped, 2u);
  EXPECT_EQ(pair.stats(sim::Dir::kReceiverToSender).dropped, 0u);
}

TEST(NetLoopback, DropCountZeroFlushesQueue) {
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("drop @sends 4 dir SR count 0");
  auto pair = net::make_loopback(cfg);
  for (int i = 1; i <= 4; ++i) pair.a->send(frame_bytes(1, i));
  std::vector<sim::MsgId> got;
  while (auto b = pair.b->poll()) got.push_back(net::decode(*b)->msg);
  // The 4th send triggers the flush of the three queued frames, then lands.
  EXPECT_EQ(got, (std::vector<sim::MsgId>{4}));
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).dropped, 3u);
}

TEST(NetLoopback, DupBurstDuplicates) {
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("dup @sends 1 dir RS count 2");
  auto pair = net::make_loopback(cfg);
  for (int i = 1; i <= 3; ++i) pair.b->send(frame_bytes(1, i));
  std::vector<sim::MsgId> got;
  while (auto b = pair.a->poll()) got.push_back(net::decode(*b)->msg);
  EXPECT_EQ(got, (std::vector<sim::MsgId>{1, 1, 2, 2, 3}));
  EXPECT_EQ(pair.stats(sim::Dir::kReceiverToSender).duplicated, 2u);
}

TEST(NetLoopback, BlackoutSwallowsSendsUntilTicksElapse) {
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("blackout @step 0 dir SR len 3");
  auto pair = net::make_loopback(cfg);
  EXPECT_FALSE(pair.a->send(frame_bytes(1, 1)));  // swallowed
  // Three polls advance the link clock past the window.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(pair.b->poll().has_value());
  EXPECT_TRUE(pair.a->send(frame_bytes(1, 2)));
  const auto b = pair.b->poll();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(net::decode(*b)->msg, 2);
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).blacked_out, 1u);
}

TEST(NetLoopback, FreezeRetainsFramesUntilThaw) {
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("freeze @step 0 dir SR len 3");
  auto pair = net::make_loopback(cfg);
  EXPECT_TRUE(pair.a->send(frame_bytes(1, 9)));  // queued, not dropped
  EXPECT_FALSE(pair.b->poll().has_value());      // tick 1 < 3: frozen
  EXPECT_FALSE(pair.b->poll().has_value());      // tick 2 < 3: frozen
  const auto b = pair.b->poll();                 // tick 3: thawed
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(net::decode(*b)->msg, 9);
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).frozen_polls, 2u);
}

TEST(NetLoopback, CapShedsOverflow) {
  net::LoopbackConfig cfg;
  cfg.plan = fault::plan_from_text("cap @sends 1 dir SR count 2");
  auto pair = net::make_loopback(cfg);
  EXPECT_TRUE(pair.a->send(frame_bytes(1, 1)));
  EXPECT_TRUE(pair.a->send(frame_bytes(1, 2)));
  EXPECT_FALSE(pair.a->send(frame_bytes(1, 3)));  // queue at cap: shed
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).shed, 1u);
}

TEST(NetLoopback, MaxQueueBoundSheds) {
  net::LoopbackConfig cfg;
  cfg.max_queue = 1;
  auto pair = net::make_loopback(cfg);
  EXPECT_TRUE(pair.a->send(frame_bytes(1, 1)));
  EXPECT_FALSE(pair.a->send(frame_bytes(1, 2)));
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).shed, 1u);
}

TEST(NetLoopback, ReorderDeliversPermutation) {
  net::LoopbackConfig cfg;
  cfg.reorder_window = 4;
  cfg.seed = 42;
  auto pair = net::make_loopback(cfg);
  std::vector<sim::MsgId> sent;
  for (int i = 0; i < 16; ++i) {
    sent.push_back(i);
    pair.a->send(frame_bytes(1, i));
  }
  std::vector<sim::MsgId> got;
  while (auto b = pair.b->poll()) got.push_back(net::decode(*b)->msg);
  ASSERT_EQ(got.size(), sent.size());
  auto sorted = got;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, sent);  // a permutation: nothing lost, nothing invented
  EXPECT_EQ(pair.stats(sim::Dir::kSenderToReceiver).delivered, 16u);
}

TEST(NetFaultPlan, PeriodicPlanShapeAndTextRoundTrip) {
  const auto plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                         sim::Dir::kSenderToReceiver,
                                         /*period=*/10, /*count=*/1,
                                         /*horizon=*/35);
  ASSERT_EQ(plan.size(), 3u);
  std::uint64_t at = 10;
  for (const auto& a : plan.actions) {
    EXPECT_EQ(a.kind, fault::FaultKind::kDropBurst);
    EXPECT_EQ(a.trigger.kind, fault::TriggerKind::kSends);
    EXPECT_EQ(a.trigger.at, at);
    EXPECT_EQ(a.dir, sim::Dir::kSenderToReceiver);
    EXPECT_EQ(a.count, 1u);
    at += 10;
  }
  EXPECT_EQ(fault::plan_from_text(fault::to_text(plan)), plan);
}

// --------------------------------------------------------------------------
// Session adapters (engine-free protocol driving)
// --------------------------------------------------------------------------

TEST(NetSessionAdapter, DirectShuttleTransfersAndChecksPrefix) {
  const seq::Sequence x = {3, 1, 4, 1, 5};
  auto pair = proto::make_stenning(kDomain);
  proto::SenderSessionEndpoint snd(std::move(pair.sender), x);
  proto::ReceiverSessionEndpoint rcv(std::move(pair.receiver), x);

  // Hostile ids at the trust boundary are ignored, not asserted on.
  rcv.on_deliver(-5);
  snd.on_deliver(-1);
  EXPECT_TRUE(rcv.safety_ok());

  for (int step = 0; step < 200 && !rcv.done(); ++step) {
    if (const auto m = snd.step()) rcv.on_deliver(*m);
    if (const auto a = rcv.step()) snd.on_deliver(*a);
  }
  ASSERT_TRUE(rcv.done());
  EXPECT_EQ(rcv.output(), x);
  EXPECT_TRUE(rcv.safety_ok());
  EXPECT_EQ(rcv.items_done(), x.size());

  // The sender only finishes on the wire-level receipt notice.
  EXPECT_FALSE(snd.done());
  snd.on_fin();
  EXPECT_TRUE(snd.done());
  EXPECT_EQ(snd.items_done(), x.size());
}

TEST(NetSessionAdapter, ViolationSticksAndSilences) {
  const seq::Sequence expected = {0, 1, 2};
  auto pair = proto::make_stenning(kDomain);
  proto::ReceiverSessionEndpoint rcv(std::move(pair.receiver), expected);
  // Stenning's receiver writes item `m` when the in-order id arrives; feed
  // it a first message that decodes to the wrong item for position 0.
  // Stenning data ids encode (index, item) as id = index * domain + item.
  rcv.on_deliver(5);  // index 0, item 5 != expected 0
  (void)rcv.step();
  EXPECT_FALSE(rcv.safety_ok());
  EXPECT_FALSE(rcv.done());
  // Silenced: further steps produce no output.
  EXPECT_FALSE(rcv.step().has_value());
}

// --------------------------------------------------------------------------
// SessionMux + service façade
// --------------------------------------------------------------------------

struct ServiceRun {
  net::LoopbackPair wire;
  std::unique_ptr<net::StpClient> client;
  std::unique_ptr<net::StpServer> server;
};

ServiceRun make_service(std::size_t n_sessions, net::LoopbackConfig wire_cfg,
                        net::MuxConfig mux_cfg, std::size_t seq_len = 4) {
  ServiceRun run;
  run.wire = net::make_loopback(wire_cfg);
  run.client = std::make_unique<net::StpClient>(run.wire.a.get(), mux_cfg);
  run.server = std::make_unique<net::StpServer>(run.wire.b.get(), mux_cfg);
  for (std::uint32_t id = 0; id < n_sessions; ++id) {
    auto pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, seq_len);
    run.client->add_session(id, std::move(pair.sender), x);
    run.server->add_session(id, std::move(pair.receiver), x);
  }
  return run;
}

void expect_all_completed(const net::SessionMux& mux, std::size_t n,
                          std::size_t seq_len) {
  const auto reports = mux.reports();
  ASSERT_EQ(reports.size(), n);
  for (const auto& r : reports) {
    EXPECT_EQ(r.state, net::SessionState::kCompleted) << "session " << r.id;
    EXPECT_EQ(r.items, seq_len) << "session " << r.id;
  }
}

TEST(NetMux, PerfectLinkSmallRun) {
  net::MuxConfig cfg;
  cfg.sweep_interval = 200us;
  auto run = make_service(4, {}, cfg);
  ASSERT_TRUE(net::run_service_pair(*run.client, *run.server, 10s));
  expect_all_completed(run.client->mux(), 4, 4);
  expect_all_completed(run.server->mux(), 4, 4);

  const auto cs = run.client->mux().stats();
  const auto ss = run.server->mux().stats();
  EXPECT_GT(cs.frames_sent, 0u);
  EXPECT_GT(ss.fins_sent, 0u);
  EXPECT_EQ(ss.items_done, 16u);
  EXPECT_EQ(cs.sessions_completed, 4u);
  EXPECT_EQ(ss.sessions_violated, 0u);
  EXPECT_EQ(run.client->mux().active_sessions(), 0u);

  // Sender sessions collected ack-RTT samples.
  bool any_rtt = false;
  for (const auto& r : run.client->mux().reports()) {
    any_rtt = any_rtt || !r.ack_rtt_us.empty();
  }
  EXPECT_TRUE(any_rtt);
}

TEST(NetMux, LossyDupReorderRunCompletes) {
  net::LoopbackConfig wire;
  fault::FaultPlan plan = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kSenderToReceiver, 5, 1, 200000);
  const auto rs_drop = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kReceiverToSender, 6, 1, 200000);
  const auto sr_dup = fault::periodic_plan(
      fault::FaultKind::kDupBurst, sim::Dir::kSenderToReceiver, 7, 1, 200000);
  plan.actions.insert(plan.actions.end(), rs_drop.actions.begin(),
                      rs_drop.actions.end());
  plan.actions.insert(plan.actions.end(), sr_dup.actions.begin(),
                      sr_dup.actions.end());
  wire.plan = plan;
  wire.reorder_window = 3;
  wire.seed = 7;
  wire.max_queue = 4096;

  net::MuxConfig cfg;
  cfg.sweep_interval = 300us;
  cfg.keepalive_sweeps = 4;
  auto run = make_service(16, wire, cfg);
  ASSERT_TRUE(net::run_service_pair(*run.client, *run.server, 30s));
  expect_all_completed(run.client->mux(), 16, 4);
  expect_all_completed(run.server->mux(), 16, 4);
  EXPECT_GT(run.wire.stats(sim::Dir::kSenderToReceiver).dropped, 0u);
}

TEST(NetMux, RejectsGarbageWrongDirAndUnknownSession) {
  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.sweep_interval = 500us;
  net::CountingNetProbe probe;
  cfg.probe = &probe;
  net::StpServer server(wire.b.get(), cfg);
  auto pair = proto::make_stenning(kDomain);
  server.add_session(7, std::move(pair.receiver), seq_for(7, 3));
  server.mux().start();

  wire.a->send({0x13, 0x37, 0x00});                      // garbage: rejected
  wire.a->send(frame_bytes(99, 0));                      // unknown session
  wire.a->send(frame_bytes(7, 0, sim::Dir::kReceiverToSender));  // wrong dir

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto st = server.mux().stats();
    if (st.frames_rejected >= 2 && st.frames_unknown_session >= 1) break;
    std::this_thread::sleep_for(1ms);
  }
  server.mux().stop();

  const auto st = server.mux().stats();
  EXPECT_EQ(st.frames_rejected, 2u);  // garbage + wrong direction
  EXPECT_EQ(st.frames_unknown_session, 1u);
  EXPECT_EQ(st.frames_received, 0u);
  EXPECT_EQ(probe.rejected(), 2u);
}

TEST(NetMux, InboxBackpressureSheds) {
  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.inbox_limit = 2;
  cfg.sweep_interval = 200ms;  // workers effectively parked during the flood
  net::StpServer server(wire.b.get(), cfg);
  auto pair = proto::make_stenning(kDomain);
  server.add_session(1, std::move(pair.receiver), seq_for(1, 3));
  server.mux().start();

  for (int i = 0; i < 200; ++i) wire.a->send(frame_bytes(1, 0));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline &&
         server.mux().stats().frames_shed == 0) {
    std::this_thread::sleep_for(1ms);
  }
  server.mux().stop();
  EXPECT_GT(server.mux().stats().frames_shed, 0u);
}

TEST(NetMux, IdleSessionsAreEvicted) {
  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.sweep_interval = 1ms;
  cfg.idle_eviction_sweeps = 3;
  cfg.keepalive_sweeps = 0;
  net::CountingNetProbe probe;
  cfg.probe = &probe;
  net::StpServer server(wire.b.get(), cfg);  // no client: a dead peer
  auto pair = proto::make_stenning(kDomain);
  server.add_session(1, std::move(pair.receiver), seq_for(1, 3));
  server.mux().start();
  EXPECT_TRUE(server.mux().drain(5s));
  server.mux().stop();

  const auto reports = server.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].state, net::SessionState::kEvicted);
  EXPECT_EQ(server.mux().stats().sessions_evicted, 1u);
  EXPECT_EQ(probe.evicted(), 1u);
}

TEST(NetMux, DuplicateSessionIdIsAContractError) {
  auto wire = net::make_loopback();
  net::SessionMux mux(wire.b.get(), {});
  auto p1 = proto::make_stenning(kDomain);
  auto p2 = proto::make_stenning(kDomain);
  mux.add_session(5,
                  std::make_unique<proto::ReceiverSessionEndpoint>(
                      std::move(p1.receiver), seq_for(5, 2)),
                  false);
  EXPECT_THROW(mux.add_session(5,
                               std::make_unique<proto::ReceiverSessionEndpoint>(
                                   std::move(p2.receiver), seq_for(5, 2)),
                               false),
               ContractError);
}

TEST(NetMux, PublishesMetrics) {
  net::MuxConfig cfg;
  cfg.sweep_interval = 200us;
  auto run = make_service(3, {}, cfg);
  ASSERT_TRUE(net::run_service_pair(*run.client, *run.server, 10s));

  obs::MetricsRegistry reg;
  run.server->mux().publish_metrics(reg);
  EXPECT_GT(reg.counter_value("net.frames.sent"), 0u);
  EXPECT_GT(reg.counter_value("net.frames.received"), 0u);
  EXPECT_GT(reg.counter_value("net.fins.sent"), 0u);
  EXPECT_EQ(reg.counter_value("net.items.done"), 12u);
  EXPECT_EQ(reg.counter_value("net.verdict.completed"), 3u);
  EXPECT_EQ(reg.counter_value("net.verdict.safety-violation"), 0u);
  ASSERT_EQ(reg.gauges().count("net.sessions.active"), 1u);
  EXPECT_EQ(reg.gauges().at("net.sessions.active").value(), 0);

  obs::MetricsRegistry creg;
  run.client->mux().publish_metrics(creg);
  ASSERT_EQ(creg.histograms().count("net.ack_rtt_us"), 1u);
  EXPECT_GT(creg.histograms().at("net.ack_rtt_us").count(), 0u);
}

// --------------------------------------------------------------------------
// Acceptance: >= 1000 concurrent sessions over a lossy, reordering link.
// --------------------------------------------------------------------------

/// Attests prefix safety *at all times*: on_item(session, i) must arrive in
/// exactly ascending order per session (the adapter has already equality-
/// checked the written item against expected[i]).
class PrefixOrderProbe final : public net::INetProbe {
 public:
  explicit PrefixOrderProbe(std::size_t max_sessions)
      : next_(max_sessions) {
    for (auto& a : next_) a.store(0, std::memory_order_relaxed);
  }

  void on_item(std::uint32_t session, std::size_t index) override {
    ++items_;
    const std::size_t want =
        next_[session].fetch_add(1, std::memory_order_relaxed);
    if (index != want) out_of_order_ = true;
  }
  void on_session_state(std::uint32_t, net::SessionState s) override {
    if (s == net::SessionState::kSafetyViolation) ++violations_;
  }

  std::uint64_t items() const { return items_; }
  std::uint64_t violations() const { return violations_; }
  bool out_of_order() const { return out_of_order_; }

 private:
  std::vector<std::atomic<std::size_t>> next_;
  std::atomic<std::uint64_t> items_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<bool> out_of_order_{false};
};

TEST(NetMuxAcceptance, ThousandSessionsOverLossyReorderingLink) {
  constexpr std::size_t kSessions = 1000;
  constexpr std::size_t kLen = 3;

  net::LoopbackConfig wire;
  fault::FaultPlan plan = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kSenderToReceiver, 9, 1,
      500'000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 11, 1,
                                       500'000);
  plan.actions.insert(plan.actions.end(), rs.actions.begin(),
                      rs.actions.end());
  wire.plan = plan;
  wire.reorder_window = 4;
  wire.seed = 0xACCE55;
  wire.max_queue = 16384;  // bounded channel: overflow is just more loss

  PrefixOrderProbe probe(kSessions);
  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.inbox_limit = 64;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = 500us;

  net::MuxConfig server_cfg = cfg;
  server_cfg.probe = &probe;

  auto runp = net::make_loopback(wire);
  net::StpClient client(runp.a.get(), cfg);
  net::StpServer server(runp.b.get(), server_cfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, kLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
  }

  ASSERT_TRUE(net::run_service_pair(client, server, 120s));

  // Every session on both ends completed; no violations, no evictions.
  const auto ss = server.mux().stats();
  const auto cs = client.mux().stats();
  EXPECT_EQ(ss.sessions_completed, kSessions);
  EXPECT_EQ(cs.sessions_completed, kSessions);
  EXPECT_EQ(ss.sessions_violated, 0u);
  EXPECT_EQ(ss.sessions_evicted, 0u);

  // Exact copy: each receiver's tape equals its expected sequence (the
  // adapter equality-checks every write; items == len at completion).
  expect_all_completed(server.mux(), kSessions, kLen);
  expect_all_completed(client.mux(), kSessions, kLen);

  // Prefix safety held at every write, not just at the end.
  EXPECT_FALSE(probe.out_of_order());
  EXPECT_EQ(probe.violations(), 0u);
  EXPECT_EQ(probe.items(), kSessions * kLen);
  EXPECT_EQ(ss.items_done, kSessions * kLen);

  // The link really was hostile.
  EXPECT_GT(runp.stats(sim::Dir::kSenderToReceiver).dropped, 0u);
  EXPECT_GT(runp.stats(sim::Dir::kReceiverToSender).dropped, 0u);
}

// --------------------------------------------------------------------------
// Fabric heartbeat: the pump answers kProbe with an echoed kProbeAck
// --------------------------------------------------------------------------

TEST(NetMux, PumpAnswersProbesWithEchoedNonce) {
  auto link = net::make_loopback({});
  net::CountingNetProbe counting;
  net::MuxConfig cfg;
  cfg.probe = &counting;
  net::StpServer server(link.b.get(), cfg);
  auto pp = proto::make_stenning(kDomain);
  server.add_session(1, std::move(pp.receiver), seq_for(1, 2));
  server.mux().start();

  // A router's heartbeat: kProbe on the reserved fabric session, nonce in
  // msg.  The pump must answer with kProbeAck, flipped direction, nonce
  // echoed — without disturbing any session.
  for (const sim::MsgId nonce : {sim::MsgId{7}, sim::MsgId{-3}}) {
    ASSERT_TRUE(link.a->send(frame_bytes(net::kFabricSession, nonce,
                                         sim::Dir::kSenderToReceiver,
                                         net::FrameKind::kProbe)));
    std::optional<net::Frame> ack;
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (!ack && std::chrono::steady_clock::now() < deadline) {
      if (auto bytes = link.a->poll()) {
        auto f = net::decode(*bytes);
        ASSERT_TRUE(f.has_value());
        if (f->kind == net::FrameKind::kProbeAck) ack = f;
        // Session traffic (acks/keepalives) may interleave; skip it.
      } else {
        std::this_thread::sleep_for(1ms);
      }
    }
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->session, net::kFabricSession);
    EXPECT_EQ(ack->msg, nonce);
    EXPECT_EQ(ack->dir, sim::Dir::kReceiverToSender);
  }
  server.mux().stop();
  EXPECT_GE(server.mux().stats().probes_answered, 2u);
  EXPECT_GE(counting.probes_answered(), 2u);
  // The heartbeat never touched the hosted session.
  EXPECT_EQ(server.mux().stats().sessions_violated, 0u);
}

// --------------------------------------------------------------------------
// UDP transport (skipped where the sandbox forbids sockets)
// --------------------------------------------------------------------------

TEST(NetUdp, PairRoundTripsFrames) {
  if (!net::udp_supported()) GTEST_SKIP() << "UDP not compiled in";
  auto pair = net::make_udp_pair();
  if (!pair) GTEST_SKIP() << "environment forbids UDP sockets";

  const auto out = frame_bytes(11, 42);
  ASSERT_TRUE(pair->a->send(out));
  std::optional<std::vector<std::uint8_t>> in;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!in && std::chrono::steady_clock::now() < deadline) {
    in = pair->b->poll();
    if (!in) std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(in.has_value());
  const auto f = net::decode(*in);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->session, 11u);
  EXPECT_EQ(f->msg, 42);

  // And the reverse direction.
  ASSERT_TRUE(pair->b->send(frame_bytes(11, 43, sim::Dir::kReceiverToSender)));
  std::optional<std::vector<std::uint8_t>> back;
  const auto deadline2 = std::chrono::steady_clock::now() + 2s;
  while (!back && std::chrono::steady_clock::now() < deadline2) {
    back = pair->a->poll();
    if (!back) std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(net::decode(*back)->msg, 43);
}

TEST(NetUdp, SmallServiceRunOverRealSockets) {
  if (!net::udp_supported()) GTEST_SKIP() << "UDP not compiled in";
  auto pair = net::make_udp_pair();
  if (!pair) GTEST_SKIP() << "environment forbids UDP sockets";

  net::MuxConfig cfg;
  cfg.sweep_interval = 300us;
  net::StpClient client(pair->a.get(), cfg);
  net::StpServer server(pair->b.get(), cfg);
  for (std::uint32_t id = 0; id < 2; ++id) {
    auto proto_pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, 3);
    client.add_session(id, std::move(proto_pair.sender), x);
    server.add_session(id, std::move(proto_pair.receiver), x);
  }
  ASSERT_TRUE(net::run_service_pair(client, server, 20s));
  expect_all_completed(server.mux(), 2, 3);
  expect_all_completed(client.mux(), 2, 3);
}

TEST(NetUdp, TransientSendErrorsCountAsWireLossNotSheds) {
  if (!net::udp_supported()) GTEST_SKIP() << "UDP not compiled in";
  // Learn an ephemeral port the kernel just handed out, then close it so
  // nobody listens there; sends to it draw ECONNREFUSED on a connected
  // socket — wire loss, not a hard error.
  std::uint16_t dead_port = 0;
  {
    auto probe_pair = net::make_udp_pair();
    if (!probe_pair) GTEST_SKIP() << "environment forbids UDP sockets";
    dead_port = probe_pair->b->local_port();
  }
  ASSERT_NE(dead_port, 0);
  auto t = net::make_udp_connected(dead_port);
  if (!t) GTEST_SKIP() << "environment forbids UDP sockets";

  // The kernel echoes the refusal on the NEXT send or on recv, depending
  // on timing; either way it must be counted as transient wire loss —
  // send() keeps reporting frames accepted and nothing lands in
  // send_sheds.  Some sandboxes suppress the refusal echo entirely; skip
  // there, the invariant under test never gets exercised.
  const auto out = frame_bytes(5, 1);
  std::size_t sends = 0;
  std::size_t accepted = 0;
  auto refusals = [&] {
    const auto st = (*t)->stats();
    return st.send_transient_drops + st.recv_transient_errors;
  };
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (refusals() == 0 && std::chrono::steady_clock::now() < deadline) {
    ++sends;
    if ((*t)->send(out)) ++accepted;
    (*t)->poll();
    std::this_thread::sleep_for(1ms);
  }
  if (refusals() == 0) {
    GTEST_SKIP() << "environment never echoes ECONNREFUSED for dead ports";
  }
  const auto st = (*t)->stats();
  EXPECT_GE(st.send_transient_drops + st.recv_transient_errors, 1u);
  EXPECT_EQ(st.send_sheds, 0u);
  EXPECT_EQ(accepted, sends);  // every send still reported accepted
}

TEST(NetUdp, RendezvousHandshakeConnectsAPeer) {
  if (!net::udp_supported()) GTEST_SKIP() << "UDP not compiled in";
  auto rv = net::make_udp_rendezvous();
  if (!rv) GTEST_SKIP() << "environment forbids UDP sockets";
  auto dialer = net::make_udp_connected((*rv)->port());
  ASSERT_TRUE(dialer.has_value());
  // The hello is consumed by accept_peer; send a frame we can lose.
  ASSERT_TRUE((*dialer)->send(frame_bytes(1, 0)));
  auto accepted = (*rv)->accept_peer(2s);
  ASSERT_NE(accepted, nullptr);

  // After the handshake both ends are ordinary connected transports.
  // accept_peer answers the hello with a confirm (a stray kProbeAck on
  // the reserved fabric session, there for the retrying dialer) — a
  // plain dialer drops it like every other consumer.
  ASSERT_TRUE(accepted->send(frame_bytes(9, 77, sim::Dir::kReceiverToSender)));
  std::optional<std::vector<std::uint8_t>> in;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    in = (*dialer)->poll();
    if (!in) {
      std::this_thread::sleep_for(1ms);
      continue;
    }
    const auto g = net::decode(*in);
    if (g && g->session == net::kFabricSession) {
      in.reset();  // the rendezvous confirm; not the frame under test
      continue;
    }
    break;
  }
  ASSERT_TRUE(in.has_value());
  const auto f = net::decode(*in);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->session, 9u);
  EXPECT_EQ(f->msg, 77);
}

}  // namespace
}  // namespace stpx
