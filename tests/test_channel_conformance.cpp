// Channel conformance: interface laws every IChannel implementation must
// satisfy, run against all four channels through one parameterized suite.
//
//   C1 fresh/reset channels are empty;
//   C2 deliverable() lists exactly the ids with copies() > 0, sorted-ish
//      (each id once);
//   C3 deliver() requires copies() > 0 and never *increases* the count;
//   C4 drop() requires can_drop() and copies() > 0;
//   C5 clone() is a deep, independent copy;
//   C6 directions are independent;
//   C7 sending never reduces what is deliverable (for policy-free
//      configurations).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx::channel {
namespace {

using sim::Dir;

struct ChannelCase {
  std::string name;
  std::function<std::unique_ptr<sim::IChannel>()> make;  // policy-free
  bool fifo;  // only the head is deliverable
};

std::vector<ChannelCase> cases() {
  return {
      {"dup", [] { return std::make_unique<DupChannel>(); }, false},
      {"del", [] { return std::make_unique<DelChannel>(); }, false},
      {"dupdel", [] { return std::make_unique<DupDelChannel>(); }, false},
      {"fifo", [] { return std::make_unique<FifoChannel>(); }, true},
  };
}

class ChannelConformance : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::unique_ptr<sim::IChannel> make() { return cases()[GetParam()].make(); }
  bool fifo() const { return cases()[GetParam()].fifo; }
};

TEST_P(ChannelConformance, C1_FreshAndResetAreEmpty) {
  auto ch = make();
  EXPECT_TRUE(ch->deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_TRUE(ch->deliverable(Dir::kReceiverToSender).empty());
  ch->send(Dir::kSenderToReceiver, 1);
  ch->reset();
  EXPECT_TRUE(ch->deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 1), 0u);
}

TEST_P(ChannelConformance, C2_DeliverableMatchesCopies) {
  auto ch = make();
  ch->send(Dir::kSenderToReceiver, 3);
  ch->send(Dir::kSenderToReceiver, 3);
  ch->send(Dir::kSenderToReceiver, 7);
  const auto list = ch->deliverable(Dir::kSenderToReceiver);
  std::set<sim::MsgId> listed(list.begin(), list.end());
  EXPECT_EQ(listed.size(), list.size()) << "duplicate ids in deliverable()";
  for (sim::MsgId id : listed) {
    EXPECT_GT(ch->copies(Dir::kSenderToReceiver, id), 0u);
  }
  // Everything with copies > 0 among the ids we used must be listed —
  // except on FIFO channels, where only the head is exposed.
  if (!fifo()) {
    EXPECT_TRUE(listed.count(3));
    EXPECT_TRUE(listed.count(7));
  } else {
    EXPECT_EQ(list.size(), 1u);
  }
}

TEST_P(ChannelConformance, C3_DeliverRequiresCopiesAndNeverCreates) {
  auto ch = make();
  EXPECT_THROW(ch->deliver(Dir::kSenderToReceiver, 5), ContractError);
  ch->send(Dir::kSenderToReceiver, 5);
  const auto before = ch->copies(Dir::kSenderToReceiver, 5);
  ASSERT_GT(before, 0u);
  ch->deliver(Dir::kSenderToReceiver, 5);
  EXPECT_LE(ch->copies(Dir::kSenderToReceiver, 5), before);
}

TEST_P(ChannelConformance, C4_DropDiscipline) {
  auto ch = make();
  if (!ch->can_drop()) {
    ch->send(Dir::kSenderToReceiver, 2);
    EXPECT_THROW(ch->drop(Dir::kSenderToReceiver, 2), ContractError);
    return;
  }
  EXPECT_THROW(ch->drop(Dir::kSenderToReceiver, 2), ContractError);
  ch->send(Dir::kSenderToReceiver, 2);
  ch->drop(Dir::kSenderToReceiver, 2);
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 2), 0u);
}

TEST_P(ChannelConformance, C5_CloneIsDeep) {
  auto ch = make();
  ch->send(Dir::kSenderToReceiver, 1);
  auto copy = ch->clone();
  copy->send(Dir::kSenderToReceiver, 9);
  // New id in the clone is invisible in the original.
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 9), 0u);
  EXPECT_GT(copy->copies(Dir::kSenderToReceiver, 9) +
                (fifo() ? 1u : 0u),  // FIFO: 9 is behind the head
            0u);
  // Mutating the original does not touch the clone.
  if (ch->copies(Dir::kSenderToReceiver, 1) > 0) {
    ch->deliver(Dir::kSenderToReceiver, 1);
  }
  EXPECT_GT(copy->copies(Dir::kSenderToReceiver, 1), 0u);
}

TEST_P(ChannelConformance, C6_DirectionsIndependent) {
  auto ch = make();
  ch->send(Dir::kSenderToReceiver, 4);
  EXPECT_EQ(ch->copies(Dir::kReceiverToSender, 4), 0u);
  ch->send(Dir::kReceiverToSender, 6);
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 6), 0u);
  EXPECT_GT(ch->copies(Dir::kReceiverToSender, 6), 0u);
}

TEST_P(ChannelConformance, C7_SendNeverShrinksDeliverable) {
  auto ch = make();
  Rng rng(3 + GetParam());
  std::size_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    ch->send(Dir::kSenderToReceiver,
             static_cast<sim::MsgId>(rng.below(5)));
    const auto now = ch->deliverable(Dir::kSenderToReceiver).size();
    if (!fifo()) {
      EXPECT_GE(now, prev) << "send removed deliverable ids";
    } else {
      EXPECT_GE(now, std::min<std::size_t>(prev, 1));
    }
    prev = now;
  }
}

TEST_P(ChannelConformance, FuzzNeverViolatesInternalContracts) {
  // Random legal operation soup: nothing may throw, and copies()/
  // deliverable() must stay mutually consistent throughout.
  auto ch = make();
  Rng rng(99 + GetParam());
  for (int i = 0; i < 3000; ++i) {
    const Dir dir = rng.chance(0.5) ? Dir::kSenderToReceiver
                                    : Dir::kReceiverToSender;
    const int op = static_cast<int>(rng.range(0, 2));
    if (op == 0) {
      ch->send(dir, static_cast<sim::MsgId>(rng.below(6)));
    } else {
      const auto avail = ch->deliverable(dir);
      if (avail.empty()) continue;
      const sim::MsgId id = rng.pick(avail);
      ASSERT_GT(ch->copies(dir, id), 0u);
      if (op == 1) {
        ch->deliver(dir, id);
      } else if (ch->can_drop()) {
        ch->drop(dir, id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, ChannelConformance,
    ::testing::Range<std::size_t>(0, cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return cases()[info.param].name;
    });

}  // namespace
}  // namespace stpx::channel
