// Unit and property tests for stpx/seq: the alpha function (three
// independent computations), repetition-free enumeration and ranking, family
// generators, and the prefix-monotone encoding machinery of §3.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "seq/alpha.hpp"
#include "seq/codec.hpp"
#include "seq/encoding.hpp"
#include "seq/family.hpp"
#include "seq/repetition_free.hpp"
#include "seq/types.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx::seq {
namespace {

// ---------------------------------------------------------------- types --

TEST(SeqTypes, PrefixBasics) {
  EXPECT_TRUE(is_prefix({}, {}));
  EXPECT_TRUE(is_prefix({}, {1, 2}));
  EXPECT_TRUE(is_prefix({1}, {1, 2}));
  EXPECT_TRUE(is_prefix({1, 2}, {1, 2}));
  EXPECT_FALSE(is_prefix({2}, {1, 2}));
  EXPECT_FALSE(is_prefix({1, 2, 3}, {1, 2}));
}

TEST(SeqTypes, PrefixIncomparable) {
  EXPECT_FALSE(prefix_incomparable({}, {1}));
  EXPECT_FALSE(prefix_incomparable({1, 2}, {1}));
  EXPECT_TRUE(prefix_incomparable({1, 2}, {1, 3}));
  EXPECT_TRUE(prefix_incomparable({0}, {1}));
}

TEST(SeqTypes, RepetitionFree) {
  EXPECT_TRUE(repetition_free({}));
  EXPECT_TRUE(repetition_free({3}));
  EXPECT_TRUE(repetition_free({3, 1, 4}));
  EXPECT_FALSE(repetition_free({3, 1, 3}));
  EXPECT_FALSE(repetition_free({0, 0}));
}

TEST(SeqTypes, DomainMembership) {
  const Domain d{3};
  EXPECT_TRUE(in_domain({0, 1, 2}, d));
  EXPECT_FALSE(in_domain({0, 3}, d));
  EXPECT_FALSE(in_domain({-1}, d));
  EXPECT_TRUE(in_domain({}, d));
}

TEST(SeqTypes, ToString) {
  EXPECT_EQ(to_string({}), "<>");
  EXPECT_EQ(to_string({2, 0, 1}), "<2 0 1>");
}

// ---------------------------------------------------------------- alpha --

TEST(Alpha, SmallKnownValues) {
  // alpha(m) = 1, 2, 5, 16, 65, 326, 1957, ... (OEIS A000522)
  const std::uint64_t expected[] = {1, 2, 5, 16, 65, 326, 1957, 13700, 109601};
  for (int m = 0; m <= 8; ++m) {
    EXPECT_EQ(alpha_u64(m).value(), expected[m]) << "m=" << m;
  }
}

TEST(Alpha, ClosedFormMatchesRecurrence) {
  for (int m = 0; m <= 20; ++m) {
    EXPECT_EQ(alpha_u64(m), alpha_recurrence_u64(m)) << "m=" << m;
  }
}

TEST(Alpha, BigMatchesU64WhereBothDefined) {
  for (int m = 0; m <= 20; ++m) {
    const auto narrow = alpha_u64(m);
    ASSERT_TRUE(narrow.has_value()) << "m=" << m;
    EXPECT_EQ(alpha_big(m).to_u64(), *narrow) << "m=" << m;
  }
}

TEST(Alpha, U64OverflowsAtTwentyOne) {
  EXPECT_TRUE(alpha_u64(20).has_value());
  EXPECT_FALSE(alpha_u64(21).has_value());
  EXPECT_FALSE(alpha_recurrence_u64(21).has_value());
  // The big-int version keeps going.
  EXPECT_FALSE(alpha_big(21).fits_u64());
  EXPECT_GT(alpha_big(21), alpha_big(20));
}

TEST(Alpha, EqualsFloorOfETimesFactorial) {
  // alpha(m) = floor(e * m!) for m >= 1: e*m! = alpha(m) + sum_{k>m} m!/k!
  // and the tail is strictly less than 1.  (A classic identity for OEIS
  // A000522; long double precision covers m <= 15.)
  long double factorial = 1.0L;
  for (int m = 1; m <= 15; ++m) {
    factorial *= m;
    const auto expected = static_cast<std::uint64_t>(
        std::floor(2.718281828459045235360287L * factorial));
    EXPECT_EQ(alpha_u64(m).value(), expected) << "m=" << m;
  }
}

TEST(Alpha, MatchesEnumerationCount) {
  for (int m = 0; m <= 7; ++m) {
    EXPECT_EQ(all_repetition_free(m).size(), alpha_u64(m).value())
        << "m=" << m;
  }
}

TEST(Alpha, FallingFactorial) {
  EXPECT_EQ(falling_factorial_u64(5, 0).value(), 1u);
  EXPECT_EQ(falling_factorial_u64(5, 2).value(), 20u);
  EXPECT_EQ(falling_factorial_u64(5, 5).value(), 120u);
  EXPECT_EQ(falling_factorial_u64(3, 4).value(), 0u);  // k > m: count is 0
  EXPECT_FALSE(falling_factorial_u64(30, 30).has_value());  // overflow
}

// ---------------------------------------------------- repetition-free enum --

TEST(RepFree, AllSequencesAreRepetitionFreeAndDistinct) {
  const auto all = all_repetition_free(5);
  std::set<Sequence> seen;
  for (const auto& x : all) {
    EXPECT_TRUE(repetition_free(x));
    EXPECT_TRUE(in_domain(x, Domain{5}));
    EXPECT_TRUE(seen.insert(x).second) << "duplicate " << to_string(x);
  }
}

TEST(RepFree, ShortlexOrder) {
  const auto all = all_repetition_free(4);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const auto& a = all[i - 1];
    const auto& b = all[i];
    const bool ordered =
        a.size() < b.size() || (a.size() == b.size() && a < b);
    EXPECT_TRUE(ordered) << to_string(a) << " !< " << to_string(b);
  }
}

TEST(RepFree, LengthBandSizes) {
  for (int m = 0; m <= 6; ++m) {
    for (int k = 0; k <= m + 1; ++k) {
      EXPECT_EQ(repetition_free_of_length(m, k).size(),
                falling_factorial_u64(m, k).value())
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(RepFree, RankUnrankRoundTrip) {
  for (int m = 0; m <= 6; ++m) {
    const auto all = all_repetition_free(m);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(rank_repetition_free(all[i], m), i);
      EXPECT_EQ(unrank_repetition_free(i, m), all[i]);
    }
  }
}

TEST(RepFree, UnrankLargeM) {
  // Spot-check rank/unrank at m = 12 without enumerating alpha(12) words.
  Rng rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t rank = rng.below(alpha_u64(12).value());
    const Sequence x = unrank_repetition_free(rank, 12);
    EXPECT_TRUE(repetition_free(x));
    EXPECT_EQ(rank_repetition_free(x, 12), rank);
  }
}

TEST(RepFree, RankRejectsRepetitions) {
  EXPECT_THROW(rank_repetition_free({0, 0}, 3), ContractError);
  EXPECT_THROW(rank_repetition_free({0, 5}, 3), ContractError);
}

// -------------------------------------------------------------- families --

TEST(Family, CanonicalHasAlphaMembers) {
  for (int m = 0; m <= 6; ++m) {
    const Family fam = canonical_repetition_free(m);
    EXPECT_EQ(fam.size(), alpha_u64(m).value());
    EXPECT_TRUE(mutually_distinct(fam));
    EXPECT_TRUE(prefix_closed(fam));
  }
}

TEST(Family, BeyondAlphaAddsOne) {
  const Family fam = beyond_alpha(3);
  EXPECT_EQ(fam.size(), alpha_u64(3).value() + 1);
  EXPECT_TRUE(mutually_distinct(fam));
  // The extra member <0 0> has a repetition, so it is outside the canonical
  // set but still over the same domain.
  EXPECT_TRUE(in_domain(fam.members.back(), fam.domain));
  EXPECT_FALSE(repetition_free(fam.members.back()));
}

TEST(Family, AllWordsCount) {
  // sum_{k<=3} 2^k = 15
  EXPECT_EQ(all_words_up_to(2, 3).size(), 15u);
  EXPECT_TRUE(mutually_distinct(all_words_up_to(2, 3)));
  EXPECT_TRUE(prefix_closed(all_words_up_to(2, 3)));
}

TEST(Family, RandomFamilyDistinctAndSized) {
  Rng rng(41);
  const Family fam = random_family(3, 40, 5, rng);
  EXPECT_EQ(fam.size(), 40u);
  EXPECT_TRUE(mutually_distinct(fam));
  for (const auto& x : fam.members) {
    EXPECT_TRUE(in_domain(x, fam.domain));
    EXPECT_LE(x.size(), 5u);
  }
}

TEST(Family, RandomFamilyRefusesImpossibleCount) {
  Rng rng(43);
  // Only 3 sequences exist with m=1, max_len=2: <>, <0>, <0 0>.
  EXPECT_THROW(random_family(1, 10, 2, rng), ContractError);
}

TEST(Family, PrefixClosedDetectsGap) {
  Family fam{Domain{2}, {Sequence{}, Sequence{0, 1}}};  // missing <0>
  EXPECT_FALSE(prefix_closed(fam));
}

// -------------------------------------------------------------- encoding --

TEST(Encoding, IdentityEncodingOfCanonicalFamilyIsValid) {
  const int m = 4;
  const Family fam = canonical_repetition_free(m);
  Encoding enc;
  enc.alphabet_size = m;
  enc.inputs = fam.members;
  for (const auto& x : fam.members) {
    enc.words.emplace_back(x.begin(), x.end());
  }
  EXPECT_FALSE(find_violation(enc).has_value());
}

TEST(Encoding, DetectsRepetition) {
  Encoding enc;
  enc.alphabet_size = 3;
  enc.inputs = {Sequence{0}};
  enc.words = {MsgWord{1, 1}};
  const auto v = find_violation(enc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, EncodingViolation::Kind::kRepetition);
}

TEST(Encoding, DetectsOutOfAlphabet) {
  Encoding enc;
  enc.alphabet_size = 2;
  enc.inputs = {Sequence{0}};
  enc.words = {MsgWord{2}};
  const auto v = find_violation(enc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, EncodingViolation::Kind::kOutOfAlphabet);
}

TEST(Encoding, DetectsDuplicateWord) {
  Encoding enc;
  enc.alphabet_size = 3;
  enc.inputs = {Sequence{0}, Sequence{1}};
  enc.words = {MsgWord{2}, MsgWord{2}};
  const auto v = find_violation(enc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, EncodingViolation::Kind::kDuplicateWord);
  EXPECT_FALSE(v->describe(enc).empty());
}

TEST(Encoding, DetectsPrefixConflict) {
  Encoding enc;
  enc.alphabet_size = 3;
  // <1> is not a prefix of <0 2>, yet its word is a prefix of the other's.
  enc.inputs = {Sequence{1}, Sequence{0, 2}};
  enc.words = {MsgWord{0}, MsgWord{0, 1}};
  const auto v = find_violation(enc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, EncodingViolation::Kind::kPrefixConflict);
}

TEST(Encoding, BuildsForCanonicalFamilyAtAlpha) {
  for (int m = 1; m <= 5; ++m) {
    const Family fam = canonical_repetition_free(m);
    const auto enc = try_build_encoding(fam, m);
    ASSERT_TRUE(enc.has_value()) << "m=" << m;
    EXPECT_FALSE(find_violation(*enc).has_value());
    EXPECT_EQ(enc->words.size(), alpha_u64(m).value());
  }
}

TEST(Encoding, PigeonholeFailsBeyondAlpha) {
  for (int m = 1; m <= 4; ++m) {
    EXPECT_FALSE(try_build_encoding(beyond_alpha(m), m).has_value())
        << "m=" << m;
  }
}

TEST(Encoding, BuildsForSmallFamilyWithBiggerAlphabet) {
  // A family needing only 2 symbols embeds fine in a 5-letter alphabet.
  Family fam{Domain{2}, {Sequence{}, Sequence{0}, Sequence{1}, Sequence{0, 1}}};
  const auto enc = try_build_encoding(fam, 5);
  ASSERT_TRUE(enc.has_value());
  EXPECT_FALSE(find_violation(*enc).has_value());
}

TEST(Encoding, FailsWhenBranchingExceedsAlphabet) {
  // Three children of the root need three distinct first symbols; m=2 cannot.
  Family fam{Domain{3}, {Sequence{0}, Sequence{1}, Sequence{2}}};
  EXPECT_FALSE(try_build_encoding(fam, 2).has_value());
  EXPECT_TRUE(try_build_encoding(fam, 3).has_value());
}

TEST(Encoding, DeepChainNeedsLongAlphabet) {
  // A chain of length 4 needs 4 distinct symbols along one path.
  Family fam{Domain{1},
             {Sequence{}, Sequence{0}, Sequence{0, 0}, Sequence{0, 0, 0},
              Sequence{0, 0, 0, 0}}};
  EXPECT_FALSE(try_build_encoding(fam, 3).has_value());
  EXPECT_TRUE(try_build_encoding(fam, 4).has_value());
}

// Property: for random prefix-closed families within alpha(m), the builder
// either succeeds with a valid encoding, or the family genuinely exceeds the
// trie capacity (never a false "valid").
TEST(Encoding, BuilderOutputAlwaysValid_Property) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = static_cast<int>(rng.range(1, 4));
    const auto count = static_cast<std::size_t>(
        rng.range(1, static_cast<std::int64_t>(alpha_u64(m).value())));
    Family fam = random_family(m, count, m, rng);
    const auto enc = try_build_encoding(fam, m);
    if (enc.has_value()) {
      EXPECT_FALSE(find_violation(*enc).has_value());
      EXPECT_EQ(enc->inputs.size(), fam.size());
    }
  }
}

TEST(Encoding, SubfamilyOfFittingFamilyIsEverything) {
  const seq::Family fam = canonical_repetition_free(3);
  const auto kept = largest_embeddable_subfamily(fam, 3);
  EXPECT_EQ(kept.size(), fam.size());
}

TEST(Encoding, SubfamilyDropsExactlyTheOverflow) {
  // canonical + <0 0>: the greedy pass keeps the canonical alpha(m) members
  // (they come first) and drops the straggler.
  const seq::Family fam = beyond_alpha(2);
  const auto kept = largest_embeddable_subfamily(fam, 2);
  EXPECT_EQ(kept.size(), alpha_u64(2).value());
  // The dropped index is the last (the <0 0> we appended).
  for (std::size_t idx : kept) EXPECT_LT(idx, fam.size() - 1);
}

TEST(Encoding, SubfamilyRespectsPriorityOrder) {
  // Three singletons over m = 2: only two first symbols exist, so the first
  // two in priority order survive.
  seq::Family fam{Domain{3}, {Sequence{2}, Sequence{0}, Sequence{1}}};
  const auto kept = largest_embeddable_subfamily(fam, 2);
  EXPECT_EQ(kept, (std::vector<std::size_t>{0, 1}));
}

TEST(Encoding, SubfamilyNeverExceedsAlpha_Property) {
  Rng rng(67);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = static_cast<int>(rng.range(1, 3));
    seq::Family fam = random_family(3, 12, 3, rng);
    const auto kept = largest_embeddable_subfamily(fam, m);
    EXPECT_LE(kept.size(), alpha_u64(m).value()) << "m=" << m;
    // The kept subfamily genuinely embeds.
    seq::Family sub{fam.domain, {}};
    for (std::size_t idx : kept) sub.members.push_back(fam.members[idx]);
    EXPECT_TRUE(try_build_encoding(sub, m).has_value());
  }
}

// ---------------------------------------------------------------- codec --

TEST(Codec, PositionTagRoundTrip) {
  const std::vector<int> data{5, 5, 0, 255, 5};
  const Sequence x = position_tag(data, 256);
  EXPECT_TRUE(repetition_free(x));
  EXPECT_TRUE(in_domain(x, Domain{position_tag_domain(data.size(), 256)}));
  const auto back = position_untag(x, 256);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Codec, PositionTagEmpty) {
  EXPECT_TRUE(position_tag({}, 10).empty());
  EXPECT_EQ(position_untag({}, 10), std::vector<int>{});
}

TEST(Codec, PositionTagValidatesRange) {
  EXPECT_THROW(position_tag({10}, 10), ContractError);
  EXPECT_THROW(position_tag({-1}, 10), ContractError);
}

TEST(Codec, PositionUntagRejectsCorruption) {
  // Wrong position field.
  EXPECT_FALSE(position_untag({10}, 10).has_value());  // claims position 1
  // Out-of-order items.
  const Sequence swapped{10, 1};  // positions 1, 0
  EXPECT_FALSE(position_untag(swapped, 10).has_value());
  EXPECT_FALSE(position_untag({-3}, 10).has_value());
}

TEST(Codec, PositionTagRoundTripRandom_Property) {
  Rng rng(59);
  for (int trial = 0; trial < 100; ++trial) {
    const int radix = static_cast<int>(rng.range(1, 64));
    const auto len = static_cast<std::size_t>(rng.range(0, 40));
    std::vector<int> data(len);
    for (auto& d : data) d = static_cast<int>(rng.below(static_cast<std::uint64_t>(radix)));
    const Sequence x = position_tag(data, radix);
    EXPECT_TRUE(repetition_free(x));
    EXPECT_EQ(position_untag(x, radix), data);
  }
}

TEST(Codec, CounterTagRoundTrip) {
  const std::vector<int> data{1, 1, 0, 2};
  const auto x = counter_tag(data, 4);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(repetition_free(*x));
  EXPECT_EQ(counter_untag(*x, 4), data);
}

TEST(Codec, CounterTagLengthLimit) {
  EXPECT_FALSE(counter_tag({0, 0, 0}, 2).has_value());  // 3 > radix 2
  EXPECT_TRUE(counter_tag({0, 0}, 2).has_value());
}

}  // namespace
}  // namespace stpx::seq
