// Short deterministic soak run (ctest label: soak_smoke).
//
// This is the end-to-end robustness acceptance test for the fault subsystem:
//   (a) the soak harness finds injected-fault failures for a protocol outside
//       its design envelope (ABP assumes FIFO; we run it on a reordering
//       channel),
//   (b) delta-debugging shrinks a failing plan to a minimal schedule that
//       still fails,
//   (c) the minimized schedule replays deterministically to the same verdict,
// while repfree — run under the *same* chaos configuration on its own
// channel family — soaks clean: safety never violated, watchdog never fires.
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/schedulers.hpp"
#include "stp/soak.hpp"

namespace stpx::stp {
namespace {

seq::Sequence iota(int n) {
  seq::Sequence x;
  for (int i = 0; i < n; ++i) x.push_back(i);
  return x;
}

/// Reorder+delete system: repfree-del's home turf, hostile ground for ABP.
SystemSpec del_spec(std::function<proto::ProtocolPair()> protocols,
                    std::uint64_t max_steps, std::uint64_t stall_window) {
  SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = max_steps;
  spec.engine.stall_window = stall_window;
  return spec;
}

// The shared chaos configuration: channel-level faults only (drop / dup /
// blackout / freeze), the sampler's fair defaults.
SoakConfig chaos_config() { return SoakConfig{}; }

TEST(SoakSmoke, RepFreeRidesOutChannelChaosClean) {
  const auto spec = del_spec([] { return proto::make_repfree_del(12); },
                             /*max_steps=*/60000, /*stall_window=*/6000);
  const auto report =
      soak_sweep("repfree-del", spec, {iota(8), iota(5)}, chaos_config());
  EXPECT_EQ(report.trials, 10u);
  EXPECT_EQ(report.safety_violations, 0u);
  EXPECT_EQ(report.stalled, 0u) << "watchdog fired under a fair plan";
  EXPECT_TRUE(report.clean()) << report.failures.front().detail;
}

TEST(SoakSmoke, AbpUnderReorderingFailsMinimizesAndReplays) {
  // (a) find: ABP on a reordering channel is outside its design envelope.
  const auto spec = del_spec([] { return proto::make_abp(12); },
                             /*max_steps=*/20000, /*stall_window=*/2500);
  const auto report =
      soak_sweep("abp", spec, {iota(8)}, chaos_config());
  ASSERT_FALSE(report.clean());
  ASSERT_GE(report.failures.size(), 1u);
  const SoakFailure& f = report.failures.front();

  // (b) shrink: the minimized plan must still defeat the protocol.  (It may
  // shrink all the way to the empty plan — reordering alone breaks ABP.)
  const MinimizedPlan min = minimize_plan(spec, f);
  EXPECT_LE(min.plan.size(), f.plan.size());
  EXPECT_NE(min.verdict, sim::RunVerdict::kCompleted);

  // (c) replay: deterministic to the same verdict, twice.
  SoakFailure shrunk = f;
  shrunk.plan = min.plan;
  const auto r1 = replay_failure(spec, shrunk);
  const auto r2 = replay_failure(spec, shrunk);
  EXPECT_EQ(r1.verdict, min.verdict);
  EXPECT_EQ(r2.verdict, r1.verdict);
  EXPECT_EQ(r2.stats.steps, r1.stats.steps);
  EXPECT_EQ(r2.output, r1.output);
}

TEST(SoakSmoke, MinimizerProducesOneMinimalSchedule) {
  // repfree-dup sends each message exactly once; deleting every in-flight
  // copy mid-run (possible only through injected chaos — DupDelChannel with
  // suppress_prob 0 never drops on its own) stalls the transfer for good.
  SystemSpec spec;
  spec.protocols = [] { return proto::make_repfree_dup(12); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DupDelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 30000;
  spec.engine.stall_window = 3000;

  SoakFailure f;
  f.protocol = "repfree-dup";
  f.input = iota(10);
  f.seed = 3;
  f.plan = fault::plan_from_text(
      "drop @step 30 dir SR count 0 match *\n"
      "drop @step 30 dir RS count 0 match *\n"
      "dup @step 10 dir SR count 2 match *\n"
      "blackout @step 200 dir RS len 50 match *\n");
  const auto recorded = replay_failure(spec, f);
  ASSERT_NE(recorded.verdict, sim::RunVerdict::kCompleted);
  f.verdict = recorded.verdict;

  const MinimizedPlan min = minimize_plan(spec, f);
  ASSERT_GE(min.plan.size(), 1u);  // the bare channel completes fine
  EXPECT_LT(min.plan.size(), f.plan.size());
  EXPECT_NE(min.verdict, sim::RunVerdict::kCompleted);

  // 1-minimality: the minimized plan still fails, and removing any single
  // remaining action yields a passing schedule.
  SoakFailure probe = f;
  probe.plan = min.plan;
  EXPECT_EQ(replay_failure(spec, probe).verdict, min.verdict);
  for (std::size_t i = 0; i < min.plan.size(); ++i) {
    SoakFailure without = probe;
    without.plan.actions.erase(without.plan.actions.begin() +
                               static_cast<std::ptrdiff_t>(i));
    EXPECT_EQ(replay_failure(spec, without).verdict,
              sim::RunVerdict::kCompleted)
        << "minimized plan is not 1-minimal: action " << i << " is removable";
  }
}

}  // namespace
}  // namespace stpx::stp
