// Cross-cutting property tests: every shipped protocol, on the channel
// family it targets, across many random seeds and input shapes, must
// satisfy the model's global invariants.  These are the repository's
// broadest net — every component is in the loop at once.
//
// Invariants checked per run:
//   P1 completed runs are safe (and output == input);
//   P2 write steps are non-decreasing;
//   P3 conservation: deliveries never exceed sends per direction
//      (dup-family channels exempt);
//   P4 the recorded trace passes the V1–V5 validators;
//   P5 determinism: the same seed reproduces the identical trace.
#include <gtest/gtest.h>

#include <functional>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "prob/random_tag.hpp"
#include "proto/suite.hpp"
#include "stp/runner.hpp"
#include "stp/validate.hpp"
#include "util/rng.hpp"

namespace stpx {
namespace {

struct Config {
  std::string name;
  std::function<proto::ProtocolPair()> protocols;
  std::function<std::unique_ptr<sim::IChannel>(std::uint64_t)> channel;
  bool dup_semantics;    // exempt from delivery-conservation (P3/V3)
  bool repetition_free;  // input must be repetition-free
  int domain;
  // The sync channel's environment verdict tokens are deliveries no process
  // ever sent, which V1 rightly flags; skip trace validation there.
  bool validate = true;
};

std::vector<Config> configurations() {
  std::vector<Config> out;
  out.push_back({"repfree-dup/dup",
                 [] { return proto::make_repfree_dup(8); },
                 [](std::uint64_t) {
                   return std::make_unique<channel::DupChannel>();
                 },
                 true, true, 8});
  out.push_back({"repfree-del/del(0.3)",
                 [] { return proto::make_repfree_del(8); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::DelChannel>(0.3, seed);
                 },
                 false, true, 8});
  out.push_back({"repfree-del/dupdel(0.3)",
                 [] { return proto::make_repfree_del(8); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::DupDelChannel>(0.3, seed);
                 },
                 true, true, 8});
  out.push_back({"abp/fifo(0.2,0.2)",
                 [] { return proto::make_abp(3); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::FifoChannel>(0.2, 0.2,
                                                                 seed);
                 },
                 true, false, 3});
  out.push_back({"stenning/del(0.3)",
                 [] { return proto::make_stenning(3); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::DelChannel>(0.3, seed);
                 },
                 false, false, 3});
  out.push_back({"go-back-n/del(0.2)",
                 [] { return proto::make_go_back_n(3, 4); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::DelChannel>(0.2, seed);
                 },
                 false, false, 3});
  out.push_back({"selective-repeat/dup",
                 [] { return proto::make_selective_repeat(3, 4); },
                 [](std::uint64_t) {
                   return std::make_unique<channel::DupChannel>();
                 },
                 true, false, 3});
  out.push_back({"hybrid/fifo(0.1)",
                 [] { return proto::make_hybrid(3, 32); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::FifoChannel>(0.1, 0.0,
                                                                 seed);
                 },
                 true, false, 3});
  out.push_back({"tagged/del(0.2)",
                 [] { return prob::make_tagged_del(3, 12,
                                                   prob::TagPolicy::kRandom,
                                                   99); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::DelChannel>(0.2, seed);
                 },
                 false, false, 3});
  out.push_back({"block/fifo(0.2,0.2)",
                 [] { return proto::make_block(3, 2, 12); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::FifoChannel>(0.2, 0.2,
                                                                 seed);
                 },
                 true, false, 3});
  out.push_back({"sync-stopwait/sync(0.3)",
                 [] { return proto::make_sync_stop_wait(3); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::SyncLossChannel>(0.3,
                                                                     seed);
                 },
                 // The verdict-token mechanism "delivers" more than the
                 // processes send, so exempt it from conservation like the
                 // dup family, and from the V1 trace validator entirely.
                 true, false, 3, /*validate=*/false});
  out.push_back({"modk-stenning/fifo(0.2)",
                 [] { return proto::make_modk_stenning(3, 4); },
                 [](std::uint64_t seed) {
                   return std::make_unique<channel::FifoChannel>(0.2, 0.0,
                                                                 seed);
                 },
                 true, false, 3});
  return out;
}

class ProtocolProperties
    : public ::testing::TestWithParam<std::size_t> {};

seq::Sequence random_input(const Config& cfg, Rng& rng) {
  if (cfg.repetition_free) {
    // A random repetition-free sequence: shuffled prefix of the domain.
    std::vector<seq::DataItem> pool;
    for (int d = 0; d < cfg.domain; ++d) pool.push_back(d);
    rng.shuffle(pool);
    const auto len = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(pool.size())));
    return seq::Sequence(pool.begin(),
                         pool.begin() + static_cast<std::ptrdiff_t>(len));
  }
  seq::Sequence x(static_cast<std::size_t>(rng.range(0, 10)));
  for (auto& v : x) {
    v = static_cast<seq::DataItem>(
        rng.below(static_cast<std::uint64_t>(cfg.domain)));
  }
  return x;
}

TEST_P(ProtocolProperties, InvariantsAcrossRandomRuns) {
  const Config cfg = configurations()[GetParam()];
  Rng rng(0xABCDEF ^ GetParam());

  stp::SystemSpec spec;
  spec.protocols = cfg.protocols;
  spec.channel = cfg.channel;
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 400000;
  spec.engine.record_trace = true;

  for (int trial = 0; trial < 12; ++trial) {
    const seq::Sequence x = random_input(cfg, rng);
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);
    const sim::RunResult r = stp::run_one(spec, x, seed);

    // P1: the pairing targets this channel, so the run must complete and
    // be safe.
    ASSERT_TRUE(r.safety_ok)
        << cfg.name << " x=" << seq::to_string(x) << " seed=" << seed;
    ASSERT_TRUE(r.completed)
        << cfg.name << " x=" << seq::to_string(x) << " seed=" << seed;
    EXPECT_EQ(r.output, x) << cfg.name;

    // P2: write steps are non-decreasing (equal when a single receiver
    // step writes a burst of items, e.g. selective-repeat draining its
    // buffer or the hybrid writing everything at END).
    for (std::size_t i = 1; i < r.stats.write_step.size(); ++i) {
      EXPECT_LE(r.stats.write_step[i - 1], r.stats.write_step[i])
          << cfg.name;
    }

    // P3: conservation (non-dup semantics only).
    if (!cfg.dup_semantics) {
      EXPECT_LE(r.stats.delivered[0], r.stats.sent[0]) << cfg.name;
      EXPECT_LE(r.stats.delivered[1], r.stats.sent[1]) << cfg.name;
    }

    // P4: the trace obeys the model's laws.
    if (cfg.validate) {
      const auto report = stp::validate_trace(r, cfg.dup_semantics);
      EXPECT_TRUE(report.ok())
          << cfg.name << ": "
          << (report.issues.empty() ? "" : report.issues.front().detail);
    }

    // P5: determinism (re-run one trial per configuration).
    if (trial == 0) {
      const sim::RunResult again = stp::run_one(spec, x, seed);
      ASSERT_EQ(again.trace.size(), r.trace.size()) << cfg.name;
      for (std::size_t i = 0; i < r.trace.size(); ++i) {
        EXPECT_EQ(again.trace[i].action, r.trace[i].action) << cfg.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, ProtocolProperties,
    ::testing::Range<std::size_t>(0, configurations().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = configurations()[info.param].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace stpx
