// Tests for the run observatory: metrics registry semantics, the engine
// probe hooks (via real runs), trace sinks (JSONL + Chrome trace-event
// export), and the machine-readable report schema.
#include <gtest/gtest.h>

#include <sstream>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sinks.hpp"
#include "stp/runner.hpp"
#include "stp/soak.hpp"

namespace stpx::obs {
namespace {

stp::SystemSpec repfree_dup_spec(int m) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 300000;
  return spec;
}

stp::SystemSpec repfree_del_spec(int m) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 300000;
  return spec;
}

seq::Sequence iota(int n) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i;
  return x;
}

// --- instruments --------------------------------------------------------

TEST(Metrics, CounterAndGauge) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge g;
  g.add(3);
  g.add(-5);
  EXPECT_EQ(g.value(), -2);
  EXPECT_EQ(g.max(), 3);  // high-water survives the drop
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  Histogram h(pow2_bounds(4));  // bounds 1, 2, 4, 8 + overflow
  for (std::uint64_t s : {1u, 1u, 2u, 3u, 5u, 20u}) h.observe(s);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 32u);
  EXPECT_EQ(h.max_seen(), 20u);
  EXPECT_DOUBLE_EQ(h.mean(), 32.0 / 6.0);
  // Quantiles report bucket upper bounds; the top quantile past the last
  // bound reports the exact max.
  EXPECT_EQ(h.quantile(0.5), 2u);
  EXPECT_EQ(h.quantile(1.0), 20u);
  EXPECT_EQ(h.quantile(0.0), 1u);
}

TEST(Metrics, RegistryIsStableAndSerializable) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc();
  EXPECT_EQ(&reg.counter("a"), &reg.counter("a"));  // same instrument
  EXPECT_EQ(reg.counter_value("a"), 1u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  reg.gauge("g").set(7);
  reg.histogram("h", pow2_bounds(3)).observe(2);

  const std::string json = reg.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  // Lexicographic order => deterministic serialization.
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
}

// --- engine hooks via real runs -----------------------------------------

TEST(MetricsProbe, CountsSendsDeliversWritesOnCleanRun) {
  MetricsRegistry reg;
  MetricsProbe probe(&reg);
  stp::SystemSpec spec = repfree_dup_spec(4);
  spec.engine.probe = &probe;

  const auto r = stp::run_one(spec, iota(4), 7);
  ASSERT_TRUE(r.completed);

  EXPECT_EQ(reg.counter_value("runs"), 1u);
  EXPECT_EQ(reg.counter_value("steps"), r.stats.steps);
  EXPECT_EQ(reg.counter_value("sends.sr"), r.stats.sent[0]);
  EXPECT_EQ(reg.counter_value("sends.rs"), r.stats.sent[1]);
  EXPECT_EQ(reg.counter_value("delivers.sr"), r.stats.delivered[0]);
  EXPECT_EQ(reg.counter_value("writes"), 4u);
  EXPECT_EQ(reg.counter_value("verdict.completed"), 1u);
  // The dup channel re-delivers: replays must be visible.
  EXPECT_GT(reg.counter_value("dup_replays.sr") +
                reg.counter_value("dup_replays.rs"),
            0u);
  const auto& lat = reg.histograms().at("write_latency");
  EXPECT_EQ(lat.count(), 4u);
  EXPECT_GT(reg.histograms().at("occupancy.sr").count(), 0u);
}

TEST(MetricsProbe, SweepAccumulatesAcrossTrialsAndFaults) {
  // The acceptance-criteria scenario: a repfree_dup sweep with a chaos plan
  // attached — counters, latency percentiles, and fault events all nonzero.
  MetricsRegistry reg;
  MetricsProbe probe(&reg);
  stp::SystemSpec spec = repfree_dup_spec(4);
  spec.engine.probe = &probe;
  // A dup burst is harmless on a dup channel (delivery never consumes), so
  // every trial still completes while the fault stream stays nonempty.
  const auto plan =
      fault::plan_from_text("dup @step 40 dir SR count 2 match *\n");
  const stp::SystemSpec chaotic = stp::with_chaos(spec, plan);

  const auto result = stp::sweep_input(chaotic, iota(4), {1, 2, 3});
  EXPECT_EQ(result.trials, 3u);

  EXPECT_EQ(reg.counter_value("runs"), 3u);
  EXPECT_GT(reg.counter_value("sends.sr"), 0u);
  EXPECT_GT(reg.counter_value("delivers.sr"), 0u);
  EXPECT_GT(reg.counter_value("delivers.rs"), 0u);
  EXPECT_EQ(reg.counter_value("writes"), 12u);
  EXPECT_EQ(reg.counter_value("faults.dup"), 3u);  // once per trial
  EXPECT_EQ(reg.histograms().at("write_latency").count(), 12u);
  EXPECT_GT(reg.histograms().at("write_latency").quantile(0.99), 0u);
  EXPECT_GT(reg.histograms().at("ack_rtt").count(), 0u);
}

TEST(MetricsProbe, RecordsStallAndCrashVerdicts) {
  // A blackout covering the whole run starves the send-once protocol; the
  // watchdog must convert that into a stall the probe can see.
  MetricsRegistry reg;
  MetricsProbe probe(&reg);
  stp::SystemSpec spec = repfree_dup_spec(2);
  spec.engine.max_steps = 50000;
  spec.engine.stall_window = 500;
  spec.engine.probe = &probe;
  const auto plan =
      fault::plan_from_text("blackout @step 0 dir SR len 100000 match *\n");
  const auto r = stp::run_one(stp::with_chaos(spec, plan), iota(2), 3);

  EXPECT_EQ(r.verdict, sim::RunVerdict::kStalled);
  EXPECT_EQ(reg.counter_value("stalls"), 1u);
  EXPECT_EQ(reg.counter_value("verdict.stalled"), 1u);
  EXPECT_EQ(reg.counter_value("faults.blackout"), 1u);

  // Crash faults land in the crash counters.
  MetricsRegistry reg2;
  MetricsProbe probe2(&reg2);
  stp::SystemSpec spec2 = repfree_del_spec(4);
  spec2.engine.probe = &probe2;
  const auto crash_plan = fault::plan_from_text("crash-sender @writes 1\n");
  stp::run_one(stp::with_chaos(spec2, crash_plan), iota(4), 11);
  EXPECT_EQ(reg2.counter_value("crashes.sender"), 1u);
}

TEST(MultiProbe, FansOutToEveryProbe) {
  MetricsRegistry a, b;
  MetricsProbe pa(&a), pb(&b);
  MultiProbe multi;
  multi.add(&pa);
  multi.add(&pb);
  multi.add(nullptr);  // ignored

  stp::SystemSpec spec = repfree_dup_spec(2);
  spec.engine.probe = &multi;
  const auto r = stp::run_one(spec, iota(2), 5);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(a.counter_value("steps"), b.counter_value("steps"));
  EXPECT_EQ(a.counter_value("steps"), r.stats.steps);
}

// --- sinks --------------------------------------------------------------

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("{\"a\":[1,2.5,-3e2,true,false,null,\"s\\n\"]}"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(JsonlSink, EveryLineIsValidJson) {
  std::ostringstream out;
  JsonlSink sink(out);
  stp::SystemSpec spec = repfree_dup_spec(2);
  spec.engine.probe = &sink;
  const auto r = stp::run_one(spec, iota(2), 9);
  ASSERT_TRUE(r.completed);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(json_valid(line)) << "line " << n << ": " << line;
  }
  // At minimum: run-begin, one object per step, run-end.
  EXPECT_GT(n, r.stats.steps);
  EXPECT_NE(out.str().find("\"ev\":\"send\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ev\":\"write\""), std::string::npos);
}

TEST(ChromeTraceSink, ExportIsValidAndBalanced) {
  ChromeTraceSink sink;
  MetricsRegistry reg;
  MetricsProbe metrics(&reg);
  MultiProbe multi({&metrics, &sink});

  // The retransmitting protocol rides out the blackout window, so the run
  // still completes with both fault spans on the trace.
  stp::SystemSpec spec = repfree_del_spec(3);
  spec.engine.max_steps = 50000;
  spec.engine.probe = &multi;
  const auto plan = fault::plan_from_text(
      "blackout @step 5 dir SR len 15 match *\n"
      "freeze @step 3 len 4\n");
  const auto r = stp::run_one(stp::with_chaos(spec, plan), iota(3), 13);
  ASSERT_TRUE(r.completed);

  const std::string json = sink.to_json();
  EXPECT_TRUE(json_valid(json)) << json.substr(0, 400);

  // Fault windows must export as balanced B/E pairs.
  auto count = [&json](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  const std::size_t begins = count("\"ph\":\"B\"");
  const std::size_t ends = count("\"ph\":\"E\"");
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
  EXPECT_NE(json.find("\"blackout\""), std::string::npos);
  EXPECT_NE(json.find("\"freeze\""), std::string::npos);
  // Track metadata names the lanes.
  EXPECT_NE(json.find("\"sender\""), std::string::npos);
  EXPECT_NE(json.find("\"receiver\""), std::string::npos);

  sink.clear();
  EXPECT_EQ(sink.to_json().find("\"ph\":\"B\""), std::string::npos);
}

// --- reports ------------------------------------------------------------

TEST(Report, PercentilesNearestRank) {
  std::vector<std::uint64_t> s;
  for (std::uint64_t i = 1; i <= 100; ++i) s.push_back(i);
  const Percentiles p = percentiles_u64(s);
  EXPECT_EQ(p.count, 100u);
  EXPECT_DOUBLE_EQ(p.p50, 50.0);
  EXPECT_DOUBLE_EQ(p.p90, 90.0);
  EXPECT_DOUBLE_EQ(p.p99, 99.0);
  EXPECT_EQ(percentiles_u64({}).count, 0u);
}

TEST(Report, RunReportFromRun) {
  stp::SystemSpec spec = repfree_dup_spec(3);
  const auto r = stp::run_one(spec, iota(3), 21);
  ASSERT_TRUE(r.completed);
  const RunReport rep = make_run_report("unit", r);
  EXPECT_EQ(rep.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(rep.items_written, 3u);
  EXPECT_EQ(rep.steps, r.stats.steps);
  EXPECT_EQ(rep.write_latency.count, 3u);
  EXPECT_TRUE(json_valid(rep.to_json())) << rep.to_json();

  const auto lats = write_latencies_of(r.stats);
  ASSERT_EQ(lats.size(), 3u);
  EXPECT_EQ(lats[0], r.stats.write_step[0]);
  EXPECT_EQ(lats[1], r.stats.write_step[1] - r.stats.write_step[0]);
}

TEST(Report, SweepReportSchemaAndVerdictSplit) {
  // A healthy sweep plus one budget-starved sweep: the report must keep the
  // stalled / budget-exhausted split visible.
  const auto good = stp::sweep_input(repfree_dup_spec(3), iota(3), {1, 2});

  stp::SystemSpec starved = repfree_dup_spec(3);
  starved.engine.max_steps = 4;  // cannot finish
  const auto bad = stp::sweep_input(starved, iota(3), {1});
  EXPECT_EQ(bad.exhausted, 1u);
  EXPECT_EQ(bad.stalled, 0u);
  ASSERT_EQ(bad.failures.size(), 1u);
  EXPECT_EQ(bad.failures[0].verdict, sim::RunVerdict::kBudgetExhausted);
  EXPECT_NE(bad.failures[0].detail.find("budget-exhausted"),
            std::string::npos);

  stp::SweepResult merged = good;
  merged.merge(bad);
  SweepReport rep = stp::report_of("unit_sweep", merged);
  rep.params.emplace_back("m", "3");
  EXPECT_EQ(rep.trials, 3u);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.verdicts.completed, 2u);
  EXPECT_EQ(rep.verdicts.budget_exhausted, 1u);
  EXPECT_EQ(rep.verdicts.stalled, 0u);
  EXPECT_GT(rep.write_latency().count, 0u);

  const std::string json = rep.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"name\":\"unit_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"budget-exhausted\":1"), std::string::npos);
}

TEST(Report, StalledTrialsSplitFromExhausted) {
  stp::SystemSpec spec = repfree_dup_spec(2);
  spec.engine.max_steps = 50000;
  spec.engine.stall_window = 500;
  const auto plan =
      fault::plan_from_text("blackout @step 0 dir SR len 100000 match *\n");
  const auto r = stp::sweep_input(stp::with_chaos(spec, plan), iota(2), {4});
  EXPECT_EQ(r.stalled, 1u);
  EXPECT_EQ(r.exhausted, 0u);
  EXPECT_EQ(r.incomplete, 1u);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].verdict, sim::RunVerdict::kStalled);
}

TEST(Report, SoakReportCarriesObservabilityAggregates) {
  stp::SoakConfig cfg;
  cfg.seeds = {1, 2, 3};
  const auto rep =
      stp::soak_sweep("repfree-del", repfree_del_spec(4), {iota(4)}, cfg);
  EXPECT_GT(rep.trials, 0u);
  EXPECT_GT(rep.total_steps, 0u);
  EXPECT_EQ(rep.trial_steps.size(), rep.trials);

  const SweepReport sweep = stp::report_of(rep);
  EXPECT_EQ(sweep.trials, rep.trials);
  EXPECT_TRUE(json_valid(sweep.to_json()));
}

}  // namespace
}  // namespace stpx::obs
