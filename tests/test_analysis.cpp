// Tests for the analysis helpers: summary statistics, regression slope, and
// table rendering.
#include <gtest/gtest.h>

#include "analysis/explain.hpp"
#include "analysis/histogram.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "channel/del_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "stp/runner.hpp"
#include "util/expect.hpp"

namespace stpx::analysis {
namespace {

TEST(Stats, EmptySampleAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Stats, SingleValue) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownSample) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, PercentilesInterpolate) {
  const Summary s = summarize({0, 10});
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 9.5);
}

TEST(Stats, UnsortedInputHandled) {
  const Summary s = summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Stats, U64Overload) {
  const Summary s = summarize_u64({10, 20, 30});
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
}

TEST(Stats, LinearSlopeExact) {
  EXPECT_DOUBLE_EQ(linear_slope({1, 2, 3}, {2, 4, 6}), 2.0);
  EXPECT_DOUBLE_EQ(linear_slope({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Stats, LinearSlopeDegenerate) {
  EXPECT_EQ(linear_slope({}, {}), 0.0);
  EXPECT_EQ(linear_slope({1}, {1}), 0.0);
  EXPECT_EQ(linear_slope({2, 2}, {1, 9}), 0.0);  // vertical: undefined -> 0
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"m", "alpha(m)"});
  t.add_row({"3", "16"});
  t.add_row({"10", "9864101"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| m  | alpha(m) |"), std::string::npos);
  EXPECT_NE(out.find("| 10 | 9864101  |"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, EmptyTableStillRenders) {
  Table t({"solo"});
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_FALSE(t.to_ascii().empty());
  EXPECT_EQ(t.to_csv(), "solo\n");
}

TEST(Table, HeadingFormat) {
  EXPECT_EQ(heading("T1"), "\n== T1 ==\n");
}

TEST(Histogram, BarsScaleToMax) {
  BarSeries s;
  s.title = "demo";
  s.width = 10;
  s.bars = {{"a", 5.0}, {"b", 10.0}, {"c", 0.0}};
  const std::string out = render_bars(s);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);  // b: full width
  EXPECT_NE(out.find("#####"), std::string::npos);       // a: half width
  // c renders with zero hashes but still shows its value.
  EXPECT_NE(out.find("0.0"), std::string::npos);
}

TEST(Histogram, AllZeroSeriesRenders) {
  BarSeries s;
  s.bars = {{"x", 0.0}, {"y", 0.0}};
  EXPECT_FALSE(render_bars(s).empty());
}

TEST(Histogram, RejectsBadWidth) {
  BarSeries s;
  s.width = 0;
  EXPECT_THROW(render_bars(s), ContractError);
}

TEST(Histogram, BucketsCoverRange) {
  const std::string out =
      render_histogram("h", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5, 20);
  EXPECT_NE(out.find("[0.0, 1.8)"), std::string::npos);
  EXPECT_NE(out.find("2.0"), std::string::npos);  // each bucket holds 2
}

TEST(Histogram, EmptySampleHandled) {
  EXPECT_NE(render_histogram("h", {}, 4).find("(empty)"),
            std::string::npos);
}

TEST(Histogram, SingleValueSample) {
  // Degenerate span must not divide by zero.
  EXPECT_FALSE(render_histogram("h", {3.0, 3.0, 3.0}, 3).empty());
}

TEST(Stats, WilsonIntervalBasics) {
  // Zero trials: the vacuous [0, 1].
  const auto empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
  // 0/100: lower bound (numerically) 0, upper bound small but positive.
  const auto none = wilson_interval(0, 100);
  EXPECT_NEAR(none.lo, 0.0, 1e-12);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.hi, 0.05);
  // 100/100: mirror image.
  const auto all = wilson_interval(100, 100);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
  EXPECT_GT(all.lo, 0.95);
  // 50/100 at 95%: roughly ±0.1, containing the point estimate.
  const auto half = wilson_interval(50, 100);
  EXPECT_LT(half.lo, 0.5);
  EXPECT_GT(half.hi, 0.5);
  EXPECT_NEAR(half.hi - half.lo, 0.194, 0.01);
}

TEST(Stats, WilsonIntervalShrinksWithTrials) {
  const auto small = wilson_interval(5, 10);
  const auto big = wilson_interval(500, 1000);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

// --------------------------------------------------------------- explain --

TEST(Explain, SafeRunYieldsNothing) {
  sim::RunResult run;
  run.safety_ok = true;
  EXPECT_FALSE(explain_violation(run).has_value());
}

TEST(Explain, HandBuiltViolationFullyAttributed) {
  sim::RunResult run;
  run.input = {7, 8};
  run.output = {7, 9};
  run.safety_ok = false;
  // step 0: S sends msg 9; step 1: deliver 9 to R; step 2: R writes 7 (ok);
  // step 3: deliver 9 again; step 4: R writes 9 (violation at position 1).
  sim::TraceEvent send;
  send.step = 0;
  send.action = {sim::ActionKind::kSenderStep, -1};
  send.did_send = true;
  send.sent = 9;
  sim::TraceEvent d1;
  d1.step = 1;
  d1.action = {sim::ActionKind::kDeliverToReceiver, 9};
  sim::TraceEvent w1;
  w1.step = 2;
  w1.action = {sim::ActionKind::kReceiverStep, -1};
  w1.writes = {7};
  sim::TraceEvent d2 = d1;
  d2.step = 3;
  sim::TraceEvent w2;
  w2.step = 4;
  w2.action = {sim::ActionKind::kReceiverStep, -1};
  w2.writes = {9};
  run.trace = {send, d1, w1, d2, w2};

  const auto f = explain_violation(run);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->violation_step, 4u);
  EXPECT_EQ(f->wrong_position, 1u);
  EXPECT_EQ(f->wrote, 9);
  ASSERT_TRUE(f->expected.has_value());
  EXPECT_EQ(*f->expected, 8);
  EXPECT_EQ(f->culprit_message, 9);
  EXPECT_EQ(f->culprit_delivered_at, 3u);
  EXPECT_EQ(f->culprit_first_sent_at, 0u);
  EXPECT_EQ(f->staleness, 3u);
  const std::string story = narrate(*f, run);
  EXPECT_NE(story.find("position 1"), std::string::npos);
  EXPECT_NE(story.find("3 steps stale"), std::string::npos);
}

TEST(Explain, RealModKViolationAttributed) {
  // End-to-end: mod-2 Stenning under reordering; the forensics must point
  // at a genuinely stale message.
  stp::SystemSpec spec;
  spec.protocols = [] { return proto::make_modk_stenning(2, 2); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.record_trace = true;

  const seq::Sequence x{0, 1, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0};
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const sim::RunResult run = stp::run_one(spec, x, seed);
    if (run.safety_ok) continue;
    const auto f = explain_violation(run);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->violation_step, run.first_violation_step);
    ASSERT_TRUE(f->culprit_message.has_value());
    ASSERT_TRUE(f->staleness.has_value());
    EXPECT_GT(*f->staleness, 0u);  // the wraparound needs a stale copy
    EXPECT_FALSE(narrate(*f, run).empty());
    return;
  }
  FAIL() << "no violating seed found";
}

TEST(Explain, PastEndWriteNarrated) {
  sim::RunResult run;
  run.input = {5};
  run.output = {5, 5};
  run.safety_ok = false;
  sim::TraceEvent w;
  w.step = 0;
  w.action = {sim::ActionKind::kReceiverStep, -1};
  w.writes = {5, 5};
  run.trace = {w};
  const auto f = explain_violation(run);
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->expected.has_value());
  EXPECT_NE(narrate(*f, run).find("past the end"), std::string::npos);
}

}  // namespace
}  // namespace stpx::analysis
