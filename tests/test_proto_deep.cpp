// Deep per-protocol edge cases: scripted schedules driving each protocol
// through its tricky corners — stale acks, duplicate floods, window
// boundaries, phase transitions, restarts.
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "seq/repetition_free.hpp"
#include "sim/engine.hpp"
#include "util/expect.hpp"

namespace stpx::proto {
namespace {

using sim::Action;
using sim::ActionKind;

constexpr Action kS{ActionKind::kSenderStep, -1};
constexpr Action kR{ActionKind::kReceiverStep, -1};
Action dR(sim::MsgId m) { return {ActionKind::kDeliverToReceiver, m}; }
Action dS(sim::MsgId m) { return {ActionKind::kDeliverToSender, m}; }

sim::Engine engine_with(ProtocolPair pair, std::unique_ptr<sim::IChannel> ch,
                        std::uint64_t max_steps = 50000) {
  sim::EngineConfig cfg;
  cfg.max_steps = max_steps;
  return sim::Engine(std::move(pair.sender), std::move(pair.receiver),
                     std::move(ch),
                     std::make_unique<channel::RoundRobinScheduler>(), cfg);
}

// ---------------------------------------------------------------- repfree --

TEST(RepFreeDeep, StaleAckReplayDoesNotSkipItems) {
  // Drive manually on a dup channel: deliver the FIRST ack again later; the
  // sender must not advance past the second item on it.
  auto e = engine_with(make_repfree_dup(3), std::make_unique<channel::DupChannel>());
  e.begin({0, 1, 2});
  e.apply(kS);        // sends 0
  e.apply(dR(0));
  e.apply(kR);        // writes 0, acks 0
  e.apply(dS(0));     // sender advances to item 1
  e.apply(kS);        // sends 1
  e.apply(dS(0));     // STALE ack replay — must be ignored
  e.apply(kS);        // sender step: still waiting on ack(1), sends nothing new
  EXPECT_EQ(e.output(), seq::Sequence{0});
  e.apply(dR(1));
  e.apply(kR);
  e.apply(dS(1));
  e.apply(kS);  // sends 2
  e.apply(dR(2));
  e.apply(kR);
  EXPECT_TRUE(e.safety_ok());
  EXPECT_EQ(e.output(), (seq::Sequence{0, 1, 2}));
}

TEST(RepFreeDeep, DuplicateDataFloodIgnored) {
  auto e = engine_with(make_repfree_dup(2), std::make_unique<channel::DupChannel>());
  e.begin({1, 0});
  e.apply(kS);  // sends 1
  for (int i = 0; i < 10; ++i) e.apply(dR(1));  // flood
  e.apply(kR);
  EXPECT_EQ(e.output(), seq::Sequence{1});  // exactly one write
  EXPECT_TRUE(e.safety_ok());
}

TEST(RepFreeDeep, RestartFullyResetsState) {
  auto pair = make_repfree_del(4);
  sim::EngineConfig cfg;
  cfg.max_steps = 50000;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::make_unique<channel::DelChannel>(),
                std::make_unique<channel::FairRandomScheduler>(
                    std::uint64_t{5}),
                cfg);
  const auto first = e.run({0, 1, 2});
  ASSERT_TRUE(first.completed);
  // Re-begin with a different sequence: no residue from the first run.
  const auto second = e.run({3, 2, 1, 0});
  EXPECT_TRUE(second.completed);
  EXPECT_TRUE(second.safety_ok);
  EXPECT_EQ(second.output, (seq::Sequence{3, 2, 1, 0}));
}

TEST(RepFreeDeep, FullDomainLengthSequence) {
  // The longest member of the canonical family: a permutation of all m
  // items.
  const int m = 10;
  seq::Sequence x;
  for (int i = m - 1; i >= 0; --i) x.push_back(i);
  auto e = engine_with(make_repfree_del(m),
                       std::make_unique<channel::DelChannel>());
  const auto r = e.run(x);
  EXPECT_TRUE(r.completed && r.safety_ok);
}

TEST(RepFreeDeep, ReceiverIgnoresOutOfAlphabetMessage) {
  // Corrupted/forged ids outside M^S are dropped without any state change:
  // no write, no ack, and in-alphabet traffic still works afterwards.
  RepFreeReceiver r(3, RepFreeMode::kDup);
  r.start();
  r.on_deliver(3);
  r.on_deliver(-1);
  auto eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
  EXPECT_FALSE(eff.send.has_value());
  r.on_deliver(2);
  eff = r.on_step();
  EXPECT_EQ(eff.writes, (std::vector<seq::DataItem>{2}));
  EXPECT_EQ(eff.send, sim::MsgId{2});
}

// ---------------------------------------------------------------- windows --

TEST(WindowDeep, GoBackNWindowOneIsStopAndWait) {
  // W = 1 degenerates to Stenning-style stop-and-wait: at most one distinct
  // outstanding data message at a time.
  auto e = engine_with(make_go_back_n(2, 1),
                       std::make_unique<channel::DelChannel>());
  e.begin({0, 1, 0});
  e.apply(kS);
  e.apply(kS);
  e.apply(kS);
  // All three sends must be copies of seqno 0's message (id 0*2+0 = 0).
  EXPECT_EQ(e.channel().copies(sim::Dir::kSenderToReceiver, 0), 3u);
  EXPECT_TRUE(e.channel().deliverable(sim::Dir::kSenderToReceiver).size() == 1);
}

TEST(WindowDeep, SelectiveRepeatBuffersOutOfOrderWithinWindow) {
  auto e = engine_with(make_selective_repeat(2, 4),
                       std::make_unique<channel::DelChannel>());
  e.begin({0, 1, 1, 0});
  // Round-robin sender cycles through the window; collect two distinct
  // messages then deliver them out of order.
  e.apply(kS);  // seq 0
  e.apply(kS);  // seq 1
  const auto avail = e.channel().deliverable(sim::Dir::kSenderToReceiver);
  ASSERT_EQ(avail.size(), 2u);
  // Deliver seq 1 first: buffered, not written.
  e.apply(dR(avail[1]));
  e.apply(kR);
  EXPECT_TRUE(e.output().empty());
  // Now seq 0: both drain in order.
  e.apply(dR(avail[0]));
  e.apply(kR);
  EXPECT_EQ(e.output(), (seq::Sequence{0, 1}));
  EXPECT_TRUE(e.safety_ok());
}

TEST(WindowDeep, SelectiveRepeatRejectsBeyondWindow) {
  SelectiveRepeatReceiver r(2, 2);
  r.start();
  // Window is [0, 2): seqno 5 must be discarded (still acked though).
  r.on_deliver(5 * 2 + 1);
  const auto eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
  ASSERT_TRUE(eff.send.has_value());
  EXPECT_EQ(*eff.send, 5);  // the ack is still sent (sender may need it)
}

TEST(WindowDeep, CumulativeAckReleasesWholeWindow) {
  GoBackNSender s(2, 4);
  s.start({0, 1, 0, 1, 0});
  // Ack "3 items written" must advance base straight to 3.
  s.on_deliver(3);
  EXPECT_EQ(s.acked(), 3u);
  // A stale smaller ack must not regress it.
  s.on_deliver(1);
  EXPECT_EQ(s.acked(), 3u);
}

TEST(WindowDeep, WindowValidation) {
  EXPECT_THROW(GoBackNSender(2, 0), ContractError);
  EXPECT_THROW(SelectiveRepeatSender(2, -1), ContractError);
  EXPECT_THROW(SelectiveRepeatReceiver(0, 2), ContractError);
}

// ----------------------------------------------------------------- hybrid --

TEST(HybridDeep, PhaseTransitionsOnTimeout) {
  auto pair = make_hybrid(2, /*timeout=*/3);
  auto* sender = dynamic_cast<HybridSender*>(pair.sender.get());
  ASSERT_NE(sender, nullptr);
  auto e = engine_with(std::move(pair), std::make_unique<channel::FifoChannel>());
  e.begin({0, 1});
  EXPECT_EQ(sender->phase(), HybridPhase::kAbp);
  // Starve the sender of acks: step it past the timeout.
  for (int i = 0; i < 6; ++i) e.apply(kS);
  EXPECT_EQ(sender->phase(), HybridPhase::kReverse);
}

TEST(HybridDeep, EndMarkerIsIdempotent) {
  HybridReceiver r(2);
  r.start();
  // Deliver reverse items for X = <0 1>: arrives 1 (bit 0) then 0 (bit 1).
  r.on_deliver(2 * 2 + 0 * 2 + 1);  // reverse, bit 0, item 1
  r.on_deliver(2 * 2 + 1 * 2 + 0);  // reverse, bit 1, item 0
  r.on_deliver(4 * 2);              // END
  auto eff = r.on_step();
  EXPECT_EQ(eff.writes, (std::vector<seq::DataItem>{0, 1}));
  // Duplicate END: no double writes.
  r.on_deliver(4 * 2);
  eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
}

TEST(HybridDeep, StaleAbpDataIgnoredDuringRecovery) {
  HybridReceiver r(2);
  r.start();
  r.on_deliver(2 * 2 + 0 * 2 + 1);  // reverse item -> switches to recovery
  EXPECT_EQ(r.phase(), HybridPhase::kReverse);
  // A stale fast-path message must not produce a write now.
  r.on_deliver(0 * 2 + 0);  // ABP bit 0, item 0
  const auto eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
}

TEST(HybridDeep, SurvivesMultipleFaults) {
  // Two total-loss faults: one during ABP, one during the reverse transfer.
  auto pair = make_hybrid(3, 8);
  sim::EngineConfig cfg;
  cfg.max_steps = 400000;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::make_unique<channel::FifoChannel>(),
                std::make_unique<channel::RoundRobinScheduler>(), cfg);
  const seq::Sequence x{0, 1, 2, 0, 1, 2, 0, 1};
  e.begin(x);
  while (e.output().size() < 2 && e.steps() < cfg.max_steps) e.step_once();
  dynamic_cast<channel::FifoChannel&>(e.channel()).drop_everything();
  for (int i = 0; i < 60; ++i) e.step_once();  // into the recovery phase
  dynamic_cast<channel::FifoChannel&>(e.channel()).drop_everything();
  e.run_to_completion();
  EXPECT_TRUE(e.completed());
  EXPECT_TRUE(e.safety_ok());
}

TEST(HybridDeep, SingleItemSequence) {
  auto e = engine_with(make_hybrid(2, 8),
                       std::make_unique<channel::FifoChannel>());
  const auto r = e.run({1});
  EXPECT_TRUE(r.completed && r.safety_ok);
}

// ------------------------------------------------------------------ block --

TEST(BlockDeep, TransfersWholeSequenceOnFifo) {
  auto e = engine_with(make_block(3, 2, 16),
                       std::make_unique<channel::FifoChannel>());
  const seq::Sequence x{2, 0, 1, 1, 0, 2, 2};  // odd length: padded block
  const auto r = e.run(x);
  EXPECT_TRUE(r.completed && r.safety_ok);
  EXPECT_EQ(r.output, x);
}

TEST(BlockDeep, SurvivesLossAndDuplicationOnFifo) {
  for (std::uint64_t seed : {301ULL, 302ULL, 303ULL}) {
    auto pair = make_block(2, 3, 12);
    sim::EngineConfig cfg;
    cfg.max_steps = 200000;
    sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                  std::make_unique<channel::FifoChannel>(0.25, 0.25, seed),
                  std::make_unique<channel::FairRandomScheduler>(seed), cfg);
    const auto r = e.run({0, 1, 1, 0, 1, 0, 0});
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

TEST(BlockDeep, WritesDrainOnePerStep) {
  // The §2.4 point, observable: a delivered block conveys several items but
  // the output tape advances one item per receiver step.
  auto e = engine_with(make_block(2, 3, 6),
                       std::make_unique<channel::FifoChannel>());
  e.begin({1, 0, 1});
  // Header handshake.
  e.apply(kS);
  e.apply(dR(2 * 8 + 3));  // header: |X| = 3
  e.apply(kR);             // acks header
  e.apply(dS(2));
  // One block carries all three items.
  e.apply(kS);
  const auto avail = e.channel().deliverable(sim::Dir::kSenderToReceiver);
  ASSERT_EQ(avail.size(), 1u);
  e.apply(dR(avail[0]));
  // Drain: exactly one write per receiver step.
  e.apply(kR);
  EXPECT_EQ(e.output().size(), 1u);
  e.apply(kR);
  EXPECT_EQ(e.output().size(), 2u);
  e.apply(kR);
  EXPECT_EQ(e.output(), (seq::Sequence{1, 0, 1}));
  EXPECT_TRUE(e.safety_ok());
}

TEST(BlockDeep, EmptyAndMaxLengthInputs) {
  auto e1 = engine_with(make_block(2, 2, 8),
                        std::make_unique<channel::FifoChannel>());
  EXPECT_TRUE(e1.run({}).completed);

  seq::Sequence full(8, seq::DataItem{1});
  auto e2 = engine_with(make_block(2, 2, 8),
                        std::make_unique<channel::FifoChannel>());
  const auto r = e2.run(full);
  EXPECT_TRUE(r.completed && r.safety_ok);
}

TEST(BlockDeep, RejectsOversizeInput) {
  BlockSender s(2, 2, 4);
  EXPECT_THROW(s.start({0, 0, 0, 0, 0}), ContractError);
}

TEST(BlockDeep, PaddingNeverWritten) {
  // |X| = 1 with block size 4: three padding items must not reach Y.
  auto e = engine_with(make_block(2, 4, 4),
                       std::make_unique<channel::FifoChannel>());
  const auto r = e.run({1});
  EXPECT_TRUE(r.completed && r.safety_ok);
  EXPECT_EQ(r.output, seq::Sequence{1});
}

// ------------------------------------------------------------- stenning ---

TEST(StenningDeep, AckOfFutureNeverHappensButStaleAcksHarmless) {
  StenningSender s(2);
  s.start({0, 1});
  s.on_deliver(0);  // "zero items written": no-op
  EXPECT_EQ(s.acked(), 0u);
  s.on_deliver(2);  // both written
  EXPECT_EQ(s.acked(), 2u);
  s.on_deliver(1);  // stale: no regress
  EXPECT_EQ(s.acked(), 2u);
}

TEST(StenningDeep, ReceiverIgnoresGapsAndDuplicates) {
  StenningReceiver r(2);
  r.start();
  r.on_deliver(1 * 2 + 1);  // seq 1 before seq 0: gap, dropped
  auto eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
  r.on_deliver(0 * 2 + 0);  // seq 0
  r.on_deliver(0 * 2 + 0);  // duplicate of seq 0
  eff = r.on_step();
  EXPECT_EQ(eff.writes, (std::vector<seq::DataItem>{0}));
}

// ----------------------------------------------------------------- abp ----

TEST(AbpDeep, DuplicateDataReAcksOldBit) {
  AbpReceiver r(2);
  r.start();
  r.on_deliver(0 * 2 + 1);  // bit 0, item 1: accepted
  auto eff = r.on_step();
  EXPECT_EQ(eff.writes, (std::vector<seq::DataItem>{1}));
  EXPECT_EQ(eff.send, sim::MsgId{0});
  // A duplicate of bit 0 must re-ack bit 0 (not advance).
  r.on_deliver(0 * 2 + 1);
  eff = r.on_step();
  EXPECT_TRUE(eff.writes.empty());
  EXPECT_EQ(eff.send, sim::MsgId{0});
}

TEST(AbpDeep, SenderIgnoresWrongBitAck) {
  AbpSender s(2);
  s.start({1, 0});
  (void)s.on_step();
  s.on_deliver(1);  // wrong bit
  EXPECT_EQ(s.acked(), 0u);
  s.on_deliver(0);  // right bit
  EXPECT_EQ(s.acked(), 1u);
}

}  // namespace
}  // namespace stpx::proto
