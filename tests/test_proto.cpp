// Protocol correctness tests.
//
// Each protocol is exercised on the channel family it targets (liveness +
// safety across seeds and inputs, parameterized sweeps) and, where
// instructive, on a hostile channel to confirm the kernel detects the
// resulting misbehaviour (e.g. ABP under reordering).
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/alpha.hpp"
#include "seq/repetition_free.hpp"
#include "sim/engine.hpp"
#include "util/expect.hpp"

namespace stpx::proto {
namespace {

using channel::DelChannel;
using channel::DupChannel;
using channel::FairRandomScheduler;
using channel::FifoChannel;
using channel::RoundRobinScheduler;

sim::RunResult run_pair(ProtocolPair pair, std::unique_ptr<sim::IChannel> ch,
                        std::unique_ptr<sim::IScheduler> sched,
                        const seq::Sequence& x,
                        std::uint64_t max_steps = 60000) {
  sim::EngineConfig cfg;
  cfg.max_steps = max_steps;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::move(ch), std::move(sched), cfg);
  return e.run(x);
}

// ------------------------------------------------------------ repfree ----

TEST(RepFreeDup, CompletesOnBenignSchedule) {
  const seq::Sequence x{2, 0, 3, 1};
  const auto r = run_pair(make_repfree_dup(4), std::make_unique<DupChannel>(),
                          std::make_unique<RoundRobinScheduler>(), x);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.safety_ok);
  // Dup mode sends each message exactly once per direction.
  EXPECT_EQ(r.stats.sent[0], x.size());
}

TEST(RepFreeDup, AllCanonicalSequencesUnderAdversarialReplay) {
  // The headline achievability claim (end of §3): every one of the alpha(m)
  // repetition-free sequences is delivered safely on a duplicating,
  // reordering channel.  The fair random scheduler replays old messages
  // constantly (the deliverable set never shrinks).
  const int m = 4;
  for (const seq::Sequence& x : seq::all_repetition_free(m)) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const auto r = run_pair(
          make_repfree_dup(m), std::make_unique<DupChannel>(),
          std::make_unique<FairRandomScheduler>(seed), x, 200000);
      ASSERT_TRUE(r.safety_ok)
          << "x=" << seq::to_string(x) << " seed=" << seed;
      ASSERT_TRUE(r.completed)
          << "x=" << seq::to_string(x) << " seed=" << seed;
    }
  }
}

TEST(RepFreeDup, RejectsInputWithRepetition) {
  auto pair = make_repfree_dup(3);
  EXPECT_THROW(pair.sender->start({0, 0}), ContractError);
  EXPECT_THROW(pair.sender->start({0, 3}), ContractError);  // out of domain
}

TEST(RepFreeDel, CompletesUnderHeavyLoss) {
  const seq::Sequence x{4, 1, 0, 3, 2};
  for (std::uint64_t seed : {10ULL, 11ULL, 12ULL, 13ULL}) {
    const auto r = run_pair(
        make_repfree_del(5), std::make_unique<DelChannel>(0.5, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok) << "seed=" << seed;
    ASSERT_TRUE(r.completed) << "seed=" << seed;
  }
}

TEST(RepFreeDel, AllCanonicalSequencesUnderLossAndReorder) {
  const int m = 3;
  for (const seq::Sequence& x : seq::all_repetition_free(m)) {
    for (std::uint64_t seed : {21ULL, 22ULL}) {
      const auto r = run_pair(
          make_repfree_del(m), std::make_unique<DelChannel>(0.3, seed),
          std::make_unique<FairRandomScheduler>(seed), x, 300000);
      ASSERT_TRUE(r.safety_ok && r.completed)
          << "x=" << seq::to_string(x) << " seed=" << seed;
    }
  }
}

TEST(RepFreeDel, SurvivesTotalInFlightLoss) {
  // Drop everything mid-run; retransmission must recover.
  auto pair = make_repfree_del(4);
  sim::EngineConfig cfg;
  cfg.max_steps = 100000;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::make_unique<DelChannel>(),
                std::make_unique<FairRandomScheduler>(std::uint64_t{31}),
                cfg);
  e.begin({0, 1, 2, 3});
  while (e.output().size() < 2 && e.steps() < cfg.max_steps) e.step_once();
  dynamic_cast<DelChannel&>(e.channel()).drop_everything();
  e.run_to_completion();
  EXPECT_TRUE(e.completed());
  EXPECT_TRUE(e.safety_ok());
}

// ------------------------------------------------------ alternating bit --

TEST(AlternatingBit, CompletesOnPerfectFifo) {
  const seq::Sequence x{0, 0, 1, 0, 1, 1};  // repetitions allowed!
  const auto r = run_pair(make_abp(2), std::make_unique<FifoChannel>(),
                          std::make_unique<RoundRobinScheduler>(), x);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.safety_ok);
}

TEST(AlternatingBit, CompletesUnderLossAndDuplication) {
  const seq::Sequence x{1, 1, 0, 2, 2, 0, 1};
  for (std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    const auto r = run_pair(
        make_abp(3), std::make_unique<FifoChannel>(0.3, 0.3, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

TEST(AlternatingBit, BreaksUnderReordering) {
  // ABP assumes FIFO; on a reordering (del) channel some schedule must
  // eventually confuse the bits.  The kernel's online checker catches it.
  const seq::Sequence x{0, 1, 0, 1, 0, 1, 0, 1};
  bool any_failure = false;
  for (std::uint64_t seed = 1; seed <= 20 && !any_failure; ++seed) {
    const auto r = run_pair(
        make_abp(2), std::make_unique<DelChannel>(),
        std::make_unique<FairRandomScheduler>(seed), x, 50000);
    any_failure = !r.safety_ok || !r.completed;
  }
  EXPECT_TRUE(any_failure);
}

// --------------------------------------------------------------- stenning --

TEST(Stenning, CompletesOnAnyChannel) {
  const seq::Sequence x{0, 0, 1, 1, 0, 2};
  // Reorder + delete.
  for (std::uint64_t seed : {51ULL, 52ULL}) {
    const auto r = run_pair(
        make_stenning(3), std::make_unique<DelChannel>(0.3, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "del seed=" << seed;
  }
  // Reorder + duplicate.
  for (std::uint64_t seed : {53ULL, 54ULL}) {
    const auto r = run_pair(
        make_stenning(3), std::make_unique<DupChannel>(),
        std::make_unique<FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "dup seed=" << seed;
  }
}

TEST(Stenning, UsesUnboundedAlphabet) {
  auto pair = make_stenning(3);
  EXPECT_EQ(pair.sender->alphabet_size(), sim::kUnboundedAlphabet);
  EXPECT_EQ(pair.receiver->alphabet_size(), sim::kUnboundedAlphabet);
}

// --------------------------------------------------------- sliding window --

class WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweep, GoBackNCompletesUnderLoss) {
  const int window = GetParam();
  const seq::Sequence x{0, 1, 2, 0, 1, 2, 2, 1, 0, 0};
  for (std::uint64_t seed : {61ULL, 62ULL}) {
    const auto r = run_pair(
        make_go_back_n(3, window), std::make_unique<DelChannel>(0.3, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 400000);
    ASSERT_TRUE(r.safety_ok && r.completed)
        << "window=" << window << " seed=" << seed;
  }
}

TEST_P(WindowSweep, SelectiveRepeatCompletesUnderLoss) {
  const int window = GetParam();
  const seq::Sequence x{2, 2, 1, 0, 1, 2, 0, 0, 1, 2};
  for (std::uint64_t seed : {63ULL, 64ULL}) {
    const auto r = run_pair(make_selective_repeat(3, window),
                            std::make_unique<DelChannel>(0.3, seed),
                            std::make_unique<FairRandomScheduler>(seed), x,
                            400000);
    ASSERT_TRUE(r.safety_ok && r.completed)
        << "window=" << window << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(1, 2, 4, 8));

TEST(SelectiveRepeat, SafeOnDuplicatingChannel) {
  const seq::Sequence x{0, 1, 0, 1, 1, 0};
  for (std::uint64_t seed : {71ULL, 72ULL}) {
    const auto r = run_pair(make_selective_repeat(2, 4),
                            std::make_unique<DupChannel>(),
                            std::make_unique<FairRandomScheduler>(seed), x,
                            400000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

// ----------------------------------------------------------------- hybrid --

TEST(Hybrid, FastPathOnlyWhenNoFaults) {
  const seq::Sequence x{0, 1, 1, 0, 2};
  auto pair = make_hybrid(3, /*timeout=*/64);
  auto* sender = dynamic_cast<HybridSender*>(pair.sender.get());
  ASSERT_NE(sender, nullptr);
  sim::EngineConfig cfg;
  cfg.max_steps = 60000;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::make_unique<FifoChannel>(),
                std::make_unique<RoundRobinScheduler>(), cfg);
  const auto r = e.run(x);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.safety_ok);
}

TEST(Hybrid, RecoversFromTotalLossViaReverseTransfer) {
  const seq::Sequence x{0, 1, 1, 0, 2, 2, 1};
  auto pair = make_hybrid(3, /*timeout=*/16);
  sim::EngineConfig cfg;
  cfg.max_steps = 200000;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::make_unique<FifoChannel>(),
                std::make_unique<RoundRobinScheduler>(), cfg);
  e.begin(x);
  while (e.output().size() < 2 && e.steps() < cfg.max_steps) e.step_once();
  dynamic_cast<FifoChannel&>(e.channel()).drop_everything();
  e.run_to_completion();
  EXPECT_TRUE(e.completed());
  EXPECT_TRUE(e.safety_ok());
}

TEST(Hybrid, CompletesUnderRandomLoss) {
  const seq::Sequence x{1, 0, 1, 2, 0};
  for (std::uint64_t seed : {81ULL, 82ULL, 83ULL}) {
    const auto r = run_pair(
        make_hybrid(3, 32), std::make_unique<FifoChannel>(0.2, 0.0, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 400000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

TEST(Hybrid, EmptyInputTrivial) {
  const auto r = run_pair(make_hybrid(3, 8), std::make_unique<FifoChannel>(),
                          std::make_unique<RoundRobinScheduler>(), {});
  EXPECT_TRUE(r.completed);
}

// -------------------------------------------------------- sync stop-wait --

TEST(SyncStopWait, CarriesArbitrarySequencesWithDomainAlphabet) {
  // Repetitions galore — far outside any repetition-free family — with
  // |M^S| = |D| and no receiver messages at all.
  const seq::Sequence x{0, 0, 0, 1, 1, 0, 1, 1, 1, 0};
  for (std::uint64_t seed : {401ULL, 402ULL}) {
    const auto r = run_pair(
        make_sync_stop_wait(2),
        std::make_unique<channel::SyncLossChannel>(0.4, seed),
        std::make_unique<FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
    EXPECT_EQ(r.stats.sent[1], 0u);  // receiver sent nothing
  }
}

TEST(SyncStopWait, ResendsExactlyTheLostTransmissions) {
  // Loss 0: sends == |X|.  (The verdict token mechanism adds no data
  // messages.)
  const seq::Sequence x{1, 0, 1};
  const auto r = run_pair(make_sync_stop_wait(2),
                          std::make_unique<channel::SyncLossChannel>(),
                          std::make_unique<RoundRobinScheduler>(), x);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stats.sent[0], x.size());
}

TEST(SyncStopWait, SenderIgnoresUnexpectedVerdicts) {
  // Stray or forged deliveries must not advance (or corrupt) the lockstep:
  // a verdict with no outstanding send and a non-verdict token are both
  // silently dropped, and the protocol still completes normally afterwards.
  SyncStopWaitSender s(2);
  s.start({0});
  s.on_deliver(channel::kSyncAck);  // no send yet: dropped
  const auto eff = s.on_step();
  ASSERT_TRUE(eff.send.has_value());
  s.on_deliver(0);  // not a verdict token: dropped, send still outstanding
  EXPECT_FALSE(s.on_step().send.has_value());  // still awaiting the verdict
  s.on_deliver(channel::kSyncAck);
  EXPECT_FALSE(s.on_step().send.has_value());  // {0} fully acknowledged
}

// ---------------------------------------------------------- mod-k stenning --

TEST(ModKStenning, CorrectOnFifoWithLossAndDuplication) {
  // On FIFO links finite tags are fine (K=2 is morally the ABP).
  const seq::Sequence x{0, 1, 1, 0, 1, 0, 0, 1};
  for (std::uint64_t seed : {201ULL, 202ULL, 203ULL}) {
    const auto r = run_pair(
        make_modk_stenning(2, 2),
        std::make_unique<FifoChannel>(0.2, 0.2, seed),
        std::make_unique<channel::FairRandomScheduler>(seed), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

TEST(ModKStenning, WraparoundBreaksUnderReordering) {
  // Theorem 1/2 in action on a classic design: with finite tags, a stale
  // wrapped message is indistinguishable from the current one, and some
  // reordering schedule corrupts the output or wedges the transfer.
  const seq::Sequence x{0, 1, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0};
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto r = run_pair(
        make_modk_stenning(2, 2), std::make_unique<DelChannel>(),
        std::make_unique<channel::FairRandomScheduler>(seed), x, 60000);
    if (!r.safety_ok || !r.completed) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(ModKStenning, LargerModulusDelaysButDoesNotFixIt) {
  // K = 4 has strictly more headers but is still finite: the alphabet caps
  // the supported family all the same (alpha(K|D|) is finite), so the same
  // adversary class eventually bites.  We verify it still fails for some
  // seed — and that it uses a genuinely finite alphabet.
  auto pair = make_modk_stenning(2, 4);
  EXPECT_EQ(pair.sender->alphabet_size(), 8);
  EXPECT_EQ(pair.receiver->alphabet_size(), 4);

  const seq::Sequence x{0, 1, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1, 0};
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto r = run_pair(
        make_modk_stenning(2, 4), std::make_unique<DelChannel>(),
        std::make_unique<channel::FairRandomScheduler>(seed), x, 60000);
    if (!r.safety_ok || !r.completed) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(ModKStenning, ValidatesParameters) {
  EXPECT_THROW(ModKStenningSender(0, 2), ContractError);
  EXPECT_THROW(ModKStenningSender(2, 1), ContractError);
  EXPECT_THROW(ModKStenningReceiver(2, 0), ContractError);
}

// ---------------------------------------------------------------- encoded --

EncodingTable canonical_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

TEST(Encoded, KnowledgeReceiverDeliversEveryCanonicalInputOnDup) {
  const int m = 3;
  EncodingTable table = canonical_table(m);
  for (const seq::Sequence& x : seq::all_repetition_free(m)) {
    ProtocolPair pair{
        std::make_unique<EncodedSender>(table, /*retransmit=*/false),
        std::make_unique<KnowledgeReceiver>(table, /*reack=*/false)};
    const auto r =
        run_pair(std::move(pair), std::make_unique<DupChannel>(),
                 std::make_unique<FairRandomScheduler>(std::uint64_t{91}), x,
                 200000);
    ASSERT_TRUE(r.safety_ok) << seq::to_string(x);
    ASSERT_TRUE(r.completed) << seq::to_string(x);
  }
}

TEST(Encoded, KnowledgeReceiverDeliversOnDelWithRetransmission) {
  const int m = 3;
  EncodingTable table = canonical_table(m);
  for (const seq::Sequence& x :
       {seq::Sequence{}, seq::Sequence{2}, seq::Sequence{0, 2, 1}}) {
    ProtocolPair pair{
        std::make_unique<EncodedSender>(table, /*retransmit=*/true),
        std::make_unique<KnowledgeReceiver>(table, /*reack=*/true)};
    const auto r = run_pair(
        std::move(pair), std::make_unique<DelChannel>(0.3, 17),
        std::make_unique<FairRandomScheduler>(std::uint64_t{92}), x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << seq::to_string(x);
  }
}

TEST(Encoded, GreedyReceiverAlsoFineWithValidEncoding) {
  const int m = 3;
  EncodingTable table = canonical_table(m);
  for (const seq::Sequence& x :
       {seq::Sequence{1}, seq::Sequence{2, 0}, seq::Sequence{0, 1, 2}}) {
    ProtocolPair pair{
        std::make_unique<EncodedSender>(table, /*retransmit=*/false),
        std::make_unique<GreedyReceiver>(table, /*reack=*/false)};
    const auto r =
        run_pair(std::move(pair), std::make_unique<DupChannel>(),
                 std::make_unique<FairRandomScheduler>(std::uint64_t{93}), x,
                 200000);
    ASSERT_TRUE(r.safety_ok && r.completed) << seq::to_string(x);
  }
}

/// A deliberately broken table: two distinct inputs share one word — the
/// situation Theorem 1 forces once |𝒳| > alpha(m).
EncodingTable colliding_table() {
  seq::Encoding enc;
  enc.alphabet_size = 2;
  enc.inputs = {seq::Sequence{0, 1}, seq::Sequence{0, 0}};
  enc.words = {seq::MsgWord{0, 1}, seq::MsgWord{0, 1}};
  return std::make_shared<const seq::Encoding>(std::move(enc));
}

TEST(Encoded, CollidingWordStallsKnowledgeReceiver) {
  EncodingTable table = colliding_table();
  // Whatever the input, after word [0 1] both candidates remain and they
  // disagree at position 1, so the knowledge receiver writes item 0 only.
  ProtocolPair pair{std::make_unique<EncodedSender>(table, false),
                    std::make_unique<KnowledgeReceiver>(table, false)};
  const auto r = run_pair(
      std::move(pair), std::make_unique<DupChannel>(),
      std::make_unique<FairRandomScheduler>(std::uint64_t{94}),
      seq::Sequence{0, 1}, 50000);
  EXPECT_TRUE(r.safety_ok);      // epistemically safe...
  EXPECT_FALSE(r.completed);     // ...but liveness is gone
  EXPECT_EQ(r.output, seq::Sequence{0});
}

TEST(Encoded, CollidingWordBreaksGreedyReceiverSafety) {
  EncodingTable table = colliding_table();
  // The greedy receiver commits to table entry 0 (<0 1>); run it on the
  // OTHER input and it writes a wrong item.
  ProtocolPair pair{std::make_unique<EncodedSender>(table, false),
                    std::make_unique<GreedyReceiver>(table, false)};
  const auto r = run_pair(
      std::move(pair), std::make_unique<DupChannel>(),
      std::make_unique<FairRandomScheduler>(std::uint64_t{95}),
      seq::Sequence{0, 0}, 50000);
  EXPECT_FALSE(r.safety_ok);
}

TEST(Encoded, SenderRequiresTableEntry) {
  EncodingTable table = canonical_table(2);
  EncodedSender sender(table, false);
  EXPECT_THROW(sender.start({0, 0}), ContractError);  // not in the table
}

// Property sweep: for every m in 1..4, the paper's protocol pair solves
// X-STP(dup) for the full canonical family under several adversarial seeds.
class DupAchievability : public ::testing::TestWithParam<int> {};

TEST_P(DupAchievability, FullFamilySafeAndLive) {
  const int m = GetParam();
  std::size_t checked = 0;
  for (const seq::Sequence& x : seq::all_repetition_free(m)) {
    const auto r = run_pair(
        make_repfree_dup(m), std::make_unique<DupChannel>(),
        std::make_unique<FairRandomScheduler>(std::uint64_t{100} + checked),
        x, 300000);
    ASSERT_TRUE(r.safety_ok && r.completed) << seq::to_string(x);
    ++checked;
  }
  EXPECT_EQ(checked, seq::alpha_u64(m).value());
}

INSTANTIATE_TEST_SUITE_P(SmallAlphabets, DupAchievability,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace stpx::proto
