// Tests for channel semantics (dup set, del multiset, FIFO) and scheduler
// behaviour (fairness, determinism, scripting) — the operational encodings
// of the paper's environment Properties 1a–1c.
#include <gtest/gtest.h>

#include <map>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/sync_channel.hpp"
#include "channel/schedulers.hpp"
#include "util/expect.hpp"

namespace stpx::channel {
namespace {

using sim::Action;
using sim::ActionKind;
using sim::Dir;
using sim::SchedView;

constexpr Dir kSR = Dir::kSenderToReceiver;
constexpr Dir kRS = Dir::kReceiverToSender;

// ---------------------------------------------------------------- dup ----

TEST(DupChannel, SentMessageStaysDeliverableForever) {
  DupChannel ch;
  ch.send(kSR, 3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ch.copies(kSR, 3), 1u);
    ch.deliver(kSR, 3);  // delivery never consumes
  }
  EXPECT_EQ(ch.copies(kSR, 3), 1u);
}

TEST(DupChannel, ResendingIsIdempotent) {
  DupChannel ch;
  ch.send(kSR, 5);
  ch.send(kSR, 5);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{5});
}

TEST(DupChannel, DirectionsAreIndependent) {
  DupChannel ch;
  ch.send(kSR, 1);
  ch.send(kRS, 2);
  EXPECT_EQ(ch.copies(kSR, 1), 1u);
  EXPECT_EQ(ch.copies(kSR, 2), 0u);
  EXPECT_EQ(ch.copies(kRS, 2), 1u);
  EXPECT_EQ(ch.copies(kRS, 1), 0u);
}

TEST(DupChannel, CannotDrop) {
  DupChannel ch;
  ch.send(kSR, 1);
  EXPECT_FALSE(ch.can_drop());
  EXPECT_THROW(ch.drop(kSR, 1), ContractError);
}

TEST(DupChannel, DeliverUnsentThrows) {
  DupChannel ch;
  EXPECT_THROW(ch.deliver(kSR, 9), ContractError);
}

TEST(DupChannel, ResetForgetsEverything) {
  DupChannel ch;
  ch.send(kSR, 1);
  ch.reset();
  EXPECT_TRUE(ch.deliverable(kSR).empty());
}

TEST(DupChannel, CloneIsDeep) {
  DupChannel ch;
  ch.send(kSR, 1);
  auto copy = ch.clone();
  copy->send(kSR, 2);
  EXPECT_EQ(ch.deliverable(kSR).size(), 1u);
  EXPECT_EQ(copy->deliverable(kSR).size(), 2u);
}

// ---------------------------------------------------------------- del ----

TEST(DelChannel, DeliveryConsumesCopies) {
  DelChannel ch;
  ch.send(kSR, 4);
  ch.send(kSR, 4);
  EXPECT_EQ(ch.copies(kSR, 4), 2u);
  ch.deliver(kSR, 4);
  EXPECT_EQ(ch.copies(kSR, 4), 1u);
  ch.deliver(kSR, 4);
  EXPECT_EQ(ch.copies(kSR, 4), 0u);
  EXPECT_THROW(ch.deliver(kSR, 4), ContractError);
}

TEST(DelChannel, DropConsumesCopies) {
  DelChannel ch;
  ch.send(kSR, 7);
  EXPECT_TRUE(ch.can_drop());
  ch.drop(kSR, 7);
  EXPECT_EQ(ch.copies(kSR, 7), 0u);
  EXPECT_THROW(ch.drop(kSR, 7), ContractError);
}

TEST(DelChannel, ConservationInvariant) {
  // sent == delivered + dropped + in_flight, per direction.
  DelChannel ch;
  std::uint64_t sent = 0, delivered = 0, dropped = 0;
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) {
    const int op = static_cast<int>(rng.range(0, 2));
    if (op == 0) {
      ch.send(kSR, static_cast<sim::MsgId>(rng.range(0, 3)));
      ++sent;
    } else {
      const auto avail = ch.deliverable(kSR);
      if (avail.empty()) continue;
      const sim::MsgId m = rng.pick(avail);
      if (op == 1) {
        ch.deliver(kSR, m);
        ++delivered;
      } else {
        ch.drop(kSR, m);
        ++dropped;
      }
    }
    EXPECT_EQ(sent, delivered + dropped + ch.in_flight(kSR));
  }
}

TEST(DelChannel, LossPolicyDeletesStatistically) {
  DelChannel ch(0.5, /*seed=*/61);
  const int n = 10000;
  for (int i = 0; i < n; ++i) ch.send(kSR, 0);
  const double arrived = static_cast<double>(ch.copies(kSR, 0)) / n;
  EXPECT_NEAR(arrived, 0.5, 0.03);
}

TEST(DelChannel, LossProbValidation) {
  EXPECT_THROW(DelChannel(-0.1, 1), ContractError);
  EXPECT_THROW(DelChannel(1.1, 1), ContractError);
}

TEST(DelChannel, DropEverythingClearsBothDirections) {
  DelChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 1);
  ch.send(kRS, 2);
  EXPECT_EQ(ch.drop_everything(), 3u);
  EXPECT_EQ(ch.in_flight(kSR), 0u);
  EXPECT_EQ(ch.in_flight(kRS), 0u);
}

TEST(DelChannel, DeliverableListsDistinctIds) {
  DelChannel ch;
  ch.send(kSR, 2);
  ch.send(kSR, 2);
  ch.send(kSR, 5);
  const auto d = ch.deliverable(kSR);
  EXPECT_EQ(d, (std::vector<sim::MsgId>{2, 5}));
}

// ---------------------------------------------------------------- fifo ---

TEST(FifoChannel, PreservesOrder) {
  FifoChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 2);
  ch.send(kSR, 3);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{1});
  ch.deliver(kSR, 1);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{2});
  ch.deliver(kSR, 2);
  ch.deliver(kSR, 3);
  EXPECT_TRUE(ch.deliverable(kSR).empty());
}

TEST(FifoChannel, OnlyHeadDeliverable) {
  FifoChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 2);
  EXPECT_EQ(ch.copies(kSR, 2), 0u);
  EXPECT_THROW(ch.deliver(kSR, 2), ContractError);
}

TEST(FifoChannel, DropRemovesHead) {
  FifoChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 2);
  ch.drop(kSR, 1);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{2});
}

TEST(FifoChannel, LossAndDupPolicies) {
  FifoChannel lossy(1.0, 0.0, 1);
  lossy.send(kSR, 1);
  EXPECT_TRUE(lossy.deliverable(kSR).empty());

  FifoChannel duppy(0.0, 1.0, 1);
  duppy.send(kSR, 1);
  EXPECT_EQ(duppy.queue_length(kSR), 2u);
}

// --------------------------------------------------------------- dupdel --

TEST(DupDelChannel, LiveIdReplayableForever) {
  DupDelChannel ch;
  ch.send(kSR, 3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ch.copies(kSR, 3), 1u);
    ch.deliver(kSR, 3);
  }
}

TEST(DupDelChannel, DropSuppressesUntilResend) {
  DupDelChannel ch;
  ch.send(kSR, 3);
  ch.drop(kSR, 3);
  EXPECT_EQ(ch.copies(kSR, 3), 0u);
  EXPECT_THROW(ch.deliver(kSR, 3), ContractError);
  // A re-send revives the id.
  ch.send(kSR, 3);
  EXPECT_EQ(ch.copies(kSR, 3), 1u);
}

TEST(DupDelChannel, SuppressionPolicyStatistical) {
  DupDelChannel ch(1.0, /*seed=*/5);  // suppress everything
  ch.send(kSR, 1);
  EXPECT_TRUE(ch.deliverable(kSR).empty());

  DupDelChannel open(0.0, /*seed=*/5);
  open.send(kSR, 1);
  EXPECT_EQ(open.deliverable(kSR), std::vector<sim::MsgId>{1});
}

TEST(DupDelChannel, ResendCanReviveSuppressedSend) {
  // With p = 0.5 and many re-sends, the id must eventually go live.
  DupDelChannel ch(0.5, /*seed=*/11);
  for (int i = 0; i < 64 && ch.copies(kSR, 9) == 0; ++i) ch.send(kSR, 9);
  EXPECT_EQ(ch.copies(kSR, 9), 1u);
}

TEST(DupDelChannel, DropEverythingSuppressesAllLive) {
  DupDelChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 2);
  ch.send(kRS, 3);
  EXPECT_EQ(ch.drop_everything(), 3u);
  EXPECT_TRUE(ch.deliverable(kSR).empty());
  EXPECT_TRUE(ch.deliverable(kRS).empty());
}

TEST(DupDelChannel, ValidatesSuppressProb) {
  EXPECT_THROW(DupDelChannel(1.5, 1), ContractError);
}

// ----------------------------------------------------------------- sync ---

TEST(SyncLossChannel, SuccessfulSendYieldsMessageAndAckToken) {
  SyncLossChannel ch;  // loss 0
  ch.send(kSR, 5);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{5});
  EXPECT_EQ(ch.deliverable(kRS), std::vector<sim::MsgId>{kSyncAck});
}

TEST(SyncLossChannel, LostSendYieldsNackOnly) {
  SyncLossChannel ch(1.0, /*seed=*/3);  // lose everything
  ch.send(kSR, 5);
  EXPECT_TRUE(ch.deliverable(kSR).empty());
  EXPECT_EQ(ch.deliverable(kRS), std::vector<sim::MsgId>{kSyncNack});
}

TEST(SyncLossChannel, VerdictsArriveInSendOrder) {
  SyncLossChannel ch;
  ch.send(kSR, 1);
  ch.send(kSR, 2);
  EXPECT_EQ(ch.deliverable(kRS), std::vector<sim::MsgId>{kSyncAck});
  ch.deliver(kRS, kSyncAck);
  EXPECT_EQ(ch.deliverable(kRS), std::vector<sim::MsgId>{kSyncAck});
  // Data stays FIFO.
  ch.deliver(kSR, 1);
  EXPECT_EQ(ch.deliverable(kSR), std::vector<sim::MsgId>{2});
}

TEST(SyncLossChannel, CannotDropExplicitly) {
  SyncLossChannel ch;
  ch.send(kSR, 1);
  EXPECT_FALSE(ch.can_drop());
  EXPECT_THROW(ch.drop(kSR, 1), ContractError);
}

TEST(SyncLossChannel, ReverseDirectionIsPlainFifo) {
  SyncLossChannel ch(1.0, 7);  // even with full loss policy...
  ch.send(kRS, 9);             // ...R->S traffic passes untouched
  EXPECT_EQ(ch.deliverable(kRS), std::vector<sim::MsgId>{9});
}

// ----------------------------------------------------------- schedulers --

SchedView view_with(std::vector<sim::MsgId> to_r,
                    std::vector<sim::MsgId> to_s) {
  SchedView v;
  v.deliverable_to_receiver = std::move(to_r);
  v.deliverable_to_sender = std::move(to_s);
  return v;
}

TEST(FairRandomScheduler, OnlyChoosesLegalDeliveries) {
  FairRandomScheduler sched(std::uint64_t{71});
  for (int i = 0; i < 2000; ++i) {
    const Action a = sched.choose(view_with({3, 4}, {9}));
    switch (a.kind) {
      case ActionKind::kDeliverToReceiver:
        EXPECT_TRUE(a.msg == 3 || a.msg == 4);
        break;
      case ActionKind::kDeliverToSender:
        EXPECT_EQ(a.msg, 9);
        break;
      default:
        break;
    }
  }
}

TEST(FairRandomScheduler, NoDeliveryWhenNothingDeliverable) {
  FairRandomScheduler sched(std::uint64_t{73});
  for (int i = 0; i < 500; ++i) {
    const Action a = sched.choose(view_with({}, {}));
    EXPECT_TRUE(a.kind == ActionKind::kSenderStep ||
                a.kind == ActionKind::kReceiverStep);
  }
}

TEST(FairRandomScheduler, EveryCategoryChosenEventually) {
  FairRandomScheduler sched(std::uint64_t{79});
  std::map<ActionKind, int> counts;
  for (int i = 0; i < 4000; ++i) {
    ++counts[sched.choose(view_with({1}, {2})).kind];
  }
  EXPECT_GT(counts[ActionKind::kSenderStep], 0);
  EXPECT_GT(counts[ActionKind::kReceiverStep], 0);
  EXPECT_GT(counts[ActionKind::kDeliverToReceiver], 0);
  EXPECT_GT(counts[ActionKind::kDeliverToSender], 0);
}

TEST(FairRandomScheduler, StarvationLimitForcesProcessSteps) {
  FairRandomConfig cfg;
  cfg.seed = 83;
  cfg.sender_weight = 0.0;  // never *randomly* picks the sender...
  cfg.receiver_weight = 1.0;
  cfg.delivery_weight = 1.0;
  cfg.starvation_limit = 16;
  FairRandomScheduler sched(cfg);
  int sender_steps = 0;
  for (int i = 0; i < 500; ++i) {
    if (sched.choose(view_with({1}, {})).kind == ActionKind::kSenderStep) {
      ++sender_steps;
    }
  }
  // ...but the aging override still guarantees them.
  EXPECT_GT(sender_steps, 500 / 20);
}

TEST(FairRandomScheduler, RejectsBadWeights) {
  FairRandomConfig cfg;
  cfg.sender_weight = -1.0;
  EXPECT_THROW(FairRandomScheduler{cfg}, ContractError);
  FairRandomConfig zeros;
  zeros.sender_weight = zeros.receiver_weight = zeros.delivery_weight = 0.0;
  EXPECT_THROW(FairRandomScheduler{zeros}, ContractError);
}

TEST(FairRandomScheduler, ResetRestoresDeterminism) {
  FairRandomScheduler sched(std::uint64_t{89});
  std::vector<Action> first;
  for (int i = 0; i < 50; ++i) first.push_back(sched.choose(view_with({1}, {2})));
  sched.reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sched.choose(view_with({1}, {2})), first[static_cast<std::size_t>(i)]);
  }
}

TEST(RoundRobinScheduler, CyclesThroughAllPhases) {
  RoundRobinScheduler sched;
  const auto v = view_with({5}, {6});
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kSenderStep);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kDeliverToReceiver);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kDeliverToSender);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kSenderStep);
}

TEST(RoundRobinScheduler, SkipsEmptyDeliveryPhases) {
  RoundRobinScheduler sched;
  const auto v = view_with({}, {});
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kSenderStep);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kSenderStep);
}

TEST(RoundRobinScheduler, RotatesWithinDeliverableSet) {
  RoundRobinScheduler sched;
  const auto v = view_with({1, 2, 3}, {});
  std::map<sim::MsgId, int> delivered;
  for (int i = 0; i < 12; ++i) {
    const Action a = sched.choose(v);
    if (a.kind == ActionKind::kDeliverToReceiver) ++delivered[a.msg];
  }
  EXPECT_EQ(delivered.size(), 3u);  // all three get turns
}

TEST(ScriptedScheduler, ReplaysThenFallsBack) {
  std::vector<Action> script{{ActionKind::kReceiverStep, -1},
                             {ActionKind::kReceiverStep, -1}};
  ScriptedScheduler sched(script);
  const auto v = view_with({}, {});
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
  // Script exhausted: falls back to round-robin.
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kSenderStep);
}

TEST(ScriptedScheduler, ResetRewindsScript) {
  std::vector<Action> script{{ActionKind::kReceiverStep, -1}};
  ScriptedScheduler sched(script);
  const auto v = view_with({}, {});
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
  sched.reset();
  EXPECT_EQ(sched.choose(v).kind, ActionKind::kReceiverStep);
}

}  // namespace
}  // namespace stpx::channel
