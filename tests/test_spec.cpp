// Tests for the temporal property layer: snapshot reconstruction, every
// combinator's finite-trace semantics, witness reporting, and the canned
// formulas on real (and really broken) runs.
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "spec/temporal.hpp"
#include "stp/runner.hpp"
#include "util/expect.hpp"

namespace stpx::spec {
namespace {

/// Hand-built snapshot traces for combinator semantics: output length acts
/// as the observable "value".
std::vector<Snapshot> trace_of_lengths(const std::vector<int>& lengths,
                                       const seq::Sequence& input) {
  std::vector<Snapshot> out;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    Snapshot s;
    s.step = i;
    s.input = &input;
    s.output.assign(static_cast<std::size_t>(lengths[i]), 0);
    out.push_back(std::move(s));
  }
  return out;
}

Formula len_is(int n) {
  return Formula::atom("len==" + std::to_string(n), [n](const Snapshot& s) {
    return static_cast<int>(s.output.size()) == n;
  });
}

Formula len_ge(int n) {
  return Formula::atom("len>=" + std::to_string(n), [n](const Snapshot& s) {
    return static_cast<int>(s.output.size()) >= n;
  });
}

const seq::Sequence kInput{0, 0, 0, 0};

TEST(Combinators, AtomAndNegation) {
  const auto t = trace_of_lengths({1}, kInput);
  EXPECT_TRUE(len_is(1).holds_at(t, 0));
  EXPECT_FALSE(len_is(2).holds_at(t, 0));
  EXPECT_TRUE(Formula::negation(len_is(2)).holds_at(t, 0));
}

TEST(Combinators, BooleanConnectives) {
  const auto t = trace_of_lengths({3}, kInput);
  EXPECT_TRUE(
      Formula::conjunction(len_ge(1), len_ge(3)).holds_at(t, 0));
  EXPECT_FALSE(
      Formula::conjunction(len_ge(1), len_ge(4)).holds_at(t, 0));
  EXPECT_TRUE(
      Formula::disjunction(len_ge(4), len_ge(2)).holds_at(t, 0));
  EXPECT_TRUE(Formula::implies(len_ge(4), len_is(0)).holds_at(t, 0));
  EXPECT_FALSE(Formula::implies(len_ge(3), len_is(0)).holds_at(t, 0));
}

TEST(Combinators, AlwaysOverSuffixes) {
  const auto t = trace_of_lengths({0, 1, 2, 3}, kInput);
  EXPECT_TRUE(Formula::always(len_ge(0)).holds_at(t, 0));
  EXPECT_FALSE(Formula::always(len_ge(1)).holds_at(t, 0));
  EXPECT_TRUE(Formula::always(len_ge(1)).holds_at(t, 1));  // suffix view
}

TEST(Combinators, EventuallyWithinTrace) {
  const auto t = trace_of_lengths({0, 0, 2}, kInput);
  EXPECT_TRUE(Formula::eventually(len_is(2)).holds_at(t, 0));
  EXPECT_FALSE(Formula::eventually(len_is(5)).holds_at(t, 0));
  // Not satisfiable from a position after the witness.
  EXPECT_FALSE(Formula::eventually(len_is(0)).holds_at(t, 2));
}

TEST(Combinators, NextIsStrong) {
  const auto t = trace_of_lengths({0, 1}, kInput);
  EXPECT_TRUE(Formula::next(len_is(1)).holds_at(t, 0));
  EXPECT_FALSE(Formula::next(len_is(1)).holds_at(t, 1));  // no successor
}

TEST(Combinators, UntilStrongSemantics) {
  const auto t = trace_of_lengths({0, 0, 1, 2}, kInput);
  // len==0 holds until len==1.
  EXPECT_TRUE(Formula::until(len_is(0), len_is(1)).holds_at(t, 0));
  // len==0 does NOT hold until len==2 (breaks at index 2 first).
  EXPECT_FALSE(Formula::until(len_is(0), len_is(2)).holds_at(t, 0));
  // Strong until: the goal must occur within the trace.
  EXPECT_FALSE(Formula::until(len_ge(0), len_is(9)).holds_at(t, 0));
}

TEST(Combinators, StableMeansOnceTrueAlwaysTrue) {
  const seq::Sequence in{0, 0, 0};
  const auto good = trace_of_lengths({0, 1, 1, 2}, in);
  EXPECT_TRUE(Formula::stable(len_ge(1)).check(good).holds);
  const auto bad = trace_of_lengths({0, 1, 0}, in);  // regresses!
  const auto r = Formula::stable(len_ge(1)).check(bad);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.witness, 1u);  // first position where stability is refuted
}

TEST(Combinators, CheckReportsWitnessAndLabel) {
  const auto t = trace_of_lengths({1, 1, 0}, kInput);
  const auto r = Formula::always(len_ge(1)).check(t);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.witness, 2u);
  EXPECT_NE(r.detail.find("len>=1"), std::string::npos);
}

TEST(Combinators, DescribeComposes) {
  const auto f = Formula::always(Formula::implies(len_ge(1), len_ge(0)));
  EXPECT_NE(f.describe().find("G("), std::string::npos);
  EXPECT_NE(f.describe().find("len>=1"), std::string::npos);
}

// ------------------------------------------------------------ snapshots --

stp::SystemSpec traced_spec(bool dup) {
  stp::SystemSpec spec;
  if (dup) {
    spec.protocols = [] { return proto::make_repfree_dup(4); };
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
  } else {
    spec.protocols = [] { return proto::make_repfree_del(4); };
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.2, seed);
    };
  }
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  spec.engine.record_trace = true;
  return spec;
}

TEST(Snapshots, ReconstructRunExactly) {
  const sim::RunResult run = stp::run_one(traced_spec(false), {2, 0, 3}, 5);
  ASSERT_TRUE(run.completed);
  const auto snaps = snapshots_of(run);
  ASSERT_EQ(snaps.size(), run.trace.size() + 1);
  EXPECT_TRUE(snaps.front().output.empty());
  EXPECT_EQ(snaps.back().output, run.output);
  EXPECT_EQ(snaps.back().sent[0] + snaps.back().sent[1],
            run.stats.sent[0] + run.stats.sent[1]);
  EXPECT_EQ(snaps.back().delivered[0], run.stats.delivered[0]);
}

TEST(Snapshots, RequireRecordedTrace) {
  sim::RunResult run;
  run.stats.steps = 3;  // but no trace
  EXPECT_THROW(snapshots_of(run), ContractError);
}

// ---------------------------------------------------- canned on real runs --

TEST(Canned, GoodRunSatisfiesAllRequirements) {
  const sim::RunResult run = stp::run_one(traced_spec(false), {1, 3, 0, 2}, 7);
  ASSERT_TRUE(run.completed);
  const auto snaps = snapshots_of(run);
  EXPECT_TRUE(prefix_safety().check(snaps).holds);
  EXPECT_TRUE(eventually_complete().check(snaps).holds);
  EXPECT_TRUE(output_monotone().check(snaps).holds);
  EXPECT_TRUE(delivery_conservation().check(snaps).holds);
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(eventually_delivers(i).check(snaps).holds) << i;
  }
  EXPECT_FALSE(eventually_delivers(5).check(snaps).holds);
}

TEST(Canned, ConservationLegitimatelyFailsOnDupChannel) {
  // A dup channel over-delivers by design; the formula exists precisely to
  // distinguish the two channel families.
  const sim::RunResult run =
      stp::run_one(traced_spec(true), {0, 1, 2, 3}, 11);
  ASSERT_TRUE(run.completed);
  const auto snaps = snapshots_of(run);
  EXPECT_TRUE(prefix_safety().check(snaps).holds);
  EXPECT_FALSE(delivery_conservation().check(snaps).holds);
}

TEST(Canned, SafetyFormulaCatchesViolatingRun) {
  // mod-2 Stenning under reordering: when the kernel flags a violation, the
  // temporal formula must agree, with a meaningful witness step.
  stp::SystemSpec spec;
  spec.protocols = [] { return proto::make_modk_stenning(2, 2); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.record_trace = true;

  const seq::Sequence x{0, 1, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0};
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const sim::RunResult run = stp::run_one(spec, x, seed);
    if (run.safety_ok) continue;
    const auto snaps = snapshots_of(run);
    const auto verdict = prefix_safety().check(snaps);
    EXPECT_FALSE(verdict.holds);
    EXPECT_EQ(verdict.witness, run.first_violation_step + 1);
    return;  // one witnessed violation is enough
  }
  FAIL() << "no violating seed found (expected at least one)";
}

}  // namespace
}  // namespace stpx::spec
