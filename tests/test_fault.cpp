// Tests for the fault subsystem: FaultPlan serialization and sampling, the
// ChaosChannel decorator (IChannel conformance + each fault kind), engine
// crash-restart, the livelock watchdog, and plan minimization.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "fault/chaos_channel.hpp"
#include "fault/plan.hpp"
#include "stp/fault.hpp"
#include "stp/soak.hpp"
#include "store/stable_store.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx::fault {
namespace {

using sim::Dir;

// ------------------------------------------------------------------ plans --

TEST(FaultPlan, TextRoundTrip) {
  FaultPlan plan;
  plan.actions.push_back({.kind = FaultKind::kDropBurst,
                          .trigger = {TriggerKind::kStep, 120},
                          .dir = Dir::kSenderToReceiver,
                          .count = 3});
  plan.actions.push_back({.kind = FaultKind::kDupBurst,
                          .trigger = {TriggerKind::kWrites, 2},
                          .dir = Dir::kReceiverToSender,
                          .count = 4,
                          .match = sim::MsgId{1}});
  plan.actions.push_back({.kind = FaultKind::kBlackout,
                          .trigger = {TriggerKind::kSends, 10},
                          .dir = Dir::kSenderToReceiver,
                          .duration = 200});
  plan.actions.push_back({.kind = FaultKind::kFreeze,
                          .trigger = {TriggerKind::kStep, 50},
                          .dir = Dir::kReceiverToSender,
                          .duration = 100});
  plan.actions.push_back({.kind = FaultKind::kCapInFlight,
                          .trigger = {TriggerKind::kStep, 0},
                          .dir = Dir::kSenderToReceiver,
                          .count = 2});
  plan.actions.push_back(
      {.kind = FaultKind::kCrashSender, .trigger = {TriggerKind::kWrites, 3}});
  plan.actions.push_back(
      {.kind = FaultKind::kCrashReceiver, .trigger = {TriggerKind::kStep, 500}});
  plan.actions.push_back({.kind = FaultKind::kTornWrite,
                          .trigger = {TriggerKind::kWrites, 2},
                          .proc = sim::Proc::kReceiver});
  plan.actions.push_back({.kind = FaultKind::kLoseTail,
                          .trigger = {TriggerKind::kWrites, 3},
                          .proc = sim::Proc::kSender,
                          .count = 1});
  plan.actions.push_back({.kind = FaultKind::kCorruptRecord,
                          .trigger = {TriggerKind::kStep, 40},
                          .proc = sim::Proc::kReceiver});
  plan.actions.push_back({.kind = FaultKind::kStaleSnapshot,
                          .trigger = {TriggerKind::kSends, 8},
                          .proc = sim::Proc::kSender});

  const std::string text = to_text(plan);
  EXPECT_EQ(plan_from_text(text), plan) << text;
}

TEST(FaultPlan, ParserRejectsGarbage) {
  EXPECT_THROW(plan_from_text("explode @step 3"), ContractError);
  EXPECT_THROW(plan_from_text("drop step 3"), ContractError);
  EXPECT_THROW(plan_from_text("drop @sometime 3"), ContractError);
  EXPECT_THROW(plan_from_text("drop @step 3 dir XX"), ContractError);
  EXPECT_THROW(plan_from_text("drop @step 3 wibble 4"), ContractError);
  EXPECT_THROW(plan_from_text("torn-write @step 3 proc nobody"), ContractError);
}

TEST(FaultPlan, ParserSkipsCommentsAndBlanks) {
  const auto plan =
      plan_from_text("# a comment\n\ncrash-sender @writes 1\n");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.actions[0].kind, FaultKind::kCrashSender);
}

TEST(FaultPlan, SamplingIsDeterministicAndRespectsMenu) {
  SamplerConfig cfg;
  cfg.allow_crash_sender = true;
  Rng a(42), b(42);
  EXPECT_EQ(sample_plan(a, cfg), sample_plan(b, cfg));

  SamplerConfig drops_only;
  drops_only.allow_dup = drops_only.allow_blackout = drops_only.allow_freeze =
      false;
  drops_only.min_actions = 3;
  drops_only.max_actions = 5;
  Rng c(7);
  const auto plan = sample_plan(c, drops_only);
  EXPECT_GE(plan.size(), 3u);
  EXPECT_LE(plan.size(), 5u);
  for (const auto& act : plan.actions) {
    EXPECT_EQ(act.kind, FaultKind::kDropBurst);
    EXPECT_GE(act.count, 1u);  // sampled bursts are finite and non-empty
  }
}

// ---------------------------------------------- decorator conformance -----
// The IChannel laws of test_channel_conformance.cpp, re-run through a
// ChaosChannel with an empty plan: decoration must be transparent.

struct WrapCase {
  std::string name;
  std::function<std::unique_ptr<sim::IChannel>()> make_inner;
  bool fifo;
};

std::vector<WrapCase> wrap_cases() {
  using namespace stpx::channel;
  return {
      {"dup", [] { return std::make_unique<DupChannel>(); }, false},
      {"del", [] { return std::make_unique<DelChannel>(); }, false},
      {"dupdel", [] { return std::make_unique<DupDelChannel>(); }, false},
      {"fifo", [] { return std::make_unique<FifoChannel>(); }, true},
  };
}

class ChaosConformance : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::unique_ptr<sim::IChannel> make() {
    return std::make_unique<ChaosChannel>(wrap_cases()[GetParam()].make_inner(),
                                          FaultPlan{});
  }
  bool fifo() const { return wrap_cases()[GetParam()].fifo; }
};

TEST_P(ChaosConformance, FreshAndResetAreEmpty) {
  auto ch = make();
  EXPECT_TRUE(ch->deliverable(Dir::kSenderToReceiver).empty());
  ch->send(Dir::kSenderToReceiver, 1);
  ch->reset();
  EXPECT_TRUE(ch->deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 1), 0u);
}

TEST_P(ChaosConformance, DeliverableMatchesCopies) {
  auto ch = make();
  ch->send(Dir::kSenderToReceiver, 3);
  ch->send(Dir::kSenderToReceiver, 7);
  const auto list = ch->deliverable(Dir::kSenderToReceiver);
  std::set<sim::MsgId> listed(list.begin(), list.end());
  EXPECT_EQ(listed.size(), list.size());
  for (sim::MsgId id : listed) {
    EXPECT_GT(ch->copies(Dir::kSenderToReceiver, id), 0u);
  }
  if (!fifo()) {
    EXPECT_TRUE(listed.count(3));
    EXPECT_TRUE(listed.count(7));
  } else {
    EXPECT_EQ(list.size(), 1u);
  }
}

TEST_P(ChaosConformance, DeliverDiscipline) {
  auto ch = make();
  EXPECT_THROW(ch->deliver(Dir::kSenderToReceiver, 5), ContractError);
  ch->send(Dir::kSenderToReceiver, 5);
  const auto before = ch->copies(Dir::kSenderToReceiver, 5);
  ASSERT_GT(before, 0u);
  ch->deliver(Dir::kSenderToReceiver, 5);
  EXPECT_LE(ch->copies(Dir::kSenderToReceiver, 5), before);
}

TEST_P(ChaosConformance, DropDiscipline) {
  auto ch = make();
  if (!ch->can_drop()) {
    ch->send(Dir::kSenderToReceiver, 2);
    EXPECT_THROW(ch->drop(Dir::kSenderToReceiver, 2), ContractError);
    return;
  }
  EXPECT_THROW(ch->drop(Dir::kSenderToReceiver, 2), ContractError);
  ch->send(Dir::kSenderToReceiver, 2);
  ch->drop(Dir::kSenderToReceiver, 2);
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 2), 0u);
}

TEST_P(ChaosConformance, CloneIsDeepAndDirectionsIndependent) {
  auto ch = make();
  ch->send(Dir::kSenderToReceiver, 1);
  auto copy = ch->clone();
  copy->send(Dir::kSenderToReceiver, 9);
  EXPECT_EQ(ch->copies(Dir::kSenderToReceiver, 9), 0u);
  EXPECT_EQ(ch->copies(Dir::kReceiverToSender, 1), 0u);
  if (ch->copies(Dir::kSenderToReceiver, 1) > 0) {
    ch->deliver(Dir::kSenderToReceiver, 1);
  }
  EXPECT_GT(copy->copies(Dir::kSenderToReceiver, 1), 0u);
}

TEST_P(ChaosConformance, FuzzMatchesUndecoratedChannel) {
  // Drive a decorated and an undecorated channel through the same random
  // legal operation soup; with an empty plan they must agree exactly.
  auto chaos = make();
  auto plain = wrap_cases()[GetParam()].make_inner();
  Rng rng(17 + GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Dir dir = rng.chance(0.5) ? Dir::kSenderToReceiver
                                    : Dir::kReceiverToSender;
    const int op = static_cast<int>(rng.range(0, 2));
    if (op == 0) {
      const auto id = static_cast<sim::MsgId>(rng.below(6));
      chaos->send(dir, id);
      plain->send(dir, id);
    } else {
      const auto avail = plain->deliverable(dir);
      ASSERT_EQ(chaos->deliverable(dir), avail);
      if (avail.empty()) continue;
      const sim::MsgId id = rng.pick(avail);
      ASSERT_EQ(chaos->copies(dir, id), plain->copies(dir, id));
      if (op == 1) {
        chaos->deliver(dir, id);
        plain->deliver(dir, id);
      } else if (plain->can_drop()) {
        chaos->drop(dir, id);
        plain->drop(dir, id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInnerChannels, ChaosConformance,
    ::testing::Range<std::size_t>(0, wrap_cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return wrap_cases()[info.param].name;
    });

// -------------------------------------------------- fault kinds, unit -----

ChaosChannel make_del_chaos(const std::string& plan_text) {
  return ChaosChannel(std::make_unique<channel::DelChannel>(),
                      plan_from_text(plan_text));
}

TEST(ChaosChannel, DropBurstDeletesMatchingCopies) {
  auto ch = make_del_chaos("drop @step 5 dir SR count 2 match 3\n");
  ch.send(Dir::kSenderToReceiver, 3);
  ch.send(Dir::kSenderToReceiver, 3);
  ch.send(Dir::kSenderToReceiver, 3);
  ch.send(Dir::kSenderToReceiver, 8);
  ch.tick({4, 0});  // before the trigger: nothing happens
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 3), 3u);
  ch.tick({5, 0});
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 3), 1u);  // 2 of 3 dropped
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 8), 1u);  // predicate miss
  EXPECT_EQ(ch.stats().copies_dropped, 2u);
  ch.tick({6, 0});  // fire-once: no further drops
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 3), 1u);
}

TEST(ChaosChannel, DropBurstCountZeroDropsEverything) {
  auto ch = make_del_chaos("drop @step 1 dir SR count 0 match *\n");
  ch.send(Dir::kSenderToReceiver, 1);
  ch.send(Dir::kSenderToReceiver, 2);
  ch.send(Dir::kSenderToReceiver, 2);
  ch.tick({1, 0});
  EXPECT_TRUE(ch.deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_EQ(ch.stats().copies_dropped, 3u);
}

TEST(ChaosChannel, DropBurstIsNoOpOnDupChannel) {
  ChaosChannel ch(std::make_unique<channel::DupChannel>(),
                  plan_from_text("drop @step 0 dir SR count 0 match *\n"));
  ch.send(Dir::kSenderToReceiver, 1);
  ch.tick({3, 0});  // DupChannel forbids deletion; burst must not throw
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 1), 1u);
  EXPECT_EQ(ch.stats().copies_dropped, 0u);
}

TEST(ChaosChannel, DupBurstAmplifiesInFlightCopies) {
  auto ch = make_del_chaos("dup @step 2 dir SR count 5 match *\n");
  ch.send(Dir::kSenderToReceiver, 4);
  ch.tick({2, 0});
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 4), 6u);
  EXPECT_EQ(ch.stats().copies_duplicated, 5u);
}

TEST(ChaosChannel, DupBurstWithNothingInFlightIsNoOp) {
  auto ch = make_del_chaos("dup @step 0 dir SR count 5 match *\n");
  ch.tick({0, 0});
  EXPECT_TRUE(ch.deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_EQ(ch.stats().copies_duplicated, 0u);
}

TEST(ChaosChannel, BlackoutSwallowsSendsForWindow) {
  auto ch = make_del_chaos("blackout @step 10 dir SR len 5 match *\n");
  ch.tick({10, 0});
  ch.send(Dir::kSenderToReceiver, 1);
  ch.send(Dir::kReceiverToSender, 1);  // other direction unaffected
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 1), 0u);
  EXPECT_EQ(ch.copies(Dir::kReceiverToSender, 1), 1u);
  EXPECT_EQ(ch.stats().sends_blacked_out, 1u);
  ch.tick({15, 0});  // window [10, 15) is over
  ch.send(Dir::kSenderToReceiver, 2);
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 2), 1u);
}

TEST(ChaosChannel, FreezeHidesDeliverableForWindow) {
  auto ch = make_del_chaos("freeze @step 3 dir SR len 4\n");
  ch.send(Dir::kSenderToReceiver, 6);
  ch.tick({3, 0});
  EXPECT_TRUE(ch.deliverable(Dir::kSenderToReceiver).empty());
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 6), 0u);
  EXPECT_THROW(ch.deliver(Dir::kSenderToReceiver, 6), ContractError);
  ch.tick({7, 0});  // thawed: the copy was preserved, not deleted
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 6), 1u);
  ch.deliver(Dir::kSenderToReceiver, 6);
}

TEST(ChaosChannel, CapShedsExcessSends) {
  auto ch = make_del_chaos("cap @step 0 dir SR count 2\n");
  ch.tick({0, 0});
  ch.send(Dir::kSenderToReceiver, 1);
  ch.send(Dir::kSenderToReceiver, 2);
  ch.send(Dir::kSenderToReceiver, 3);  // over the cap: shed
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 3), 0u);
  EXPECT_EQ(ch.stats().sends_shed, 1u);
  ch.deliver(Dir::kSenderToReceiver, 1);
  ch.send(Dir::kSenderToReceiver, 3);  // back under the cap
  EXPECT_EQ(ch.copies(Dir::kSenderToReceiver, 3), 1u);
}

TEST(ChaosChannel, WriteAndSendTriggersArm) {
  auto ch = make_del_chaos(
      "crash-sender @writes 2\n"
      "crash-receiver @sends 3\n");
  EXPECT_FALSE(ch.tick({0, 0}).crash_sender);
  EXPECT_FALSE(ch.tick({1, 1}).crash_sender);
  EXPECT_TRUE(ch.tick({2, 2}).crash_sender);   // writes hit 2
  EXPECT_FALSE(ch.tick({3, 5}).crash_sender);  // fire-once
  ch.send(Dir::kSenderToReceiver, 1);
  ch.send(Dir::kSenderToReceiver, 1);
  EXPECT_FALSE(ch.tick({4, 5}).crash_receiver);
  ch.send(Dir::kReceiverToSender, 0);
  EXPECT_TRUE(ch.tick({5, 5}).crash_receiver);  // sends hit 3
  EXPECT_EQ(ch.stats().crashes_requested, 2u);
}

TEST(ChaosChannel, ResetRearmsThePlan) {
  auto ch = make_del_chaos("drop @step 1 dir SR count 0 match *\n");
  ch.send(Dir::kSenderToReceiver, 1);
  ch.tick({1, 0});
  EXPECT_EQ(ch.stats().copies_dropped, 1u);
  ch.reset();
  EXPECT_EQ(ch.stats().copies_dropped, 0u);
  ch.send(Dir::kSenderToReceiver, 2);
  ch.tick({1, 0});  // the same action fires again after reset
  EXPECT_EQ(ch.stats().copies_dropped, 1u);
  EXPECT_TRUE(ch.deliverable(Dir::kSenderToReceiver).empty());
}

}  // namespace
}  // namespace stpx::fault

// ===================================================== engine-level =======

namespace stpx::stp {
namespace {

using sim::Dir;

/// A sender that never sends anything: the canonical livelocked system.
class MuteSender final : public sim::ISender {
 public:
  void start(const seq::Sequence&) override {}
  sim::SenderEffect on_step() override { return {}; }
  void on_deliver(sim::MsgId) override {}
  int alphabet_size() const override { return 1; }
  std::unique_ptr<sim::ISender> clone() const override {
    return std::make_unique<MuteSender>(*this);
  }
  std::string name() const override { return "mute-sender"; }
};

SystemSpec repfree_del_spec(int m, std::uint64_t max_steps = 100000) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = max_steps;
  return spec;
}

SystemSpec stenning_spec(int m) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_stenning(m); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  return spec;
}

seq::Sequence iota(int n) {
  seq::Sequence x;
  for (int i = 0; i < n; ++i) x.push_back(i);
  return x;
}

// ---------------------------------------------------------------- watchdog --

TEST(Watchdog, ConvertsLivelockIntoStalledVerdict) {
  SystemSpec spec;
  spec.protocols = [] {
    proto::ProtocolPair pair = proto::make_repfree_del(3);
    pair.sender = std::make_unique<MuteSender>();
    return pair;
  };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  spec.engine.stall_window = 500;

  const auto r = run_one(spec, {0, 1, 2}, 1);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStalled);
  EXPECT_TRUE(r.stalled);
  EXPECT_TRUE(r.safety_ok);
  // The watchdog fired at its window, not at budget exhaustion.
  EXPECT_LT(r.stats.steps, 1000u);
}

TEST(Watchdog, SilentWhenProgressContinues) {
  auto spec = repfree_del_spec(8);
  spec.engine.stall_window = 2000;
  const auto r = run_one(spec, iota(8), 3);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_FALSE(r.stalled);
}

TEST(Watchdog, DisabledByDefault) {
  SystemSpec spec = repfree_del_spec(3, /*max_steps=*/800);
  spec.protocols = [] {
    proto::ProtocolPair pair = proto::make_repfree_del(3);
    pair.sender = std::make_unique<MuteSender>();
    return pair;
  };
  const auto r = run_one(spec, {0, 1, 2}, 1);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kBudgetExhausted);
  EXPECT_EQ(r.stats.steps, 800u);
}

// ----------------------------------------------------------- crash-restart --

TEST(CrashRestart, StenningSenderSurvivesAmnesia) {
  // The sender restarts from item 0; stale seqnos are ignored and the
  // cumulative ack fast-forwards it to the frontier.  The tape stays a
  // prefix of X throughout and the transfer completes.
  auto spec = stenning_spec(6);
  spec.engine.stall_window = 5000;
  const auto plan = fault::plan_from_text("crash-sender @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_EQ(r.stats.crashes[0], 1u);
  EXPECT_EQ(r.stats.crashes[1], 0u);
}

TEST(CrashRestart, StenningSurvivesRepeatedSenderCrashes) {
  auto spec = stenning_spec(8);
  spec.engine.stall_window = 5000;
  const auto plan = fault::plan_from_text(
      "crash-sender @writes 1\n"
      "crash-sender @writes 3\n"
      "crash-sender @writes 5\n");
  const auto r = run_one(with_chaos(spec, plan), iota(8), 4);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(r.stats.crashes[0], 3u);
}

TEST(CrashRestart, StenningReceiverAmnesiaIsSafeButStalls) {
  // The receiver forgets how much it wrote; safety holds (it never writes a
  // wrong item) but progress is gone for good — the watchdog reports it.
  auto spec = stenning_spec(6);
  spec.engine.stall_window = 3000;
  const auto plan = fault::plan_from_text("crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStalled);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(seq::is_prefix(r.output, r.input));
  EXPECT_EQ(r.stats.crashes[1], 1u);
}

TEST(CrashRestart, RepFreeSenderAmnesiaLivelocksNotViolates) {
  // After a sender restart the repfree sender rewinds to item 0, which the
  // receiver correctly ignores forever: a livelock, never a wrong write.
  auto spec = repfree_del_spec(6);
  spec.engine.stall_window = 3000;
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  const auto plan = fault::plan_from_text("crash-sender @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 1);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStalled);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(seq::is_prefix(r.output, r.input));
  EXPECT_EQ(r.stats.crashes[0], 1u);
}

TEST(CrashRestart, RepFreeReceiverAmnesiaViolatesSafety) {
  // Duplicate the first data message so stale copies of an already-written
  // item linger in flight, then crash the receiver: with `seen_` gone, a
  // stale copy is re-written — the output tape stops being a prefix of X.
  // This is the amnesia hazard the paper's model (which has no crash fault)
  // never needed to defend against.
  auto spec = repfree_del_spec(6);
  spec.engine.stall_window = 4000;
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  const auto plan = fault::plan_from_text(
      "dup @step 1 dir SR count 6 match *\n"
      "crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 1);
  // The bad write comes after the crash, so the structured verdict blames
  // the (absent) recovery layer rather than the steady-state protocol.
  EXPECT_EQ(r.verdict, sim::RunVerdict::kRecoveryViolation);
  EXPECT_FALSE(r.safety_ok);
  EXPECT_FALSE(seq::is_prefix(r.output, r.input));
}

TEST(CrashRestart, BothProcessesCrashingSameTickRecoverWithStores) {
  // Crash storm: sender and receiver both restart at the same write count.
  // With stable stores attached, both rehydrate and the transfer completes.
  auto spec = stenning_spec(6);
  spec.engine.stall_window = 5000;
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = fault::plan_from_text(
      "crash-sender @writes 2\n"
      "crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(r.stats.crashes[0], 1u);
  EXPECT_EQ(r.stats.crashes[1], 1u);
  EXPECT_EQ(r.stats.recoveries, 2u);
}

TEST(CrashRestart, BackToBackReceiverRestartsStayDurable) {
  // Restart the receiver at every other write: each recovery must pick up
  // exactly where the previous incarnation left off.
  auto spec = stenning_spec(8);
  spec.engine.stall_window = 5000;
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = fault::plan_from_text(
      "crash-receiver @writes 2\n"
      "crash-receiver @writes 3\n"
      "crash-receiver @writes 4\n"
      "crash-receiver @writes 6\n");
  const auto r = run_one(with_chaos(spec, plan), iota(8), 4);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(r.stats.crashes[1], 4u);
  EXPECT_EQ(r.stats.recoveries, 4u);
}

// ------------------------------------------ FaultExperiment.max_steps -----

TEST(FaultExperiment, MaxStepsOverrideCapsTheRun) {
  const seq::Sequence x = iota(6);
  // Inherited budget: plenty; the run completes.
  const auto full = measure_fault_recovery(repfree_del_spec(6), x,
                                           {.fault_after_writes = 2}, 7);
  EXPECT_TRUE(full.fault_injected);
  EXPECT_TRUE(full.completed);
  // Tight override: the same run cannot finish inside 40 steps.
  const auto capped = measure_fault_recovery(
      repfree_del_spec(6), x, {.fault_after_writes = 2, .max_steps = 40}, 7);
  EXPECT_FALSE(capped.completed);
}

}  // namespace
}  // namespace stpx::stp
