// Conformance suite for the wire observability stack (ctest -L
// trace_smoke):
//
//   * TraceEvent JSONL codec — golden lines pinned in BOTH directions
//     (emit must match the pinned string, the pinned string must parse to
//     the identical event), plus malformed-line rejection;
//   * FlightRecorder — bounded rings with explicit drop-newest accounting,
//     drain-consumes semantics, k-way merged time order, multi-threaded
//     stress with a concurrent drainer (the TSan stage runs this);
//   * trace sinks — JSONL stream round-trip and Chrome-trace export
//     structural validity;
//   * analysis::TracePipeline — every standard analyzer exercised on
//     synthetic streams, including attestor violation cases;
//   * integration — a real mux run with recorders attached: the drained
//     trace re-derives the acceptance verdict (prefix attestor), survives
//     an archive round-trip with an identical TraceReport, and the
//     injected corrupt frame shows up both as a per-reason reject counter
//     and as a trace event; capped at the 1000-session acceptance run,
//     attested from the trace alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/trace_pipeline.hpp"
#include "fault/plan.hpp"
#include "net/flight_recorder.hpp"
#include "net/frame.hpp"
#include "net/loopback.hpp"
#include "net/mux.hpp"
#include "net/service.hpp"
#include "net/trace_event.hpp"
#include "net/trace_sinks.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "proto/suite.hpp"

namespace stpx {
namespace {

using namespace std::chrono_literals;
using net::TraceEvent;
using net::TraceEventKind;

constexpr int kDomain = 8;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

TraceEvent make_ev(TraceEventKind kind, std::uint64_t ts,
                   std::uint32_t session = 0, std::int64_t msg = 0,
                   std::uint8_t detail = 0,
                   sim::Dir dir = sim::Dir::kSenderToReceiver) {
  TraceEvent ev;
  ev.kind = kind;
  ev.ts_us = ts;
  ev.session = session;
  ev.msg = msg;
  ev.detail = detail;
  ev.dir = dir;
  return ev;
}

// --------------------------------------------------------------------------
// JSONL codec: golden lines, both directions.
// --------------------------------------------------------------------------

struct GoldenCase {
  TraceEvent ev;
  const char* line;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  {
    auto ev = make_ev(TraceEventKind::kFrameSent, 12, 7, 5,
                      static_cast<std::uint8_t>(net::FrameKind::kData));
    ev.seq = 3;
    cases.push_back({ev,
                     "{\"ts\":12,\"seq\":3,\"ev\":\"frame-sent\",\"session\""
                     ":7,\"kind\":\"data\",\"dir\":\"S->R\",\"msg\":5}"});
  }
  {
    auto ev = make_ev(TraceEventKind::kFrameReceived, 34, 7, -1,
                      static_cast<std::uint8_t>(net::FrameKind::kFin),
                      sim::Dir::kReceiverToSender);
    cases.push_back({ev,
                     "{\"ts\":34,\"seq\":0,\"ev\":\"frame-received\","
                     "\"session\":7,\"kind\":\"fin\",\"dir\":\"R->S\","
                     "\"msg\":-1}"});
  }
  {
    auto ev = make_ev(
        TraceEventKind::kFrameRejected, 56, 0, 0,
        static_cast<std::uint8_t>(net::RejectReason::kBadChecksum));
    cases.push_back({ev,
                     "{\"ts\":56,\"seq\":0,\"ev\":\"frame-rejected\","
                     "\"why\":\"bad-checksum\"}"});
  }
  cases.push_back({make_ev(TraceEventKind::kFrameShed, 78, 9),
                   "{\"ts\":78,\"seq\":0,\"ev\":\"frame-shed\","
                   "\"session\":9}"});
  cases.push_back({make_ev(TraceEventKind::kItem, 90, 4, 2),
                   "{\"ts\":90,\"seq\":0,\"ev\":\"item\",\"session\":4,"
                   "\"index\":2}"});
  cases.push_back(
      {make_ev(TraceEventKind::kSessionState, 101, 4, 0,
               static_cast<std::uint8_t>(net::SessionState::kCompleted)),
       "{\"ts\":101,\"seq\":0,\"ev\":\"session-state\",\"session\":4,"
       "\"state\":\"completed\"}"});
  cases.push_back(
      {make_ev(TraceEventKind::kRehydrate, 115, 6, 2,
               static_cast<std::uint8_t>(net::SessionState::kActive)),
       "{\"ts\":115,\"seq\":0,\"ev\":\"rehydrate\",\"session\":6,"
       "\"position\":2,\"state\":\"active\"}"});
  {
    auto ev = make_ev(TraceEventKind::kCheckpointFlush, 130, 1, 17);
    ev.aux = 42;
    cases.push_back({ev,
                     "{\"ts\":130,\"seq\":0,\"ev\":\"checkpoint-flush\","
                     "\"shard\":1,\"records\":17,\"dur_us\":42}"});
  }
  // Fabric heartbeat echo — note: all cases above have backend == 0 and
  // pin the pre-fabric line shape byte-identically (no "backend" key).
  cases.push_back({make_ev(TraceEventKind::kProbeAnswered, 140, 0, -7),
                   "{\"ts\":140,\"seq\":0,\"ev\":\"probe-answered\","
                   "\"nonce\":-7}"});
  // A nonzero backend id is appended as the trailing key, on any kind.
  {
    auto ev = make_ev(TraceEventKind::kItem, 150, 4, 2);
    ev.backend = 3;
    cases.push_back({ev,
                     "{\"ts\":150,\"seq\":0,\"ev\":\"item\",\"session\":4,"
                     "\"index\":2,\"backend\":3}"});
  }
  {
    auto ev = make_ev(TraceEventKind::kProbeAnswered, 160, 0, 9);
    ev.backend = 2;
    cases.push_back({ev,
                     "{\"ts\":160,\"seq\":0,\"ev\":\"probe-answered\","
                     "\"nonce\":9,\"backend\":2}"});
  }
  return cases;
}

TEST(TraceEventCodec, GoldenEmit) {
  for (const auto& c : golden_cases()) {
    EXPECT_EQ(net::to_jsonl(c.ev), c.line);
    EXPECT_TRUE(obs::json_valid(c.line));
  }
}

TEST(TraceEventCodec, GoldenParse) {
  for (const auto& c : golden_cases()) {
    const auto parsed = net::parse_jsonl(c.line);
    ASSERT_TRUE(parsed.has_value()) << c.line;
    EXPECT_EQ(*parsed, c.ev) << c.line;
  }
}

TEST(TraceEventCodec, RoundTripSweep) {
  for (const auto& c : golden_cases()) {
    const auto parsed = net::parse_jsonl(net::to_jsonl(c.ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c.ev);
  }
}

TEST(TraceEventCodec, RejectsMalformed) {
  const char* bad[] = {
      "",
      "not json",
      "{\"ts\":1,\"seq\":0}",                                   // no ev
      "{\"ts\":1,\"seq\":0,\"ev\":\"no-such-kind\"}",           // bad kind
      "{\"ts\":-1,\"seq\":0,\"ev\":\"frame-shed\",\"session\":1}",
      "{\"ts\":1,\"seq\":0,\"ev\":\"frame-shed\"}",             // no session
      "{\"ts\":1,\"seq\":0,\"ev\":\"item\",\"session\":1}",     // no index
      "{\"ts\":1,\"seq\":0,\"ev\":\"frame-rejected\",\"why\":\"nope\"}",
      "{\"ts\":1,\"seq\":0,\"ev\":\"session-state\",\"session\":1,"
      "\"state\":\"half-done\"}",
      "{\"ts\":1,\"seq\":0,\"ev\":\"frame-sent\",\"session\":1,"
      "\"kind\":\"data\",\"dir\":\"up\",\"msg\":0}",
      "{\"ts\":x,\"seq\":0,\"ev\":\"frame-shed\",\"session\":1}",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(net::parse_jsonl(line).has_value()) << line;
  }
}

// --------------------------------------------------------------------------
// FlightRecorder semantics.
// --------------------------------------------------------------------------

TEST(FlightRecorder, RecordsAndDrainsInOrder) {
  net::FlightRecorderConfig cfg;
  cfg.shards = 2;
  net::FlightRecorder rec(cfg);
  for (std::size_t i = 0; i < 10; ++i) rec.on_item(1, i);
  rec.on_session_state(1, net::SessionState::kCompleted);

  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 11u);
  for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
    EXPECT_LE(evs[i].ts_us, evs[i + 1].ts_us);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(evs[i].kind, TraceEventKind::kItem);
    EXPECT_EQ(evs[i].msg, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(evs[10].kind, TraceEventKind::kSessionState);

  const auto st = rec.stats();
  EXPECT_EQ(st.recorded, 11u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_TRUE(rec.drain().empty());  // drain consumes
}

TEST(FlightRecorder, DrainThenRecordAgain) {
  net::FlightRecorder rec;
  rec.on_item(1, 0);
  EXPECT_EQ(rec.drain().size(), 1u);
  rec.on_item(1, 1);
  rec.on_item(1, 2);
  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].msg, 1);
  EXPECT_EQ(evs[1].msg, 2);
}

TEST(FlightRecorder, FullRingDropsNewestAndAccounts) {
  net::FlightRecorderConfig cfg;
  cfg.shards = 1;
  cfg.ring_capacity = 8;  // already a power of two, min is 8
  net::FlightRecorder rec(cfg);
  ASSERT_EQ(rec.ring_capacity(), 8u);

  for (std::size_t i = 0; i < 20; ++i) rec.on_item(1, i);
  const auto st = rec.stats();
  EXPECT_EQ(st.recorded, 8u);
  EXPECT_EQ(st.dropped, 12u);
  ASSERT_EQ(st.dropped_per_shard.size(), 1u);
  EXPECT_EQ(st.dropped_per_shard[0], 12u);

  // Drop-newest: the survivors are the FIRST 8, and their per-shard seq
  // runs 0..7 (the 12 dropped events advanced seq past the window, so a
  // later record would show the hole).
  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(evs[i].msg, static_cast<std::int64_t>(i));
    EXPECT_EQ(evs[i].seq, i);
  }

  // The ring is drained: recording resumes, with the seq hole visible.
  rec.on_item(1, 99);
  const auto more = rec.drain();
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].seq, 20u);

  obs::MetricsRegistry reg;
  rec.publish_metrics(reg);
  EXPECT_EQ(reg.counter_value("net.trace.recorded"), 9u);
  EXPECT_EQ(reg.counter_value("net.trace.dropped"), 12u);
}

TEST(FlightRecorder, StampsItsBackendIdIntoEveryEvent) {
  net::FlightRecorderConfig cfg;
  cfg.backend_id = 5;
  net::FlightRecorder rec(cfg);
  rec.on_item(1, 0);
  rec.on_probe_answered(42);
  rec.on_session_state(1, net::SessionState::kCompleted);
  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 3u);
  for (const auto& ev : evs) EXPECT_EQ(ev.backend, 5u);
  // The heartbeat echo carries its nonce through to JSONL.
  EXPECT_EQ(evs[1].kind, TraceEventKind::kProbeAnswered);
  EXPECT_EQ(evs[1].msg, 42);
  EXPECT_NE(net::to_jsonl(evs[1]).find("\"nonce\":42"), std::string::npos);
  EXPECT_NE(net::to_jsonl(evs[1]).find("\"backend\":5"), std::string::npos);
}

TEST(FlightRecorder, EpochOffsetAnchorsRecordersOnAMachineWideClock) {
  // Two recorders born in sequence: the later one's epoch offset is never
  // smaller (CLOCK_MONOTONIC is machine-wide), which is what lets
  // per-backend streams be rebased onto one time axis after a merge.
  net::FlightRecorder first;
  net::FlightRecorder second;
  EXPECT_GE(second.epoch_offset_us(), first.epoch_offset_us());
  first.on_item(1, 0);
  const auto evs = first.drain();
  ASSERT_EQ(evs.size(), 1u);
  // Event timestamps are relative to the recorder's own epoch.
  EXPECT_LT(evs[0].ts_us, 60'000'000u);
}

TEST(FlightRecorder, ConcurrentProducersAndDrainerLoseNothing) {
  net::FlightRecorderConfig cfg;
  cfg.shards = 2;  // fewer shards than producers: rings are shared
  cfg.ring_capacity = 1 << 10;
  net::FlightRecorder rec(cfg);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10000;
  std::vector<TraceEvent> drained;
  {
    std::atomic<bool> done{false};
    std::jthread drainer([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto batch = rec.drain();
        drained.insert(drained.end(), batch.begin(), batch.end());
        std::this_thread::sleep_for(100us);
      }
      auto tail = rec.drain();
      drained.insert(drained.end(), tail.begin(), tail.end());
    });
    {
      std::vector<std::jthread> producers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        producers.emplace_back([&rec, t] {
          for (std::size_t i = 0; i < kPerThread; ++i) {
            rec.on_item(static_cast<std::uint32_t>(t), i);
          }
        });
      }
    }
    done.store(true, std::memory_order_release);
  }

  const auto st = rec.stats();
  EXPECT_EQ(st.recorded + st.dropped, kThreads * kPerThread);
  EXPECT_EQ(drained.size(), st.recorded);

  // Per (session == producer) the surviving indices are strictly
  // increasing — drops leave holes, never reorderings.
  std::size_t next_index[kThreads];
  std::fill(std::begin(next_index), std::end(next_index), 0);
  for (const auto& ev : drained) {
    ASSERT_LT(ev.session, kThreads);
    EXPECT_GE(static_cast<std::size_t>(ev.msg), next_index[ev.session]);
    next_index[ev.session] = static_cast<std::size_t>(ev.msg) + 1;
  }
}

TEST(FlightRecorder, ToTraceSpansRebasesAndClamps) {
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<net::WireWindow> windows;
  windows.push_back({"blackout S->R", epoch + 100us, epoch + 300us});
  windows.push_back({"before epoch", epoch - 200us, epoch - 100us});
  windows.push_back({"straddles", epoch - 50us, epoch + 50us});

  const auto spans = net::to_trace_spans(windows, epoch);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "blackout S->R");
  EXPECT_EQ(spans[0].begin_us, 100u);
  EXPECT_EQ(spans[0].end_us, 300u);
  EXPECT_EQ(spans[1].name, "straddles");
  EXPECT_EQ(spans[1].begin_us, 0u);  // clamped
  EXPECT_EQ(spans[1].end_us, 50u);
}

// --------------------------------------------------------------------------
// Sinks.
// --------------------------------------------------------------------------

TEST(TraceSinks, JsonlStreamRoundTrip) {
  std::vector<TraceEvent> evs;
  for (const auto& c : golden_cases()) evs.push_back(c.ev);

  std::ostringstream os;
  net::write_trace_jsonl(os, evs);
  std::istringstream is(os.str());
  const auto back = net::read_trace_jsonl(is);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, evs);
}

TEST(TraceSinks, JsonlReadRejectsCorruptArchive) {
  std::istringstream is(
      "{\"ts\":1,\"seq\":0,\"ev\":\"item\",\"session\":1,\"index\":0}\n"
      "garbage\n");
  EXPECT_FALSE(net::read_trace_jsonl(is).has_value());
}

TEST(TraceSinks, ChromeTraceExportIsValidJson) {
  std::vector<TraceEvent> evs;
  for (const auto& c : golden_cases()) evs.push_back(c.ev);
  std::vector<net::TraceSpan> windows;
  windows.push_back({"blackout S->R", 10, 60});
  windows.push_back({"freeze R->S", 20, 40});  // overlaps -> second lane

  std::ostringstream os;
  net::write_wire_chrome_trace(os, evs, windows);
  const std::string doc = os.str();
  EXPECT_TRUE(obs::json_valid(doc));
  EXPECT_NE(doc.find("\"session 7\""), std::string::npos);
  EXPECT_NE(doc.find("\"rejects\""), std::string::npos);
  EXPECT_NE(doc.find("\"flush shard 1\""), std::string::npos);
  EXPECT_NE(doc.find("\"faults\""), std::string::npos);
  EXPECT_NE(doc.find("faults (overflow lane)"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
}

// --------------------------------------------------------------------------
// TracePipeline analyzers on synthetic streams.
// --------------------------------------------------------------------------

TEST(TracePipeline, AckRttPairsSendWithNextInbound) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kFrameSent, 100, 1, 0,
                        static_cast<std::uint8_t>(net::FrameKind::kData)));
  // A retransmission of the same pending send must not reset the clock.
  evs.push_back(make_ev(TraceEventKind::kFrameSent, 150, 1, 0,
                        static_cast<std::uint8_t>(net::FrameKind::kData)));
  evs.push_back(make_ev(TraceEventKind::kFrameReceived, 400, 1, 0,
                        static_cast<std::uint8_t>(net::FrameKind::kData),
                        sim::Dir::kReceiverToSender));

  analysis::TracePipeline p;
  p.add(analysis::make_ack_rtt_analyzer());
  const auto rep = p.run(evs, {});
  EXPECT_EQ(rep.value("ack_rtt.count"), 1);
  EXPECT_EQ(rep.value("ack_rtt.p50_us"), 300);
}

TEST(TracePipeline, ItemLatencyMeasuresPerSessionGaps) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kItem, 100, 1, 0));
  evs.push_back(make_ev(TraceEventKind::kItem, 160, 1, 1));
  evs.push_back(make_ev(TraceEventKind::kItem, 200, 2, 0));  // other session
  evs.push_back(make_ev(TraceEventKind::kItem, 260, 1, 2));

  analysis::TracePipeline p;
  p.add(analysis::make_item_latency_analyzer());
  const auto rep = p.run(evs, {});
  EXPECT_EQ(rep.value("item_latency.count"), 2);  // 60 and 100, session 1
  EXPECT_EQ(rep.value("item_latency.p99_us"), 100);
}

TEST(TracePipeline, GoodputCountsRetransmissions) {
  std::vector<TraceEvent> evs;
  for (int i = 0; i < 4; ++i) {
    evs.push_back(
        make_ev(TraceEventKind::kFrameSent, 100 + i * 10, 1, i % 2,
                static_cast<std::uint8_t>(net::FrameKind::kData)));
  }
  evs.push_back(make_ev(TraceEventKind::kItem, 150, 1, 0));
  evs.push_back(make_ev(TraceEventKind::kItem, 200, 1, 1));

  analysis::TracePipeline p;
  p.add(analysis::make_goodput_analyzer());
  const auto rep = p.run(evs, {});
  EXPECT_EQ(rep.value("goodput.items"), 2);
  EXPECT_EQ(rep.value("goodput.data_frames"), 4);
  EXPECT_EQ(rep.value("goodput.retx_permille"), 500);
  EXPECT_EQ(rep.value("goodput.duration_us"), 100);
}

TEST(TracePipeline, PrefixAttestorAcceptsCleanTrace) {
  std::vector<TraceEvent> evs;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::int64_t i = 0; i < 3; ++i) {
      evs.push_back(
          make_ev(TraceEventKind::kItem, 100 + s * 10 + i * 100, s, i));
    }
    evs.push_back(
        make_ev(TraceEventKind::kSessionState, 500 + s, s, 0,
                static_cast<std::uint8_t>(net::SessionState::kCompleted)));
  }
  analysis::TraceContext ctx;
  ctx.expected_items[0] = 3;
  ctx.expected_items[1] = 3;

  analysis::TracePipeline p;
  p.add(analysis::make_prefix_attestor());
  const auto rep = p.run(evs, ctx);
  EXPECT_EQ(rep.value("prefix.ok"), 1);
  EXPECT_EQ(rep.value("prefix.sessions"), 2);
  EXPECT_EQ(rep.value("prefix.completed"), 2);
  EXPECT_TRUE(rep.ok);
}

TEST(TracePipeline, PrefixAttestorFlagsOutOfOrderItem) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kItem, 100, 1, 0));
  evs.push_back(make_ev(TraceEventKind::kItem, 200, 1, 2));  // skipped 1

  analysis::TracePipeline p;
  p.add(analysis::make_prefix_attestor());
  const auto rep = p.run(evs, {});
  EXPECT_EQ(rep.value("prefix.ok"), 0);
  EXPECT_EQ(rep.value("prefix.item_violations"), 1);
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.notes.count("prefix.first_violation"), 1u);
  EXPECT_NE(rep.notes.at("prefix.first_violation").find("session 1"),
            std::string::npos);
}

TEST(TracePipeline, PrefixAttestorFlagsIncompleteSession) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kItem, 100, 1, 0));
  analysis::TraceContext ctx;
  ctx.expected_items[1] = 2;  // never completed

  analysis::TracePipeline p;
  p.add(analysis::make_prefix_attestor());
  const auto rep = p.run(evs, ctx);
  EXPECT_EQ(rep.value("prefix.ok"), 0);
  EXPECT_EQ(rep.value("prefix.incomplete"), 1);
}

TEST(TracePipeline, PrefixAttestorHonorsRehydrationPosition) {
  // A crash-restart resumes session 1 at position 2: indices 0 and 1 were
  // accepted pre-crash and never reappear in this trace.
  std::vector<TraceEvent> evs;
  evs.push_back(
      make_ev(TraceEventKind::kRehydrate, 50, 1, 2,
              static_cast<std::uint8_t>(net::SessionState::kActive)));
  evs.push_back(make_ev(TraceEventKind::kItem, 100, 1, 2));
  evs.push_back(
      make_ev(TraceEventKind::kSessionState, 200, 1, 0,
              static_cast<std::uint8_t>(net::SessionState::kCompleted)));
  analysis::TraceContext ctx;
  ctx.expected_items[1] = 3;

  analysis::TracePipeline p;
  p.add(analysis::make_prefix_attestor());
  const auto rep = p.run(evs, ctx);
  EXPECT_EQ(rep.value("prefix.ok"), 1);
}

TEST(TracePipeline, FaultCorrelatorAttributesLossToWindows) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kFrameShed, 150, 1));    // inside
  evs.push_back(make_ev(TraceEventKind::kFrameShed, 500, 1));    // outside
  evs.push_back(make_ev(
      TraceEventKind::kFrameRejected, 160, 0, 0,
      static_cast<std::uint8_t>(net::RejectReason::kBadChecksum)));
  evs.push_back(make_ev(TraceEventKind::kFrameSent, 170, 1, 0,
                        static_cast<std::uint8_t>(net::FrameKind::kData)));
  evs.push_back(make_ev(TraceEventKind::kFrameSent, 600, 1, 1,
                        static_cast<std::uint8_t>(net::FrameKind::kData)));
  analysis::TraceContext ctx;
  ctx.fault_windows.push_back({"blackout S->R", 100, 200});

  analysis::TracePipeline p;
  p.add(analysis::make_fault_correlator());
  const auto rep = p.run(evs, ctx);
  EXPECT_EQ(rep.value("faultcorr.windows"), 1);
  EXPECT_EQ(rep.value("faultcorr.covered_us"), 100);
  EXPECT_EQ(rep.value("faultcorr.sheds_in_window"), 1);
  EXPECT_EQ(rep.value("faultcorr.sheds_outside"), 1);
  EXPECT_EQ(rep.value("faultcorr.rejects_in_window"), 1);
  EXPECT_EQ(rep.value("faultcorr.rejects_outside"), 0);
  EXPECT_EQ(rep.value("faultcorr.sends_in_window"), 1);
}

TEST(TracePipeline, StallDetectorMeasuresGapsAndLivelock) {
  std::vector<TraceEvent> evs;
  evs.push_back(make_ev(TraceEventKind::kItem, 100, 1, 0));
  // A long silent gap, then frames churn with no further items.
  for (int i = 0; i < 5; ++i) {
    evs.push_back(
        make_ev(TraceEventKind::kFrameSent, 300'000 + i * 10, 1, 1,
                static_cast<std::uint8_t>(net::FrameKind::kData)));
  }
  analysis::TraceContext ctx;
  ctx.expected_items[1] = 2;  // incomplete: item 1 never accepted

  analysis::TracePipeline p;
  p.add(analysis::make_stall_detector(/*stall_threshold_us=*/100'000,
                                      /*livelock_frames=*/5));
  const auto rep = p.run(evs, ctx);
  EXPECT_EQ(rep.value("stall.max_gap_us"), 299'900);
  EXPECT_EQ(rep.value("stall.gaps_over_threshold"), 1);
  EXPECT_EQ(rep.value("stall.trailing_frames"), 5);
  EXPECT_EQ(rep.value("stall.livelock"), 1);
  EXPECT_FALSE(rep.ok);

  // The same trace with every session completed is keepalive churn, not
  // livelock.
  analysis::TracePipeline p2;
  p2.add(analysis::make_stall_detector(100'000, 5));
  const auto rep2 = p2.run(evs, {});
  EXPECT_EQ(rep2.value("stall.livelock"), 0);
  EXPECT_TRUE(rep2.ok);
}

TEST(TracePipeline, RehydrationLatencyToFirstItem) {
  std::vector<TraceEvent> evs;
  evs.push_back(
      make_ev(TraceEventKind::kRehydrate, 100, 1, 2,
              static_cast<std::uint8_t>(net::SessionState::kActive)));
  evs.push_back(make_ev(TraceEventKind::kItem, 350, 1, 2));
  evs.push_back(make_ev(TraceEventKind::kItem, 500, 1, 3));  // not a sample
  evs.push_back(
      make_ev(TraceEventKind::kRehydrate, 600, 2, 0,
              static_cast<std::uint8_t>(net::SessionState::kActive)));

  analysis::TracePipeline p;
  p.add(analysis::make_rehydration_analyzer());
  const auto rep = p.run(evs, {});
  EXPECT_EQ(rep.value("rehydrate.rehydrations"), 2);
  EXPECT_EQ(rep.value("rehydrate.latency.count"), 1);
  EXPECT_EQ(rep.value("rehydrate.latency.p50_us"), 250);
}

TEST(TracePipeline, ReportJsonAndMetricsPublish) {
  analysis::TraceReport rep;
  rep.values["prefix.ok"] = 1;
  rep.values["goodput.items"] = 42;
  rep.notes["prefix.first_violation"] = "none";
  EXPECT_TRUE(obs::json_valid(rep.to_json()));
  EXPECT_NE(rep.to_json().find("\"goodput.items\":42"), std::string::npos);

  obs::MetricsRegistry reg;
  analysis::publish_trace_report(rep, reg);
  EXPECT_EQ(reg.gauges().at("trace.prefix.ok").value(), 1);
  EXPECT_EQ(reg.gauges().at("trace.goodput.items").value(), 42);
  EXPECT_EQ(reg.gauges().at("trace.ok").value(), 1);

  analysis::TraceReport same = rep;
  EXPECT_EQ(same, rep);
  same.values["goodput.items"] = 41;
  EXPECT_NE(same, rep);
}

TEST(TracePipeline, StandardPipelineHasAllSevenAnalyzers) {
  EXPECT_EQ(analysis::make_standard_pipeline().size(), 7u);
}

// --------------------------------------------------------------------------
// Integration: recorder on a live mux; archive round-trip; acceptance.
// --------------------------------------------------------------------------

struct TracedRun {
  std::size_t sessions;
  std::vector<TraceEvent> server_events;
  analysis::TraceContext ctx;
  obs::MetricsRegistry server_metrics;
  bool drained_in_time = false;
  std::size_t completed = 0;
};

/// n sessions over a lossy reordering link with a FlightRecorder on the
/// server mux, drained periodically.  Injects one checksum-corrupted frame
/// so the reject path is part of every traced run.
TracedRun traced_run(std::size_t n, std::size_t len) {
  net::LoopbackConfig wire_cfg;
  fault::FaultPlan plan = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kSenderToReceiver, 9, 1,
      500'000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 11, 1,
                                       500'000);
  plan.actions.insert(plan.actions.end(), rs.actions.begin(),
                      rs.actions.end());
  wire_cfg.plan = plan;
  wire_cfg.reorder_window = 4;
  wire_cfg.seed = 0xACCE55;
  wire_cfg.max_queue = 16384;
  auto wire = net::make_loopback(wire_cfg);

  net::FlightRecorder recorder;
  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.inbox_limit = 64;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = 500us;
  net::MuxConfig server_cfg = cfg;
  server_cfg.probe = &recorder;

  net::StpClient client(wire.a.get(), cfg);
  net::StpServer server(wire.b.get(), server_cfg);
  TracedRun run;
  run.sessions = n;
  for (std::uint32_t id = 0; id < n; ++id) {
    auto pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, len);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
    run.ctx.expected_items[id] = len;
  }

  // One corrupt frame onto the S->R link: the server pump must reject it
  // (bad-checksum) and the trace must show it.
  {
    net::Frame f;
    f.session = 0;
    f.msg = 0;
    auto bytes = net::encode(f);
    bytes[net::kFrameSize - 1] ^= 0xFF;
    wire.a->send(bytes);
  }

  {
    std::jthread drainer([&](std::stop_token stop) {
      while (!stop.stop_requested()) {
        auto batch = recorder.drain();
        run.server_events.insert(run.server_events.end(), batch.begin(),
                                 batch.end());
        std::this_thread::sleep_for(2ms);
      }
    });
    run.drained_in_time = net::run_service_pair(client, server, 120s);
  }
  auto tail = recorder.drain();
  run.server_events.insert(run.server_events.end(), tail.begin(),
                           tail.end());
  std::stable_sort(run.server_events.begin(), run.server_events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  EXPECT_EQ(recorder.stats().dropped, 0u);

  run.ctx.fault_windows =
      net::to_trace_spans(wire.fault_windows(), recorder.epoch());
  for (const auto& r : server.mux().reports()) {
    if (r.state == net::SessionState::kCompleted && r.items == len) {
      ++run.completed;
    }
  }
  server.mux().publish_metrics(run.server_metrics);
  recorder.publish_metrics(run.server_metrics);
  return run;
}

TEST(TraceIntegration, MuxRunAttestsAndCountsRejects) {
  const auto run = traced_run(8, 3);
  ASSERT_TRUE(run.drained_in_time);
  ASSERT_EQ(run.completed, 8u);

  // The injected corrupt frame: per-reason counter and trace event agree.
  EXPECT_EQ(run.server_metrics.counter_value("net.rejects.bad-checksum"),
            1u);
  EXPECT_EQ(run.server_metrics.counter_value("net.rejects.bad-magic"), 0u);
  EXPECT_EQ(run.server_metrics.counters().count("net.sheds"), 1u);
  const auto rejected = std::count_if(
      run.server_events.begin(), run.server_events.end(),
      [](const TraceEvent& ev) {
        return ev.kind == TraceEventKind::kFrameRejected &&
               static_cast<net::RejectReason>(ev.detail) ==
                   net::RejectReason::kBadChecksum;
      });
  EXPECT_EQ(rejected, 1);

  // The trace alone re-derives the acceptance verdict.
  auto rep = analysis::make_standard_pipeline().run(run.server_events,
                                                    run.ctx);
  EXPECT_EQ(rep.value("prefix.ok"), 1);
  EXPECT_EQ(rep.value("prefix.completed"), 8);
  EXPECT_EQ(rep.value("goodput.items"), 24);
  EXPECT_GT(rep.value("goodput.data_frames"), 0);
  EXPECT_TRUE(rep.ok);
}

TEST(TraceIntegration, ArchiveRoundTripYieldsIdenticalReport) {
  const auto run = traced_run(4, 3);
  ASSERT_TRUE(run.drained_in_time);

  const auto live = analysis::make_standard_pipeline().run(
      run.server_events, run.ctx);

  std::ostringstream archive;
  net::write_trace_jsonl(archive, run.server_events);
  std::istringstream is(archive.str());
  const auto parsed = net::read_trace_jsonl(is);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(*parsed, run.server_events);

  const auto offline =
      analysis::make_standard_pipeline().run(*parsed, run.ctx);
  EXPECT_EQ(offline, live);

  // And the same stream exports as a loadable Chrome trace.
  std::ostringstream chrome;
  net::write_wire_chrome_trace(chrome, *parsed, run.ctx.fault_windows);
  EXPECT_TRUE(obs::json_valid(chrome.str()));
}

TEST(TraceAcceptance, ThousandSessionVerdictFromTraceAlone) {
  const auto run = traced_run(1000, 3);
  ASSERT_TRUE(run.drained_in_time);
  EXPECT_EQ(run.completed, 1000u);

  const auto rep = analysis::make_standard_pipeline().run(
      run.server_events, run.ctx);
  EXPECT_EQ(rep.value("prefix.ok"), 1) << rep.to_json();
  EXPECT_EQ(rep.value("prefix.sessions"), 1000);
  EXPECT_EQ(rep.value("prefix.completed"), 1000);
  EXPECT_EQ(rep.value("prefix.item_violations"), 0);
  EXPECT_EQ(rep.value("goodput.items"), 3000);
  EXPECT_EQ(rep.value("stall.livelock"), 0);
  EXPECT_TRUE(rep.ok);
}

}  // namespace
}  // namespace stpx
