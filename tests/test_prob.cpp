// Tests for the probabilistic extension (§6 future work): tagged protocols
// carrying arbitrary sequences with small error probability.
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "prob/random_tag.hpp"
#include "sim/engine.hpp"
#include "util/expect.hpp"

namespace stpx::prob {
namespace {

sim::RunResult run_pair(proto::ProtocolPair pair,
                        std::unique_ptr<sim::IChannel> ch,
                        std::uint64_t sched_seed, const seq::Sequence& x,
                        std::uint64_t max_steps = 200000) {
  sim::EngineConfig cfg;
  cfg.max_steps = max_steps;
  sim::Engine e(std::move(pair.sender), std::move(pair.receiver),
                std::move(ch),
                std::make_unique<channel::FairRandomScheduler>(sched_seed),
                cfg);
  return e.run(x);
}

TEST(Tagged, CarriesRepeatedItemsOnDupChannel) {
  // <0 0 0> is far outside the repetition-free family; with enough tag bits
  // it goes through (tags distinct with high probability).
  const seq::Sequence x{0, 0, 0, 1, 1, 0};
  const auto r = run_pair(make_tagged_dup(2, 10, TagPolicy::kRandom, 7),
                          std::make_unique<channel::DupChannel>(), 11, x);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.output, x);
}

TEST(Tagged, CarriesRepeatedItemsOnDelChannelWithLoss) {
  const seq::Sequence x{2, 2, 1, 0, 0, 0, 2, 1};
  for (std::uint64_t seed : {31ULL, 32ULL}) {
    const auto r = run_pair(
        make_tagged_del(3, 10, TagPolicy::kRandom, seed),
        std::make_unique<channel::DelChannel>(0.3, seed), seed, x, 400000);
    ASSERT_TRUE(r.safety_ok && r.completed) << "seed=" << seed;
  }
}

TEST(Tagged, WordReflectsTagsAndItems) {
  TaggedSender sender(3, 4, TagPolicy::kRoundRobin, 0, false);
  sender.start({1, 2, 1});
  ASSERT_EQ(sender.word().size(), 3u);
  // Round-robin tags: 0, 1, 2 -> msgs 0*3+1, 1*3+2, 2*3+1.
  EXPECT_EQ(sender.word()[0], 1);
  EXPECT_EQ(sender.word()[1], 5);
  EXPECT_EQ(sender.word()[2], 7);
}

TEST(Tagged, ZeroTagBitsDegeneratesToRepFree) {
  // k = 0: one tag, so only repetition-free inputs survive — a repeated
  // item collides with itself deterministically.
  const seq::Sequence ok{0, 1, 2};
  const auto good = run_pair(make_tagged_dup(3, 0, TagPolicy::kRandom, 1),
                             std::make_unique<channel::DupChannel>(), 3, ok);
  EXPECT_TRUE(good.safety_ok && good.completed);

  const seq::Sequence bad{0, 0};
  const auto broken =
      run_pair(make_tagged_dup(3, 0, TagPolicy::kRandom, 1),
               std::make_unique<channel::DupChannel>(), 3, bad, 20000);
  EXPECT_FALSE(broken.completed);  // second 0 is indistinguishable
}

TEST(Tagged, RoundRobinFailsDeterministicallyAtWrapDistance) {
  // Items equal at distance exactly 2^k share (tag, item): guaranteed
  // failure — the ablation showing randomization buys worst-case smoothing.
  const int k = 2;  // 4 tags
  seq::Sequence x(9, seq::DataItem{0});  // same item everywhere; 9 > 2^k
  const auto r = run_pair(make_tagged_dup(2, k, TagPolicy::kRoundRobin, 1),
                          std::make_unique<channel::DupChannel>(), 5, x,
                          30000);
  EXPECT_FALSE(r.completed && r.safety_ok);

  // Random tags with plenty of bits succeed on the same input w.h.p.
  const auto rnd = run_pair(make_tagged_dup(2, 12, TagPolicy::kRandom, 2),
                            std::make_unique<channel::DupChannel>(), 5, x);
  EXPECT_TRUE(rnd.completed && rnd.safety_ok);
}

TEST(Tagged, ErrorRateDecaysWithTagBits) {
  // Empirical birthday curve: transfer failure rate over random inputs
  // falls as k grows.  (Failure = safety violation or non-completion.)
  const int d = 2;
  const std::size_t L = 16;
  Rng input_rng(101);
  auto failure_rate = [&](int k) {
    int failures = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      seq::Sequence x(L);
      for (auto& v : x) v = static_cast<seq::DataItem>(input_rng.below(d));
      const auto r = run_pair(
          make_tagged_dup(d, k, TagPolicy::kRandom,
                          static_cast<std::uint64_t>(t) + 1),
          std::make_unique<channel::DupChannel>(),
          static_cast<std::uint64_t>(t) + 1000, x, 60000);
      if (!r.safety_ok || !r.completed) ++failures;
    }
    return static_cast<double>(failures) / trials;
  };
  const double at_3 = failure_rate(3);
  const double at_8 = failure_rate(8);
  // Expected rates ~ (equal-item pairs)/2^k: near-certain at k = 3 for 16
  // positions over a binary domain, ~0.2 at k = 8.
  EXPECT_GT(at_3, 0.5);
  EXPECT_LT(at_8, 0.45);
  EXPECT_LT(at_8, at_3);
}

TEST(Tagged, UnionBoundFormula) {
  EXPECT_DOUBLE_EQ(collision_upper_bound(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(collision_upper_bound(16, 4), 120.0 / 16.0);
  EXPECT_LT(collision_upper_bound(16, 12), 0.03);
}

TEST(Tagged, ValidatesParameters) {
  EXPECT_THROW(TaggedSender(0, 4, TagPolicy::kRandom, 1, false),
               ContractError);
  EXPECT_THROW(TaggedSender(2, 30, TagPolicy::kRandom, 1, false),
               ContractError);
  EXPECT_THROW(TaggedReceiver(2, -1, false), ContractError);
}

TEST(Tagged, SeedsAreReproducible) {
  TaggedSender a(3, 8, TagPolicy::kRandom, 42, false);
  TaggedSender b(3, 8, TagPolicy::kRandom, 42, false);
  a.start({0, 1, 0, 2});
  b.start({0, 1, 0, 2});
  EXPECT_EQ(a.word(), b.word());
}

}  // namespace
}  // namespace stpx::prob
