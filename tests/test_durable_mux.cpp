// Durable-session conformance suite for the wire layer
// (ctest -L durable_mux_smoke):
//
//   * session manifest records — codec round-trip, malformed rejection,
//     protocol fingerprints, newest-per-session folding by (epoch, seq)
//     regardless of byte order, and drain-path compaction;
//   * store replay + FileStore fsync batching — group commit, the
//     sync_every_n / sync_interval knobs, and torn-write recovery after a
//     batched tail loss;
//   * endpoint save/restore — sender and receiver adapters, the
//     non-prefix-tape canary, unusable-blob cold starts;
//   * SessionMux rehydration — graceful drain (flush + compaction) vs the
//     crash-shaped kill(), restart racing a FIN, the storage-fault matrix
//     biting the session log (detected and healed by bounded
//     retransmission, never silent corruption), kRecoveryViolation kept
//     distinct end-to-end (poisoned manifest; completion record destroyed
//     by a tail fault while the peer is gone); and the acceptance run:
//     kill + restart a server holding >= 1000 active sessions mid-traffic
//     under loss + reorder, every manifested session rehydrated with
//     per-session prefix attestation across both server generations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.hpp"
#include "net/loopback.hpp"
#include "net/mux.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "proto/session_adapter.hpp"
#include "proto/suite.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "util/expect.hpp"

namespace stpx {
namespace {

using namespace std::chrono_literals;

constexpr int kDomain = 8;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

/// Stenning data frame id for (index, item).
sim::MsgId data_id(std::size_t index, seq::DataItem item) {
  return static_cast<sim::MsgId>(index) * kDomain + item;
}

// --------------------------------------------------------------------------
// Manifest codec
// --------------------------------------------------------------------------

store::SessionManifest sample_manifest() {
  store::SessionManifest m;
  m.session = 0xCAFE;
  m.is_sender = false;
  m.epoch = 3;
  m.seq = 41;
  m.proto_tag = store::proto_tag_of("stenning-receiver");
  m.position = 7;
  m.completed = true;
  m.endpoint_state = "202 1 3 0 1 2 4 102 3";
  return m;
}

TEST(SessionManifest, PayloadRoundTrip) {
  const auto m = sample_manifest();
  const auto back = store::SessionManifest::from_payload(m.to_payload());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session, m.session);
  EXPECT_EQ(back->is_sender, m.is_sender);
  EXPECT_EQ(back->epoch, m.epoch);
  EXPECT_EQ(back->seq, m.seq);
  EXPECT_EQ(back->proto_tag, m.proto_tag);
  EXPECT_EQ(back->position, m.position);
  EXPECT_EQ(back->completed, m.completed);
  EXPECT_EQ(back->endpoint_state, m.endpoint_state);
}

TEST(SessionManifest, EmptyEndpointStateRoundTrips) {
  store::SessionManifest m;
  m.session = 1;
  const auto back = store::SessionManifest::from_payload(m.to_payload());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->endpoint_state.empty());
}

TEST(SessionManifest, RejectsMalformedPayloads) {
  EXPECT_FALSE(store::SessionManifest::from_payload("").has_value());
  EXPECT_FALSE(store::SessionManifest::from_payload("junk").has_value());
  // A raw engine checkpoint / protocol blob is not a manifest (wrong tag).
  EXPECT_FALSE(store::SessionManifest::from_payload("101 3 0 1 2").has_value());
  const std::string good = sample_manifest().to_payload();
  // Truncations never parse.
  for (std::size_t cut = 0; cut < good.size(); cut += 3) {
    EXPECT_FALSE(
        store::SessionManifest::from_payload(good.substr(0, cut)).has_value())
        << "cut=" << cut;
  }
  // Trailing garbage never parses (r.done() is part of the contract).
  EXPECT_FALSE(store::SessionManifest::from_payload(good + " 9").has_value());
}

TEST(SessionManifest, NewerThanOrdersByEpochThenSeq) {
  store::SessionManifest a, b;
  a.epoch = 1;
  a.seq = 50;
  b.epoch = 2;
  b.seq = 1;
  EXPECT_TRUE(b.newer_than(a));   // epoch dominates seq
  EXPECT_FALSE(a.newer_than(b));
  b.epoch = 1;
  EXPECT_TRUE(a.newer_than(b));   // same epoch: seq decides
  EXPECT_FALSE(a.newer_than(a));  // irreflexive
}

TEST(SessionManifest, ProtoTagFingerprintsTheName) {
  const auto t1 = store::proto_tag_of("stenning-receiver");
  EXPECT_EQ(t1, store::proto_tag_of("stenning-receiver"));
  EXPECT_NE(t1, store::proto_tag_of("stenning-sender"));
  EXPECT_NE(t1, store::proto_tag_of("abp-receiver"));
}

// --------------------------------------------------------------------------
// Session log scan + compaction
// --------------------------------------------------------------------------

store::SessionManifest tiny_manifest(std::uint32_t session, std::uint64_t epoch,
                                     std::uint64_t seq, std::uint64_t position,
                                     bool completed = false) {
  store::SessionManifest m;
  m.session = session;
  m.epoch = epoch;
  m.seq = seq;
  m.proto_tag = store::proto_tag_of("stenning-receiver");
  m.position = position;
  m.completed = completed;
  return m;
}

TEST(SessionLogScan, FoldsNewestPerSessionNotByteOrder) {
  store::MemStore st;
  st.reset();
  // Byte order deliberately disagrees with (epoch, seq) order — the
  // stale-snapshot hazard: old records can reappear behind newer ones.
  st.append(tiny_manifest(1, 1, 5, 3).to_payload());
  st.append(tiny_manifest(2, 2, 1, 4).to_payload());
  st.append(tiny_manifest(1, 1, 2, 1).to_payload());  // stale: seq 2 < 5
  st.append(tiny_manifest(2, 1, 9, 2).to_payload());  // stale: epoch 1 < 2
  st.append("42 7");                                  // foreign payload
  const auto scan = store::scan_session_logs({&st});
  EXPECT_EQ(scan.records_scanned, 4u);
  EXPECT_EQ(scan.records_skipped, 1u);  // the foreign payload
  EXPECT_EQ(scan.max_epoch, 2u);
  ASSERT_EQ(scan.newest.size(), 2u);
  EXPECT_EQ(scan.newest.at(1).position, 3u);
  EXPECT_EQ(scan.newest.at(2).position, 4u);
}

TEST(SessionLogScan, MergesAcrossStoresAndCountsDamage) {
  store::MemStore a, b;
  a.reset();
  b.reset();
  a.append(tiny_manifest(1, 1, 1, 1).to_payload());
  b.append(tiny_manifest(1, 1, 2, 2).to_payload());  // newer, other store
  b.append(tiny_manifest(3, 1, 3, 5).to_payload());
  b.fault_corrupt_record();  // newest record of b damaged
  const auto scan = store::scan_session_logs({&a, &b});
  EXPECT_GE(scan.records_skipped, 1u);
  ASSERT_EQ(scan.newest.size(), 1u);
  EXPECT_EQ(scan.newest.at(1).position, 2u);
}

TEST(SessionLogScan, StaleSnapshotResurrectionIsBenign) {
  // StoreImage::compact keeps the newest record, so exercise the fault on
  // a single-session log: after the rollback the pre-compaction records
  // reappear, and the (epoch, seq) fold still lands on the newest state.
  store::MemStore st;
  st.reset();
  st.append(tiny_manifest(9, 1, 1, 1).to_payload());
  st.append(tiny_manifest(9, 1, 2, 2).to_payload());
  st.compact();
  st.append(tiny_manifest(9, 1, 3, 3).to_payload());
  st.fault_stale_snapshot();
  const auto scan = store::scan_session_logs({&st});
  ASSERT_EQ(scan.newest.size(), 1u);
  EXPECT_EQ(scan.newest.at(9).position, 3u);
  EXPECT_GE(scan.records_scanned, 2u);
}

TEST(SessionLogCompact, KeepsExactlyNewestPerSession) {
  store::MemStore st;
  st.reset();
  for (std::uint64_t s = 1; s <= 6; ++s) {
    st.append(tiny_manifest(1, 1, s, s).to_payload());
    st.append(tiny_manifest(2, 1, s + 10, s).to_payload());
  }
  const std::uint64_t dropped = store::compact_session_log(st);
  EXPECT_EQ(dropped, 10u);
  const auto replayed = st.replay();
  EXPECT_EQ(replayed.payloads.size(), 2u);
  const auto scan = store::scan_session_logs({&st});
  ASSERT_EQ(scan.newest.size(), 2u);
  EXPECT_EQ(scan.newest.at(1).position, 6u);
  EXPECT_EQ(scan.newest.at(2).position, 6u);
}

// --------------------------------------------------------------------------
// Store replay + FileStore fsync batching
// --------------------------------------------------------------------------

TEST(StoreReplay, OldestFirstAndDamageCounted) {
  store::MemStore st;
  st.reset();
  st.append("10");
  st.append("20");
  st.append("30");
  auto rep = st.replay();
  ASSERT_EQ(rep.payloads.size(), 3u);
  EXPECT_EQ(rep.payloads[0], "10");
  EXPECT_EQ(rep.payloads[2], "30");
  st.fault_corrupt_record();
  rep = st.replay();
  EXPECT_EQ(rep.payloads.size(), 2u);
  EXPECT_GE(rep.records_skipped, 1u);
}

TEST(StoreReplay, DefaultAppendBatchMatchesLoopedAppends) {
  store::MemStore st;
  st.reset();
  st.append_batch({"1", "2", "3"});
  EXPECT_EQ(st.appends(), 3u);
  const auto rep = st.replay();
  ASSERT_EQ(rep.payloads.size(), 3u);
  EXPECT_EQ(rep.payloads[1], "2");
}

TEST(FileStoreBatching, SyncEveryNBuffersUntilThreshold) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_fs_batch").string();
  store::FileStoreConfig cfg;
  cfg.sync_every_n = 4;
  {
    store::FileStore s(dir, cfg);
    s.reset();
    s.append("1");
    s.append("2");
    s.append("3");
    EXPECT_EQ(s.syncs(), 0u);
    EXPECT_EQ(s.pending_records(), 3u);
    // Another store on the same directory models the crash: only synced
    // bytes survive, and nothing has been synced yet.
    EXPECT_FALSE(store::FileStore(dir).recover().found);
    s.append("4");  // threshold: the whole batch lands with one sync
    EXPECT_EQ(s.syncs(), 1u);
    EXPECT_EQ(s.pending_records(), 0u);
  }
  store::FileStore b(dir);
  const auto rec = b.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "4");
  EXPECT_EQ(b.replay().payloads.size(), 4u);
  std::filesystem::remove_all(dir);
}

TEST(FileStoreBatching, AppendBatchIsOneSync) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_fs_group").string();
  store::FileStoreConfig cfg;
  cfg.sync_every_n = 1000;  // batching would otherwise hold everything
  store::FileStore s(dir, cfg);
  s.reset();
  s.append_batch({"1", "2", "3", "4", "5"});
  EXPECT_EQ(s.syncs(), 1u);
  EXPECT_EQ(s.pending_records(), 0u);
  EXPECT_EQ(store::FileStore(dir).replay().payloads.size(), 5u);
  std::filesystem::remove_all(dir);
}

TEST(FileStoreBatching, SyncIntervalFlushesByTime) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_fs_timer").string();
  store::FileStoreConfig cfg;
  cfg.sync_every_n = 1000;
  cfg.sync_interval = 5ms;
  store::FileStore s(dir, cfg);
  s.reset();
  s.append("1");
  std::this_thread::sleep_for(10ms);
  s.append("2");  // the elapsed interval trips the flush
  EXPECT_GE(s.syncs(), 1u);
  EXPECT_EQ(s.pending_records(), 0u);
  std::filesystem::remove_all(dir);
}

// Satellite: torn-write recovery still resyncs after a batched tail loss.
// The dying process flushed a batch whose last record was torn mid-write
// AND had further appends buffered in memory; recovery must land on the
// newest intact record, count the damage, and the reopened log must keep
// working past the torn bytes.
TEST(FileStoreBatching, TornWriteRecoveryAfterBatchedTailLoss) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_fs_torn").string();
  store::FileStoreConfig cfg;
  cfg.sync_every_n = 4;
  {
    store::FileStore s(dir, cfg);
    s.reset();
    s.append("1");
    s.append("2");
    s.append("3");
    s.fault_torn_next_append();
    s.append("4");  // torn record rides the batch to disk (one sync)
    EXPECT_EQ(s.syncs(), 1u);
    s.append("5");  // buffered…
    s.append("6");  // …and lost with the process image
    EXPECT_EQ(s.pending_records(), 2u);
  }
  store::FileStore b(dir);
  auto rec = b.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "3");  // newest intact record before the torn tail
  EXPECT_GE(rec.records_skipped, 1u);
  // The log is still appendable: a new record past the damaged region is
  // found by the re-sync scan.
  b.append("7");
  store::FileStore c(dir);
  rec = c.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "7");
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------------------
// Endpoint save/restore
// --------------------------------------------------------------------------

/// Drive a fresh Stenning receiver endpoint `progress` items into `x`.
std::unique_ptr<proto::ReceiverSessionEndpoint> driven_receiver(
    const seq::Sequence& x, std::size_t progress) {
  auto pair = proto::make_stenning(kDomain);
  auto ep = std::make_unique<proto::ReceiverSessionEndpoint>(
      std::move(pair.receiver), x);
  for (std::size_t i = 0; i < progress; ++i) {
    ep->on_deliver(data_id(i, x[i]));
    (void)ep->step();
  }
  STPX_EXPECT(ep->items_done() == progress, "driven_receiver: bad progress");
  return ep;
}

TEST(EndpointDurability, ReceiverSaveRestoreResumesMidTransfer) {
  const auto x = seq_for(3, 6);
  auto ep = driven_receiver(x, 4);
  const std::string blob = ep->save_state();

  auto fresh = proto::make_stenning(kDomain);
  proto::ReceiverSessionEndpoint back(std::move(fresh.receiver), x);
  ASSERT_TRUE(back.restore_state(blob));
  EXPECT_TRUE(back.safety_ok());
  EXPECT_EQ(back.items_done(), 4u);
  // Retransmits below the frontier are ignored; the next item lands.
  back.on_deliver(data_id(2, x[2]));
  (void)back.step();
  EXPECT_EQ(back.items_done(), 4u);
  back.on_deliver(data_id(4, x[4]));
  (void)back.step();
  EXPECT_EQ(back.items_done(), 5u);
  back.on_deliver(data_id(5, x[5]));
  (void)back.step();
  EXPECT_TRUE(back.done());
}

TEST(EndpointDurability, SenderSaveRestoreKeepsFinState) {
  const auto x = seq_for(1, 4);
  auto pair = proto::make_stenning(kDomain);
  proto::SenderSessionEndpoint ep(std::move(pair.sender), x);
  ep.finish();
  const std::string blob = ep.save_state();

  auto fresh = proto::make_stenning(kDomain);
  proto::SenderSessionEndpoint back(std::move(fresh.sender), x);
  ASSERT_TRUE(back.restore_state(blob));
  EXPECT_TRUE(back.done());
  EXPECT_EQ(back.items_done(), x.size());
}

TEST(EndpointDurability, NonPrefixTapeIsARecoveryCanary) {
  const auto x = seq_for(3, 6);
  const std::string blob = driven_receiver(x, 3)->save_state();
  // Restore against a DIFFERENT expected sequence: the durable tape is no
  // longer a prefix — restored, and provably broken.
  seq::Sequence other(6, static_cast<seq::DataItem>(7));
  auto fresh = proto::make_stenning(kDomain);
  proto::ReceiverSessionEndpoint back(std::move(fresh.receiver), other);
  ASSERT_TRUE(back.restore_state(blob));
  EXPECT_FALSE(back.safety_ok());
  // Broken endpoints go silent, they never write.
  back.on_deliver(data_id(0, other[0]));
  EXPECT_FALSE(back.step().has_value());
  EXPECT_EQ(back.items_done(), 3u);  // the tape is evidence, kept as-is
}

TEST(EndpointDurability, UnusableBlobColdStartsWithEmptyTape) {
  const auto x = seq_for(2, 4);
  auto fresh = proto::make_stenning(kDomain);
  proto::ReceiverSessionEndpoint back(std::move(fresh.receiver), x);
  EXPECT_FALSE(back.restore_state("999 junk"));
  EXPECT_TRUE(back.safety_ok());
  EXPECT_EQ(back.items_done(), 0u);
  // Cold means genuinely cold: delivery restarts from the front.
  back.on_deliver(data_id(0, x[0]));
  (void)back.step();
  EXPECT_EQ(back.items_done(), 1u);
}

// --------------------------------------------------------------------------
// Rehydration harness
// --------------------------------------------------------------------------

/// Prefix attestation + kill-window tracking + rehydrate seeding: on_item
/// must arrive exactly in ascending per-session order, where a rehydrated
/// session's order resumes from its restored position (on_rehydrate seeds
/// the expectation) — superseded checkpoints re-earn items, they never
/// skip or repeat one within a server generation.
class DurableProbe final : public net::INetProbe {
 public:
  explicit DurableProbe(std::size_t max_sessions)
      : next_(max_sessions), restored_(max_sessions) {
    for (auto& a : next_) a.store(0, std::memory_order_relaxed);
    for (auto& a : restored_) a.store(0, std::memory_order_relaxed);
  }

  void on_item(std::uint32_t session, std::size_t index) override {
    ++items_;
    const std::size_t want =
        next_[session].fetch_add(1, std::memory_order_relaxed);
    if (index != want) out_of_order_ = true;
  }
  void on_session_state(std::uint32_t, net::SessionState s) override {
    if (s == net::SessionState::kCompleted) ++completed_;
    if (s == net::SessionState::kSafetyViolation) ++violations_;
    if (s == net::SessionState::kRecoveryViolation) ++recovery_violations_;
  }
  void on_rehydrate(std::uint32_t session, std::size_t position,
                    net::SessionState) override {
    ++rehydrated_;
    next_[session].store(position, std::memory_order_relaxed);
    restored_[session].store(position, std::memory_order_relaxed);
  }

  /// Smallest per-session progress across the first `n` sessions.
  std::size_t min_progress(std::size_t n) const {
    std::size_t lo = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min(lo, next_[i].load(std::memory_order_relaxed));
    }
    return lo;
  }
  std::size_t progress(std::size_t i) const {
    return next_[i].load(std::memory_order_relaxed);
  }
  std::size_t restored(std::size_t i) const {
    return restored_[i].load(std::memory_order_relaxed);
  }

  std::uint64_t items() const { return items_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t recovery_violations() const { return recovery_violations_; }
  std::uint64_t rehydrated() const { return rehydrated_; }
  bool out_of_order() const { return out_of_order_; }

 private:
  std::vector<std::atomic<std::size_t>> next_;
  std::vector<std::atomic<std::size_t>> restored_;
  std::atomic<std::uint64_t> items_{0}, completed_{0}, violations_{0},
      recovery_violations_{0}, rehydrated_{0};
  std::atomic<bool> out_of_order_{false};
};

net::StpServer::ReceiverFactory stenning_receiver_factory() {
  return [](std::uint32_t,
            std::uint64_t tag) -> std::unique_ptr<sim::IReceiver> {
    if (tag != store::proto_tag_of("stenning-receiver")) return nullptr;
    return proto::make_stenning(kDomain).receiver;
  };
}

/// Build a receiver manifest by actually driving an endpoint — the blob
/// is the real save_state(), not a synthetic one.
store::SessionManifest receiver_manifest(std::uint32_t id,
                                         const seq::Sequence& x,
                                         std::size_t progress,
                                         std::uint64_t seq_no) {
  auto ep = driven_receiver(x, progress);
  store::SessionManifest m;
  m.session = id;
  m.epoch = 1;
  m.seq = seq_no;
  m.proto_tag = store::proto_tag_of(ep->name());
  m.position = ep->items_done();
  m.completed = ep->done();
  m.endpoint_state = ep->save_state();
  return m;
}

/// One client + durable server over a scripted loopback wire, with the
/// plumbing a kill/restart drill needs.  Client senders arm the dup-ack
/// go-back so a durably-rewound receiver (storage-fault tail loss) heals
/// by bounded retransmission instead of wedging the stop-and-wait pair.
struct RestartRig {
  std::size_t n = 0;
  std::size_t len = 0;
  net::LoopbackPair wire;
  store::MemStore st0, st1;
  std::unique_ptr<DurableProbe> probe1, probe2;
  std::unique_ptr<net::StpClient> client;
  std::unique_ptr<net::StpServer> server;   // generation 1
  std::unique_ptr<net::StpServer> server2;  // generation 2

  net::MuxConfig base_cfg() const {
    net::MuxConfig cfg;
    cfg.workers = 2;
    cfg.steps_per_sweep = 2;
    cfg.max_inflight = 8;
    cfg.keepalive_sweeps = 4;
    cfg.sweep_interval = 400us;
    return cfg;
  }

  void start(std::size_t sessions, std::size_t seq_len,
             net::LoopbackConfig wire_cfg) {
    n = sessions;
    len = seq_len;
    wire = net::make_loopback(wire_cfg);
    st0.reset();
    st1.reset();
    probe1 = std::make_unique<DurableProbe>(n);
    probe2 = std::make_unique<DurableProbe>(n);

    client = std::make_unique<net::StpClient>(wire.a.get(), base_cfg());
    net::MuxConfig scfg = base_cfg();
    scfg.probe = probe1.get();
    scfg.session_stores = {&st0, &st1};
    server = std::make_unique<net::StpServer>(wire.b.get(), scfg);
    for (std::uint32_t id = 0; id < n; ++id) {
      auto pair = proto::make_stenning(kDomain, /*sender_ack_rewind=*/true);
      const auto x = seq_for(id, len);
      client->add_session(id, std::move(pair.sender), x);
      server->add_session(id, std::move(pair.receiver), x);
    }
    client->mux().start();
    server->mux().start();
  }

  /// Wait for the kill window: every session made progress (>= 1 item, so
  /// every session is manifested) and — by construction, equal-length
  /// near-lockstep sequences — none is anywhere near completing.
  bool wait_kill_window(std::chrono::seconds timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (probe1->min_progress(n) >= 1) return true;
      std::this_thread::sleep_for(1ms);
    }
    return false;
  }

  /// Crash-shaped kill of generation 1; the client keeps running against
  /// a dead endpoint (frames pile into the bounded wire queue == loss).
  void kill_server() { server->mux().kill(); }

  /// Construct generation 2 on the same transport endpoint and stores and
  /// re-admit every manifested session.
  net::RehydrateReport restart(std::uint64_t idle_violation_sweeps = 0) {
    net::MuxConfig scfg = base_cfg();
    scfg.probe = probe2.get();
    scfg.session_stores = {&st0, &st1};
    scfg.rehydrate_idle_violation_sweeps = idle_violation_sweeps;
    server2 = std::make_unique<net::StpServer>(wire.b.get(), scfg);
    return server2->rehydrate(stenning_receiver_factory(),
                              [this](std::uint32_t id) {
                                return seq_for(id, len);
                              });
  }

  /// Storage amnesia fallback: a session whose EVERY manifest record was
  /// destroyed is no longer manifested — rehydrate() cannot conjure it.
  /// The operator knows the expected session set and re-adds the missing
  /// ones cold; the wire heals by full retransmission from the front.
  /// Returns how many sessions needed the cold re-add.
  std::size_t cold_add_missing() {
    std::vector<bool> present(n, false);
    for (const auto& r : server2->mux().reports()) present[r.id] = true;
    std::size_t added = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (present[id]) continue;
      auto pair = proto::make_stenning(kDomain);
      server2->add_session(id, std::move(pair.receiver), seq_for(id, len));
      ++added;
    }
    return added;
  }

  /// Start generation 2 and drain both ends to terminal.
  bool finish(std::chrono::seconds timeout) {
    server2->mux().start();
    const bool c = client->mux().drain(timeout);
    const bool s = server2->mux().drain(timeout);
    server2->mux().stop();
    client->mux().stop();
    return c && s;
  }
};

void expect_all_completed(const net::SessionMux& mux, std::size_t n,
                          std::size_t seq_len, bool expect_rehydrated) {
  const auto reports = mux.reports();
  ASSERT_EQ(reports.size(), n);
  for (const auto& r : reports) {
    EXPECT_EQ(r.state, net::SessionState::kCompleted) << "session " << r.id;
    EXPECT_EQ(r.items, seq_len) << "session " << r.id;
    if (expect_rehydrated) {
      EXPECT_TRUE(r.rehydrated) << "session " << r.id;
    }
  }
}

// --------------------------------------------------------------------------
// Drain vs crash-shaped shutdown (satellite)
// --------------------------------------------------------------------------

TEST(DurableMux, DrainFlushesCompactsAndRehydratesCompleted) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kLen = 4;
  store::MemStore st;
  st.reset();
  auto wire = net::make_loopback();

  net::MuxConfig cfg;
  cfg.sweep_interval = 200us;
  net::StpClient client(wire.a.get(), cfg);
  net::MuxConfig scfg = cfg;
  scfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), scfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto pair = proto::make_stenning(kDomain, true);
    const auto x = seq_for(id, kLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
  }
  // run_service_pair drains (arming the final flush) then stops: the
  // graceful path must leave a fully-flushed, compacted log.
  ASSERT_TRUE(net::run_service_pair(client, server, 20s));

  const auto replayed = st.replay();
  EXPECT_EQ(replayed.payloads.size(), kSessions);  // compacted: one each
  EXPECT_EQ(replayed.records_skipped, 0u);
  for (const auto& p : replayed.payloads) {
    const auto m = store::SessionManifest::from_payload(p);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->completed);
    EXPECT_EQ(m->position, kLen);
  }

  const auto ss = server.mux().stats();
  EXPECT_GT(ss.checkpoint_flushes, 0u);
  EXPECT_GT(ss.checkpoint_records, 0u);
  EXPECT_GT(ss.checkpoint_bytes, 0u);
  obs::MetricsRegistry reg;
  server.mux().publish_metrics(reg);
  EXPECT_GT(reg.counter_value("net.checkpoint_flushes"), 0u);
  EXPECT_GT(reg.counter_value("net.checkpoint_bytes"), 0u);
  EXPECT_EQ(reg.counter_value("net.rehydrated_sessions"), 0u);

  // A new generation rehydrates every session straight into kCompleted.
  DurableProbe probe(kSessions);
  net::MuxConfig s2cfg = scfg;
  s2cfg.probe = &probe;
  net::StpServer gen2(wire.b.get(), s2cfg);
  const auto rep = gen2.rehydrate(
      stenning_receiver_factory(),
      [](std::uint32_t id) { return seq_for(id, kLen); });
  EXPECT_EQ(rep.sessions, kSessions);
  EXPECT_EQ(rep.completed, kSessions);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.cold_restores, 0u);
  EXPECT_EQ(rep.restore_latency_us.size(), kSessions);
  EXPECT_EQ(probe.rehydrated(), kSessions);
  EXPECT_EQ(gen2.mux().stats().rehydrated_sessions, kSessions);
  expect_all_completed(gen2.mux(), kSessions, kLen, /*expect_rehydrated=*/true);

  obs::MetricsRegistry reg2;
  gen2.mux().publish_metrics(reg2);
  EXPECT_EQ(reg2.counter_value("net.rehydrated_sessions"), kSessions);
  EXPECT_EQ(reg2.counter_value("net.verdict.recovery-violation"), 0u);
}

TEST(DurableMux, BareStopWithoutDrainLeavesACleanlyRehydratableLog) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kLen = 4;
  store::MemStore st;
  st.reset();
  auto wire = net::make_loopback();

  net::MuxConfig cfg;
  cfg.sweep_interval = 200us;
  net::StpClient client(wire.a.get(), cfg);
  net::MuxConfig scfg = cfg;
  scfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), scfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto pair = proto::make_stenning(kDomain, true);
    const auto x = seq_for(id, kLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
  }
  client.mux().start();
  server.mux().start();
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (!(client.mux().all_terminal() && server.mux().all_terminal()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(server.mux().all_terminal());
  // Bare stop: no drain() first, so no forced flush and no compaction.
  server.mux().stop();
  client.mux().stop();

  // The log kept every incremental record (nothing folded it)…
  EXPECT_GT(st.replay().payloads.size(), kSessions);
  // …and still rehydrates cleanly: cadence flushes already covered every
  // state movement, including the completions.
  net::StpServer gen2(wire.b.get(), scfg);
  const auto rep = gen2.rehydrate(
      stenning_receiver_factory(),
      [](std::uint32_t id) { return seq_for(id, kLen); });
  EXPECT_EQ(rep.sessions, kSessions);
  EXPECT_EQ(rep.completed, kSessions);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.records_skipped, 0u);
}

// --------------------------------------------------------------------------
// Kill + restart mid-traffic
// --------------------------------------------------------------------------

net::LoopbackConfig lossy_wire(std::uint64_t seed) {
  net::LoopbackConfig wire;
  fault::FaultPlan plan = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kSenderToReceiver, 7, 1,
      300'000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 9, 1,
                                       300'000);
  plan.actions.insert(plan.actions.end(), rs.actions.begin(),
                      rs.actions.end());
  wire.plan = plan;
  wire.reorder_window = 3;
  wire.seed = seed;
  wire.max_queue = 8192;
  return wire;
}

TEST(DurableMux, KillRestartMidTrafficRehydratesAndCompletes) {
  constexpr std::size_t kSessions = 32;
  constexpr std::size_t kLen = 8;
  RestartRig rig;
  rig.start(kSessions, kLen, lossy_wire(0xD0D0));
  ASSERT_TRUE(rig.wait_kill_window(60s));
  rig.kill_server();
  ASSERT_EQ(rig.server->mux().stats().sessions_completed, 0u);

  const auto rep = rig.restart();
  EXPECT_EQ(rep.sessions, kSessions);  // every session was manifested
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.cold_restores, 0u);
  EXPECT_EQ(rep.declined, 0u);
  // Ack gating: no released ack can outrun the durable position, so every
  // restored position covers at least the progress the probe witnessed
  // being checkpointed — and the peer only ever saw covered acks, making
  // the rewind invisible.  Weak but universal check: positions restored.
  std::size_t restored_total = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    restored_total += rig.probe2->restored(i);
  }
  EXPECT_GE(restored_total, kSessions);  // >= 1 item durable per session

  ASSERT_TRUE(rig.finish(90s));
  expect_all_completed(rig.server2->mux(), kSessions, kLen, true);
  expect_all_completed(rig.client->mux(), kSessions, kLen, false);
  EXPECT_FALSE(rig.probe2->out_of_order());
  EXPECT_EQ(rig.probe2->violations(), 0u);
  EXPECT_EQ(rig.probe2->recovery_violations(), 0u);
  EXPECT_EQ(rig.probe2->rehydrated(), kSessions);
  const auto ss = rig.server2->mux().stats();
  EXPECT_EQ(ss.rehydrated_sessions, kSessions);
  EXPECT_EQ(ss.sessions_completed, kSessions);
  EXPECT_EQ(ss.sessions_violated, 0u);
  EXPECT_EQ(ss.sessions_recovery_violated, 0u);
  EXPECT_GT(ss.checkpoint_flushes, 0u);
  EXPECT_GT(ss.checkpoint_bytes, 0u);
}

// Satellite: restart racing a FIN.  The receiver completed and its FIN
// was sent but never acknowledged — the kill happens with the client
// still waiting.  The completed manifest must rehydrate into a session
// that answers the client's retransmits with re-FINs, not a stuck pair.
TEST(DurableMux, RestartRacingFinHealsViaReFin) {
  const std::uint32_t kId = 3;
  const auto x = seq_for(kId, 4);
  store::MemStore st;
  st.reset();
  auto m = receiver_manifest(kId, x, x.size(), /*seq_no=*/1);
  ASSERT_TRUE(m.completed);
  st.append(m.to_payload());

  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.sweep_interval = 200us;
  cfg.keepalive_sweeps = 4;
  net::StpClient client(wire.a.get(), cfg);
  auto pair = proto::make_stenning(kDomain, true);
  client.add_session(kId, std::move(pair.sender), x);  // FIN never arrived

  net::MuxConfig scfg = cfg;
  scfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), scfg);
  const auto rep = server.rehydrate(stenning_receiver_factory(),
                                    [&](std::uint32_t) { return x; });
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.completed, 1u);

  ASSERT_TRUE(net::run_service_pair(client, server, 20s));
  const auto creports = client.mux().reports();
  ASSERT_EQ(creports.size(), 1u);
  EXPECT_EQ(creports[0].state, net::SessionState::kCompleted);
  EXPECT_GE(server.mux().stats().fins_sent, 1u);  // the healing re-FIN
  // No items moved this generation — the tape was already complete.
  EXPECT_EQ(server.mux().stats().items_done, 0u);
}

// --------------------------------------------------------------------------
// Storage faults biting the session log
// --------------------------------------------------------------------------

// Each fault is injected into the session logs between the kill and the
// restart.  The damage must be DETECTED (skipped records, or a durable
// rewind the peer heals) and the run must still complete exactly — never
// silent corruption, and any rewind costs only bounded retransmission
// (the client's dup-ack go-back adopts the receiver's rewound frontier).
void run_fault_matrix_case(
    const std::function<void(RestartRig&)>& inject,
    std::uint64_t min_records_skipped) {
  constexpr std::size_t kSessions = 16;
  constexpr std::size_t kLen = 8;
  RestartRig rig;
  rig.start(kSessions, kLen, lossy_wire(0xFA017));
  ASSERT_TRUE(rig.wait_kill_window(60s));
  rig.kill_server();
  ASSERT_EQ(rig.server->mux().stats().sessions_completed, 0u);

  inject(rig);

  const auto rep = rig.restart();
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_GE(rep.records_skipped, min_records_skipped);
  // Tail damage can destroy a young session's ONLY record — that session
  // is simply not manifested any more (bounded amnesia, not corruption);
  // the operator re-adds it cold and it re-earns everything.
  const std::size_t cold = rig.cold_add_missing();
  EXPECT_EQ(rep.sessions + cold, kSessions);
  EXPECT_LE(cold, 4u);  // damage was bounded to the tail

  ASSERT_TRUE(rig.finish(90s));
  expect_all_completed(rig.server2->mux(), kSessions, kLen, false);
  expect_all_completed(rig.client->mux(), kSessions, kLen, false);
  // Every surviving manifest was re-admitted (not cold-started).
  std::size_t rehydrated = 0;
  for (const auto& r : rig.server2->mux().reports()) {
    rehydrated += r.rehydrated ? 1 : 0;
  }
  EXPECT_EQ(rehydrated, rep.sessions);
  EXPECT_FALSE(rig.probe2->out_of_order());
  EXPECT_EQ(rig.probe2->violations(), 0u);
  EXPECT_EQ(rig.probe2->recovery_violations(), 0u);
  EXPECT_EQ(rig.server2->mux().stats().sessions_violated, 0u);
}

TEST(DurableMuxFaults, TornWriteInSessionLogIsSkippedAndHealed) {
  // The crash tore the very record being appended: re-append the newest
  // manifest with the torn fault armed, leaving a half-written record at
  // the tail of the log.
  run_fault_matrix_case(
      [](RestartRig& rig) {
        const auto scan = store::scan_session_logs({&rig.st0});
        ASSERT_FALSE(scan.newest.empty());
        rig.st0.fault_torn_next_append();
        rig.st0.append(scan.newest.begin()->second.to_payload());
      },
      /*min_records_skipped=*/1);
}

TEST(DurableMuxFaults, CorruptRecordIsSkippedAndHealed) {
  run_fault_matrix_case(
      [](RestartRig& rig) {
        rig.st0.fault_corrupt_record();
        rig.st1.fault_corrupt_record();
      },
      /*min_records_skipped=*/2);
}

TEST(DurableMuxFaults, LoseTailRewindsDurablyAndGoBackHeals) {
  // Losing synced records rewinds sessions to an older checkpoint — a
  // rewind the peer can SEE (acks below its cursor).  The dup-ack
  // go-back adopts the rewound frontier; completion proves the heal.
  run_fault_matrix_case(
      [](RestartRig& rig) {
        rig.st0.fault_lose_tail(2);
        rig.st1.fault_lose_tail(2);
      },
      /*min_records_skipped=*/0);  // clean deletion leaves no skip marker
}

TEST(DurableMuxFaults, StaleRecordResurrectionIsSuperseded) {
  // The stale-snapshot hazard at session-log granularity: an old record
  // reappears AFTER newer ones in byte order.  The (epoch, seq) fold must
  // ignore it — no cold restore, no position regression to stale state.
  run_fault_matrix_case(
      [](RestartRig& rig) {
        const auto scan = store::scan_session_logs({&rig.st0});
        ASSERT_FALSE(scan.newest.empty());
        auto stale = scan.newest.begin()->second;
        stale.seq = 0;  // older than every live record
        stale.position = 0;
        stale.endpoint_state.clear();
        rig.st0.append(stale.to_payload());
      },
      /*min_records_skipped=*/0);
}

// --------------------------------------------------------------------------
// kRecoveryViolation end-to-end
// --------------------------------------------------------------------------

TEST(DurableMuxViolation, PoisonedManifestSurfacesAtRestore) {
  // The manifest's tape is not a prefix of what this session is expected
  // to deliver: the log attests to deliveries that never should have
  // happened.  That is a recovery violation at restore time — loud,
  // terminal, and distinct from a live safety violation.
  const std::uint32_t kId = 5;
  store::MemStore st;
  st.reset();
  st.append(receiver_manifest(kId, seq_for(kId, 4), 3, 1).to_payload());

  auto wire = net::make_loopback();
  DurableProbe probe(kId + 1);
  net::MuxConfig scfg;
  scfg.probe = &probe;
  scfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), scfg);
  const auto rep = server.rehydrate(
      stenning_receiver_factory(),
      [](std::uint32_t) {
        return seq::Sequence(4, static_cast<seq::DataItem>(7));  // not ours
      });
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.violations, 1u);
  EXPECT_EQ(probe.recovery_violations(), 1u);
  EXPECT_EQ(probe.rehydrated(), 1u);

  const auto reports = server.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].state, net::SessionState::kRecoveryViolation);
  const auto ss = server.mux().stats();
  EXPECT_EQ(ss.sessions_recovery_violated, 1u);
  EXPECT_EQ(ss.sessions_violated, 0u);  // distinct from kSafetyViolation
  obs::MetricsRegistry reg;
  server.mux().publish_metrics(reg);
  EXPECT_EQ(reg.counter_value("net.verdict.recovery-violation"), 1u);
  EXPECT_EQ(reg.counter_value("net.verdict.safety-violation"), 0u);
}

TEST(DurableMuxViolation, LostCompletionWithSilentPeerIsFlaggedNotWedged) {
  // A lose-tail fault destroyed the completion record; the surviving
  // manifest attests to an unfinished exchange, but the client is long
  // gone.  Without the idle tripwire the session would wait forever —
  // with it, the wedge surfaces as kRecoveryViolation.
  const std::uint32_t kId = 2;
  const auto x = seq_for(kId, 4);
  store::MemStore st;
  st.reset();
  st.append(receiver_manifest(kId, x, 2, /*seq_no=*/1).to_payload());
  st.append(receiver_manifest(kId, x, 4, /*seq_no=*/2).to_payload());
  st.fault_lose_tail(1);  // the completion record dies

  auto wire = net::make_loopback();  // and no client ever speaks
  DurableProbe probe(kId + 1);
  net::MuxConfig scfg;
  scfg.probe = &probe;
  scfg.sweep_interval = 200us;
  scfg.session_stores = {&st};
  scfg.rehydrate_idle_violation_sweeps = 30;
  net::StpServer server(wire.b.get(), scfg);
  const auto rep = server.rehydrate(stenning_receiver_factory(),
                                    [&](std::uint32_t) { return x; });
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.completed, 0u);  // the completion really was lost

  server.mux().start();
  EXPECT_TRUE(server.mux().drain(20s));
  server.mux().stop();
  const auto reports = server.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].state, net::SessionState::kRecoveryViolation);
  EXPECT_EQ(probe.recovery_violations(), 1u);
  EXPECT_EQ(server.mux().stats().sessions_recovery_violated, 1u);
}

// --------------------------------------------------------------------------
// Client-side rehydration (sender manifests)
// --------------------------------------------------------------------------

TEST(DurableMux, ClientRehydratesSenderManifestsAndServerDeclinesThem) {
  const std::uint32_t kId = 4;
  const auto x = seq_for(kId, 4);
  store::MemStore st;
  st.reset();
  {
    auto pair = proto::make_stenning(kDomain);
    proto::SenderSessionEndpoint ep(std::move(pair.sender), x);
    ep.finish();  // FIN had arrived before the crash
    store::SessionManifest m;
    m.session = kId;
    m.is_sender = true;
    m.epoch = 1;
    m.seq = 1;
    m.proto_tag = store::proto_tag_of(ep.name());
    m.position = ep.items_done();
    m.completed = ep.done();
    m.endpoint_state = ep.save_state();
    st.append(m.to_payload());
  }

  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.session_stores = {&st};

  net::StpClient client(wire.a.get(), cfg);
  const auto rep = client.rehydrate(
      [](std::uint32_t, std::uint64_t tag) -> std::unique_ptr<sim::ISender> {
        if (tag != store::proto_tag_of("stenning-sender")) return nullptr;
        return proto::make_stenning(kDomain, true).sender;
      },
      [&](std::uint32_t) { return x; });
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.completed, 1u);
  const auto reports = client.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].is_sender);
  EXPECT_EQ(reports[0].state, net::SessionState::kCompleted);

  // A server scanning the same log refuses to host a sender session.
  net::StpServer server(wire.b.get(), cfg);
  const auto srep = server.rehydrate(stenning_receiver_factory(),
                                     [&](std::uint32_t) { return x; });
  EXPECT_EQ(srep.sessions, 0u);
  EXPECT_EQ(srep.declined, 1u);
}

// --------------------------------------------------------------------------
// rehydrate() edge cases: empty log, completed-only log, id collisions,
// and the read-only extra-sources handoff (the fabric's re-home path)
// --------------------------------------------------------------------------

TEST(DurableMuxRehydrate, EmptyLogAdmitsNothing) {
  store::MemStore st;
  st.reset();
  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), cfg);
  const auto rep = server.rehydrate(stenning_receiver_factory(),
                                    [](std::uint32_t) { return seq_for(0, 4); });
  EXPECT_EQ(rep.sessions, 0u);
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.cold_restores, 0u);
  EXPECT_EQ(rep.collisions, 0u);
  EXPECT_EQ(rep.records_scanned, 0u);
  EXPECT_EQ(rep.records_skipped, 0u);
  EXPECT_TRUE(server.mux().reports().empty());
}

TEST(DurableMuxRehydrate, CompletedOnlyLogRestoresStraightToCompleted) {
  const std::uint32_t kId = 3;
  const auto x = seq_for(kId, 4);
  store::MemStore st;
  st.reset();
  st.append(receiver_manifest(kId, x, x.size(), 1).to_payload());

  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), cfg);
  const auto rep = server.rehydrate(stenning_receiver_factory(),
                                    [&](std::uint32_t) { return x; });
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.violations, 0u);
  const auto reports = server.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].id, kId);
  EXPECT_TRUE(reports[0].rehydrated);
  EXPECT_EQ(reports[0].state, net::SessionState::kCompleted);
  EXPECT_EQ(reports[0].items, x.size());
}

TEST(DurableMuxRehydrate, CollidingSessionIdIsSkippedAndCounted) {
  const std::uint32_t kId = 5;
  const auto x = seq_for(kId, 4);
  store::MemStore st;
  st.reset();
  st.append(receiver_manifest(kId, x, 2, 1).to_payload());

  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.session_stores = {&st};
  net::StpServer server(wire.b.get(), cfg);
  // The operator already cold-added kId; the manifest for the same id
  // must NOT replace or duplicate the hosted session.
  server.add_session(kId, proto::make_stenning(kDomain).receiver, x);
  const auto rep = server.rehydrate(stenning_receiver_factory(),
                                    [&](std::uint32_t) { return x; });
  EXPECT_EQ(rep.sessions, 0u);
  EXPECT_EQ(rep.collisions, 1u);
  const auto reports = server.mux().reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].rehydrated);  // the cold add won
  EXPECT_EQ(reports[0].items, 0u);      // fresh receiver, not the manifest
}

TEST(DurableMuxRehydrate, ExtraSourcesAreReadOnlyAndReManifestIntoOwnStores) {
  const std::uint32_t kId = 7;
  const auto x = seq_for(kId, 4);
  // The dead backend's log (stamped owner 2) — handed off read-only.
  store::MemStore dead_log;
  dead_log.reset();
  auto handed = receiver_manifest(kId, x, x.size(), 1);
  handed.owner = 2;
  dead_log.append(handed.to_payload());
  const auto handoff_bytes_before = dead_log.replay().payloads;

  store::MemStore own;
  own.reset();
  auto wire = net::make_loopback();
  net::MuxConfig cfg;
  cfg.session_stores = {&own};
  cfg.backend_id = 9;  // the survivor
  net::StpServer server(wire.b.get(), cfg);
  const auto rep = server.rehydrate(
      stenning_receiver_factory(), [&](std::uint32_t) { return x; },
      {&dead_log});
  EXPECT_EQ(rep.sessions, 1u);
  EXPECT_EQ(rep.completed, 1u);

  // The absorbed session re-manifests into the survivor's OWN store at
  // the first checkpoint flush, stamped with the survivor's id.  Watch
  // the (atomic) flush counter while running; only inspect the store
  // after stop() — it is worker-owned while the mux is live.
  server.mux().start();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.mux().stats().checkpoint_flushes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  server.mux().stop();
  bool remanifested = false;
  for (const auto& payload : own.replay().payloads) {
    const auto m = store::SessionManifest::from_payload(payload);
    if (m && m->session == kId && m->owner == 9) remanifested = true;
  }
  EXPECT_TRUE(remanifested);
  // The handoff source was scanned, never written.
  EXPECT_EQ(dead_log.replay().payloads, handoff_bytes_before);
}

// --------------------------------------------------------------------------
// Acceptance: kill + restart under load, >= 1000 sessions
// --------------------------------------------------------------------------

TEST(DurableMuxAcceptance, KillRestartThousandSessionsUnderLossAndReorder) {
  constexpr std::size_t kSessions = 1000;
  constexpr std::size_t kLen = 6;

  net::LoopbackConfig wire;
  fault::FaultPlan plan = fault::periodic_plan(
      fault::FaultKind::kDropBurst, sim::Dir::kSenderToReceiver, 9, 1,
      500'000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 11, 1,
                                       500'000);
  plan.actions.insert(plan.actions.end(), rs.actions.begin(),
                      rs.actions.end());
  wire.plan = plan;
  wire.reorder_window = 4;
  wire.seed = 0xACCE56;
  wire.max_queue = 16384;

  RestartRig rig;
  rig.start(kSessions, kLen, wire);
  ASSERT_TRUE(rig.wait_kill_window(120s));
  rig.kill_server();
  ASSERT_EQ(rig.server->mux().stats().sessions_completed, 0u);

  // Two of the storage faults bite the logs at scale on top of the crash.
  rig.st0.fault_corrupt_record();
  rig.st1.fault_lose_tail(2);

  const auto rep = rig.restart();
  // Every manifested session is re-admitted, none poisoned, none
  // declined; the faults may have de-manifested a few young sessions
  // entirely (their only record died with the tail) — those come back
  // cold via the operator fallback, never silently.
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.declined, 0u);
  EXPECT_GE(rep.records_skipped, 1u);  // the corrupt record was detected
  EXPECT_EQ(rig.probe2->rehydrated(), rep.sessions);
  const std::size_t cold = rig.cold_add_missing();
  EXPECT_EQ(rep.sessions + cold, kSessions);
  EXPECT_LE(cold, 8u);  // tail damage is bounded, so is the amnesia
  EXPECT_GE(rep.sessions, kSessions - 8);

  ASSERT_TRUE(rig.finish(180s));

  // Exact copy on every session, attested per-write across the restart:
  // generation 2's items resume at each session's restored position and
  // arrive in strictly ascending order (prefix safety at all times).
  expect_all_completed(rig.server2->mux(), kSessions, kLen, false);
  expect_all_completed(rig.client->mux(), kSessions, kLen, false);
  EXPECT_FALSE(rig.probe2->out_of_order());
  EXPECT_EQ(rig.probe2->violations(), 0u);
  EXPECT_EQ(rig.probe2->recovery_violations(), 0u);

  const auto ss = rig.server2->mux().stats();
  EXPECT_EQ(ss.sessions_completed, kSessions);
  EXPECT_EQ(ss.sessions_violated, 0u);
  EXPECT_EQ(ss.sessions_recovery_violated, 0u);
  EXPECT_EQ(ss.sessions_evicted, 0u);
  EXPECT_EQ(ss.rehydrated_sessions, rep.sessions);
  EXPECT_GT(ss.checkpoint_flushes, 0u);
  EXPECT_GT(ss.checkpoint_bytes, 0u);

  // Superseded checkpoints cost bounded retransmission, not items: both
  // generations together delivered each item at least once, and the
  // generation-2 tape is exactly X (checked per report above).
  EXPECT_GE(rig.probe1->items() + rig.probe2->items(), kSessions * kLen);

  // The link really was hostile.
  EXPECT_GT(rig.wire.stats(sim::Dir::kSenderToReceiver).dropped, 0u);
  EXPECT_GT(rig.wire.stats(sim::Dir::kReceiverToSender).dropped, 0u);

  obs::MetricsRegistry reg;
  rig.server2->mux().publish_metrics(reg);
  EXPECT_EQ(reg.counter_value("net.rehydrated_sessions"), rep.sessions);
  EXPECT_EQ(reg.counter_value("net.verdict.completed"), kSessions);
  EXPECT_EQ(reg.counter_value("net.verdict.recovery-violation"), 0u);
}

}  // namespace
}  // namespace stpx
