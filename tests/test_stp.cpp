// Tests for the stp core: sweep runner, fault injection, boundedness
// metering, and the attack synthesizer (the executable impossibility
// theorems).
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/encoded.hpp"
#include "stp/attack.hpp"
#include "stp/boundedness.hpp"
#include "stp/fairness.hpp"
#include "stp/fault.hpp"
#include "stp/runner.hpp"
#include "stp/validate.hpp"
#include "util/expect.hpp"

namespace stpx::stp {
namespace {

SystemSpec repfree_dup_spec(int m) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 300000;
  return spec;
}

SystemSpec repfree_del_spec(int m, double loss) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [loss](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(loss, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 300000;
  return spec;
}

SystemSpec hybrid_spec(int m, int timeout) {
  SystemSpec spec;
  spec.protocols = [m, timeout] { return proto::make_hybrid(m, timeout); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::FifoChannel>();
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 400000;
  return spec;
}

SystemSpec encoded_spec(proto::EncodingTable table, bool knowledge_receiver,
                        bool del_mode) {
  SystemSpec spec;
  spec.protocols = [table, knowledge_receiver, del_mode] {
    proto::ProtocolPair pair;
    pair.sender = std::make_unique<proto::EncodedSender>(table, del_mode);
    if (knowledge_receiver) {
      pair.receiver =
          std::make_unique<proto::KnowledgeReceiver>(table, del_mode);
    } else {
      pair.receiver = std::make_unique<proto::GreedyReceiver>(table, del_mode);
    }
    return pair;
  };
  if (del_mode) {
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.0, seed);
    };
  } else {
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
  }
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  return spec;
}

// ----------------------------------------------------------------- runner --

TEST(Runner, SweepFullCanonicalFamilyPasses) {
  const int m = 3;
  const auto result = sweep_family(repfree_dup_spec(m),
                                   seq::canonical_repetition_free(m),
                                   {1, 2, 3});
  EXPECT_TRUE(result.all_ok()) << (result.failures.empty()
                                       ? ""
                                       : result.failures.front().detail);
  EXPECT_EQ(result.trials, 16u * 3u);  // alpha(3) = 16
  EXPECT_GT(result.avg_steps(), 0.0);
  EXPECT_GT(result.msgs_per_trial(), 0.0);
}

TEST(Runner, SweepRecordsFailuresWithDetail) {
  // ABP on a reordering channel: failures must be captured, not crash.
  SystemSpec spec;
  spec.protocols = [] { return proto::make_abp(2); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 30000;

  seq::Family fam{seq::Domain{2}, {seq::Sequence{0, 1, 0, 1, 0, 1, 0, 1}}};
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 20; ++s) seeds.push_back(s);
  const auto result = sweep_family(spec, fam, seeds);
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(result.failures.size(),
            result.safety_failures + result.incomplete);
  EXPECT_FALSE(result.failures.front().detail.empty());
}

TEST(Runner, MissingFactoryThrows) {
  SystemSpec spec;  // no factories set
  EXPECT_THROW(make_engine(spec, 0), ContractError);
}

// ------------------------------------------------------------------ fault --

TEST(Fault, RepFreeDelRecoversQuickly) {
  const seq::Sequence x{0, 1, 2, 3, 4, 5};
  const auto rec = measure_fault_recovery(repfree_del_spec(6, 0.0), x,
                                          {.fault_after_writes = 2}, 7);
  EXPECT_TRUE(rec.fault_injected);
  EXPECT_TRUE(rec.recovered);
  EXPECT_TRUE(rec.completed);
  // Bounded protocol: recovery within a small constant number of steps
  // (one retransmission round-trip under the fair scheduler).
  EXPECT_LT(rec.recovery_steps, 200u);
}

TEST(Fault, HybridRecoveryDependsOnInputLength) {
  // The §5 phenomenon: after one fault the hybrid replays the WHOLE
  // sequence before the receiver can write anything new, so the gap to the
  // *next write* grows with |X| while the fault position stays fixed.
  std::vector<std::uint64_t> recoveries;
  for (std::size_t n : {8u, 16u, 32u}) {
    seq::Sequence x;
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<seq::DataItem>(i % 3));
    }
    const auto rec = measure_fault_recovery(hybrid_spec(3, 12), x,
                                            {.fault_after_writes = 2}, 7);
    ASSERT_TRUE(rec.fault_injected) << "n=" << n;
    ASSERT_TRUE(rec.completed) << "n=" << n;
    recoveries.push_back(rec.recovery_steps);
  }
  EXPECT_LT(recoveries[0], recoveries[1]);
  EXPECT_LT(recoveries[1], recoveries[2]);
}

TEST(Fault, RepFreeDelRecoveryFlatInInputLength) {
  std::vector<std::uint64_t> recoveries;
  for (int n : {4, 8, 16}) {
    seq::Sequence x;
    for (int i = 0; i < n; ++i) x.push_back(i);
    const auto rec = measure_fault_recovery(repfree_del_spec(16, 0.0), x,
                                            {.fault_after_writes = 2}, 9);
    ASSERT_TRUE(rec.fault_injected && rec.recovered) << "n=" << n;
    recoveries.push_back(rec.recovery_steps);
  }
  // Flat within noise: the longest should be within a small factor of the
  // shortest (they are all one retransmission round-trip).
  EXPECT_LE(recoveries.back(), recoveries.front() * 5 + 50);
}

TEST(Fault, ThrowsOnDropIncapableChannel) {
  const auto spec = repfree_dup_spec(3);  // dup channel cannot drop
  EXPECT_THROW(measure_fault_recovery(spec, {0, 1, 2},
                                      {.fault_after_writes = 1}, 1),
               ContractError);
}

// ------------------------------------------------------------ boundedness --

TEST(Boundedness, WriteGapsExtracted) {
  sim::RunResult r;
  r.stats.write_step = {5, 9, 20};
  EXPECT_EQ(write_gaps(r), (std::vector<std::uint64_t>{5, 4, 11}));
}

TEST(Boundedness, RepFreeDelGapsConstantBounded) {
  seq::Sequence x;
  for (int i = 0; i < 10; ++i) x.push_back(i);
  const auto profile =
      measure_gaps(repfree_del_spec(10, 0.0), x, {1, 2, 3, 4, 5});
  EXPECT_EQ(profile.failed_runs, 0u);
  EXPECT_EQ(profile.max_gap.size(), x.size());
  EXPECT_TRUE(constant_bounded(profile, 500));
  EXPECT_GT(profile.overall_mean, 0.0);
}

TEST(Boundedness, ConstantBoundedRespectsThreshold) {
  GapProfile p;
  p.max_gap = {10, 20, 30};
  EXPECT_TRUE(constant_bounded(p, 30));
  EXPECT_FALSE(constant_bounded(p, 29));
}

// ----------------------------------------------------------------- attack --

proto::EncodingTable canonical_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

/// The canonical encoding plus one colliding extra entry — the only kind of
/// table that can exist once |𝒳| = alpha(m) + 1 (pigeonhole).
proto::EncodingTable overfull_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  // The extra allowable sequence <0 0>; any word we pick collides.  Reuse
  // the word of <0 1>-like entry: find a length-2 input starting with 0.
  std::size_t donor = SIZE_MAX;
  for (std::size_t i = 0; i < enc->inputs.size(); ++i) {
    if (enc->inputs[i].size() == 2 && enc->inputs[i][0] == 0) {
      donor = i;
      break;
    }
  }
  STPX_EXPECT(donor != SIZE_MAX, "expected a <0 x> entry");
  enc->inputs.push_back(seq::Sequence{0, 0});
  enc->words.push_back(enc->words[donor]);
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

seq::Family family_of(const proto::EncodingTable& table, int m) {
  return seq::Family{seq::Domain{m}, table->inputs};
}

TEST(Attack, SkeletonMatchesEncodingWord) {
  const int m = 3;
  auto table = canonical_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/false);
  for (std::size_t i = 0; i < table->inputs.size(); ++i) {
    const Skeleton sk = extract_skeleton(spec, table->inputs[i], 50000);
    EXPECT_TRUE(sk.completed) << seq::to_string(table->inputs[i]);
    EXPECT_EQ(sk.word, table->words[i]) << seq::to_string(table->inputs[i]);
  }
}

TEST(Attack, NoWitnessAgainstValidEncodingPairs) {
  const int m = 2;
  auto table = canonical_table(m);
  const auto spec = encoded_spec(table, true, false);
  // <0> vs <1>: different words, prefix-incomparable — not a candidate and
  // not exploitable.
  const auto r = mirror_attack_pair(spec, {0}, {1},
                                    {.mirror_rounds = 200, .stall_rounds = 16});
  EXPECT_EQ(r.kind, AttackResult::Kind::kNone);
}

TEST(Attack, FindsDecisiveStallAgainstKnowledgeReceiver) {
  const int m = 2;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/false);
  const auto r = find_attack(spec, family_of(table, m),
                             {.skeleton_steps = 50000,
                              .mirror_rounds = 500,
                              .stall_rounds = 16});
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.kind, AttackResult::Kind::kDecisiveStall);
  // The witness pair shares a word but has distinct inputs.
  EXPECT_NE(r.x_a, r.x_b);
  EXPECT_EQ(r.y_a, r.y_b);
}

TEST(Attack, FindsSafetyViolationAgainstGreedyReceiver) {
  const int m = 2;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/false, /*del=*/false);
  const auto r = find_attack(spec, family_of(table, m),
                             {.skeleton_steps = 50000,
                              .mirror_rounds = 500,
                              .stall_rounds = 16});
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.kind, AttackResult::Kind::kSafetyViolation);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Attack, DeletionChannelVariantAlsoBroken) {
  // Theorem 2: same overfull family, deletion channel, retransmitting
  // (bounded-style) protocol — the mirror construction still produces a
  // witness.
  const int m = 2;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/true);
  const auto r = find_attack(spec, family_of(table, m),
                             {.skeleton_steps = 50000,
                              .mirror_rounds = 800,
                              .stall_rounds = 16});
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.kind, AttackResult::Kind::kDecisiveStall);
}

TEST(Attack, LargerAlphabetStillBroken) {
  const int m = 3;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/false, /*del=*/false);
  const auto r = find_attack(spec, family_of(table, m),
                             {.skeleton_steps = 80000,
                              .mirror_rounds = 800,
                              .stall_rounds = 16});
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.kind, AttackResult::Kind::kSafetyViolation);
}

TEST(Attack, MirrorKeepsReceiverViewsIdentical) {
  // Even for a non-exploitable pair the driver must maintain ~_R equality
  // (it asserts internally; reaching kNone implies it held throughout).
  const int m = 2;
  auto table = canonical_table(m);
  const auto spec = encoded_spec(table, true, false);
  const auto r = mirror_attack_pair(spec, {0, 1}, {1, 0},
                                    {.mirror_rounds = 300, .stall_rounds = 8});
  EXPECT_EQ(r.kind, AttackResult::Kind::kNone);
}

// -------------------------------------------------------------- fairness --

TEST(Fairness, LatenciesBoundedUnderFairRandom) {
  const auto profile = measure_fairness(repfree_del_spec(6, 0.0),
                                        {0, 1, 2, 3, 4, 5},
                                        {1, 2, 3, 4, 5});
  EXPECT_EQ(profile.runs, 5u);
  // Data-direction latency is measured and sane.
  EXPECT_GT(profile.delivery_latency[0].n, 0u);
  EXPECT_GT(profile.delivery_latency[0].mean, 0.0);
  EXPECT_LT(profile.delivery_latency[0].p95, 200.0);
}

TEST(Fairness, StarvationCappedByAgingOverride) {
  // The FairRandomScheduler forces a starving process to run within its
  // starvation_limit (default 64); measured gaps must respect it with
  // scheduling slack.
  const auto profile = measure_fairness(repfree_del_spec(4, 0.2),
                                        {0, 1, 2, 3}, {7, 8, 9});
  EXPECT_LE(profile.max_sender_gap, 130u);
  EXPECT_LE(profile.max_receiver_gap, 130u);
}

TEST(Fairness, RoundRobinHasTinyGaps) {
  auto spec = repfree_del_spec(4, 0.0);
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  const auto profile = measure_fairness(spec, {0, 1, 2, 3}, {1});
  EXPECT_LE(profile.max_sender_gap, 4u);
  EXPECT_LE(profile.max_receiver_gap, 4u);
}

// ------------------------------------------------------ exhaustive mirror --

TEST(ExhaustiveMirror, FindsViolationForOverfullGreedyPair) {
  // The greedy receiver on the colliding pair: SOME mirrored schedule must
  // break safety, and the model checker finds it without heuristics.
  const int m = 2;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/false, /*del=*/false);
  const auto r = exhaustive_mirror_search(spec, {0, 1}, {0, 0},
                                          /*max_depth=*/12,
                                          /*max_states=*/200000);
  EXPECT_TRUE(r.violation_found);
  EXPECT_GT(r.states_explored, 0u);
}

TEST(ExhaustiveMirror, ProvesKnowledgeReceiverSafeWithinHorizon) {
  // The knowledge receiver can never be steered into a wrong write: the
  // search exhausts the mirrored space without finding a violation — a
  // bounded *proof*, not a sampling verdict.
  const int m = 2;
  auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/false);
  const auto r = exhaustive_mirror_search(spec, {0, 1}, {0, 0},
                                          /*max_depth=*/10,
                                          /*max_states=*/500000);
  EXPECT_FALSE(r.violation_found);
}

TEST(ExhaustiveMirror, ValidEncodingPairsUnexploitable) {
  const int m = 2;
  auto table = canonical_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/false, /*del=*/false);
  // Even the committal receiver is safe when the encoding is valid.
  const auto r = exhaustive_mirror_search(spec, {0}, {1},
                                          /*max_depth=*/10,
                                          /*max_states=*/500000);
  EXPECT_FALSE(r.violation_found);
}

// -------------------------------------------------------------- validate --

TEST(Validate, CleanRunsPassAllRules) {
  // Every protocol/channel pairing we ship must produce traces satisfying
  // the model's conservation laws.
  struct Case {
    const char* name;
    SystemSpec spec;
    seq::Sequence x;
    bool dup;
  };
  std::vector<Case> cases;
  cases.push_back({"repfree-dup", repfree_dup_spec(3), {2, 0, 1}, true});
  cases.push_back({"repfree-del", repfree_del_spec(3, 0.2), {1, 2, 0}, false});
  {
    SystemSpec abp;
    abp.protocols = [] { return proto::make_abp(2); };
    abp.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::FifoChannel>(0.2, 0.2, seed);
    };
    abp.scheduler = [](std::uint64_t seed) {
      return std::make_unique<channel::FairRandomScheduler>(seed);
    };
    abp.engine.max_steps = 300000;
    // FIFO with dup policy can over-deliver relative to logical sends.
    cases.push_back({"abp-fifo", abp, {0, 1, 1, 0}, true});
  }
  for (auto& c : cases) {
    c.spec.engine.record_trace = true;
    const sim::RunResult run = run_one(c.spec, c.x, 11);
    ASSERT_TRUE(run.completed) << c.name;
    const auto report = validate_trace(run, c.dup);
    EXPECT_TRUE(report.ok()) << c.name << ": "
                             << (report.issues.empty()
                                     ? ""
                                     : report.issues.front().detail);
  }
}

TEST(Validate, DetectsFabricatedDelivery) {
  sim::RunResult run;
  sim::TraceEvent ev;
  ev.step = 0;
  ev.action = {sim::ActionKind::kDeliverToReceiver, 7};
  run.trace.push_back(ev);
  const auto report = validate_trace(run, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().rule, "V1");
}

TEST(Validate, DetectsOverDeliveryOnDelSemantics) {
  sim::RunResult run;
  sim::TraceEvent send;
  send.step = 0;
  send.action = {sim::ActionKind::kSenderStep, -1};
  send.did_send = true;
  send.sent = 3;
  sim::TraceEvent d1;
  d1.step = 1;
  d1.action = {sim::ActionKind::kDeliverToReceiver, 3};
  sim::TraceEvent d2 = d1;
  d2.step = 2;
  run.trace = {send, d1, d2};
  EXPECT_FALSE(validate_trace(run, false).ok());  // del: 2 deliveries > 1 send
  EXPECT_TRUE(validate_trace(run, true).ok());    // dup: legal
}

TEST(Validate, DetectsGappedSteps) {
  sim::RunResult run;
  sim::TraceEvent a;
  a.step = 0;
  a.action = {sim::ActionKind::kSenderStep, -1};
  sim::TraceEvent b;
  b.step = 5;  // gap
  b.action = {sim::ActionKind::kReceiverStep, -1};
  run.trace = {a, b};
  const auto report = validate_trace(run, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().rule, "V4");
}

TEST(Validate, DetectsOutputMismatch) {
  sim::RunResult run;
  sim::TraceEvent w;
  w.step = 0;
  w.action = {sim::ActionKind::kReceiverStep, -1};
  w.writes = {4};
  run.trace = {w};
  run.output = {4, 5};  // tape claims more than the trace wrote
  const auto report = validate_trace(run, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.back().rule, "V5");
}

// ----------------------------------------------------- dup+del ablation --

TEST(DupDelAblation, SendOnceStarvesRetransmitSurvives) {
  // On a channel that can duplicate AND delete, sending a message once is
  // no longer enough: the one transmission may be suppressed forever.  The
  // retransmitting variant stays live.
  const seq::Sequence x{0, 1, 2};
  auto make_spec = [&](bool retransmit) {
    SystemSpec spec;
    spec.protocols = [retransmit] {
      return retransmit ? proto::make_repfree_del(3)
                        : proto::make_repfree_dup(3);
    };
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DupDelChannel>(0.5, seed);
    };
    spec.scheduler = [](std::uint64_t seed) {
      return std::make_unique<channel::FairRandomScheduler>(seed);
    };
    spec.engine.max_steps = 50000;
    return spec;
  };

  std::size_t once_failures = 0, retx_failures = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto once = run_one(make_spec(false), x, seed);
    const auto retx = run_one(make_spec(true), x, seed);
    EXPECT_TRUE(once.safety_ok);
    EXPECT_TRUE(retx.safety_ok);
    if (!once.completed) ++once_failures;
    if (!retx.completed) ++retx_failures;
  }
  EXPECT_GT(once_failures, 0u);   // suppression eventually bites send-once
  EXPECT_EQ(retx_failures, 0u);   // retransmission always recovers
}

}  // namespace
}  // namespace stpx::stp
