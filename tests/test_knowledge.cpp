// Tests for the knowledge layer: exploration soundness, Property 1a,
// K_R evaluation, knowledge stability, t_i extraction, and decisive-tuple
// discovery (Definition 1).
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "knowledge/explorer.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/encoding.hpp"
#include "seq/repetition_free.hpp"

namespace stpx::knowledge {
namespace {

stp::SystemSpec repfree_dup_spec(int m) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  return spec;
}

Exploration explore_canonical(int m, std::uint64_t depth,
                              std::size_t max_points = 300000) {
  return explore(repfree_dup_spec(m), seq::canonical_repetition_free(m),
                 {.max_depth = depth, .max_points = max_points});
}

TEST(Explorer, ProducesPointsForEveryInput) {
  const auto ex = explore_canonical(2, 4);
  ASSERT_FALSE(ex.points.empty());
  std::set<std::size_t> inputs_seen;
  for (const auto& p : ex.points) inputs_seen.insert(p.input_index);
  EXPECT_EQ(inputs_seen.size(), ex.family.size());  // alpha(2) = 5 inputs
}

TEST(Explorer, InitialStatesAreReceiverIndistinguishable) {
  // Property 1a: R's local state is identical in all initial global states,
  // so all depth-0 points must share one ~_R class.
  const auto ex = explore_canonical(2, 3);
  std::set<std::string> initial_keys;
  for (const auto& p : ex.points) {
    if (p.depth == 0) initial_keys.insert(p.r_key);
  }
  EXPECT_EQ(initial_keys.size(), 1u);
}

TEST(Explorer, ReceiverKnowsNothingInitially) {
  const auto ex = explore_canonical(2, 3);
  for (const auto& p : ex.points) {
    if (p.depth != 0) continue;
    // The family contains <> and inputs disagreeing at item 0.
    EXPECT_FALSE(receiver_knows_item(ex, p, 0).has_value());
    EXPECT_EQ(receiver_known_prefix(ex, p), 0u);
    break;
  }
}

TEST(Explorer, KnowledgeAppearsAfterDelivery) {
  // Depth 3 suffices for: S-step (send x0), deliver to R, R-step.  After R
  // receives message d, every explored twin has x0 = d.
  const auto ex = explore_canonical(2, 6);
  bool some_point_knows = false;
  for (const auto& p : ex.points) {
    const auto known = receiver_knows_item(ex, p, 0);
    if (known.has_value()) {
      some_point_knows = true;
      // Knowledge must be *correct*: the value matches this run's input.
      const seq::Sequence& x = ex.family.members[p.input_index];
      ASSERT_FALSE(x.empty());
      EXPECT_EQ(*known, x[0]);
    }
  }
  EXPECT_TRUE(some_point_knows);
}

TEST(Explorer, KnowledgeImpliesOutputConsistency) {
  // Safety-side sanity: everything R has written must already be known.
  const auto ex = explore_canonical(2, 6);
  for (const auto& p : ex.points) {
    EXPECT_TRUE(p.safety_ok);
    EXPECT_GE(receiver_known_prefix(ex, p), p.output.size())
        << "receiver wrote an item it does not know";
  }
}

TEST(Explorer, SentSetsGrowMonotonically) {
  const auto ex = explore_canonical(2, 5);
  // Weak but useful: the initial points have empty sent sets.
  for (const auto& p : ex.points) {
    if (p.depth == 0) EXPECT_TRUE(p.sent_to_receiver.empty());
  }
}

TEST(Explorer, TruncationFlagHonest) {
  // A tiny cap must report truncation; a deep-enough exploration of a tiny
  // family must not.
  const auto tiny = explore(repfree_dup_spec(1),
                            seq::canonical_repetition_free(1),
                            {.max_depth = 3, .max_points = 4});
  EXPECT_TRUE(tiny.truncated);
}

TEST(Explorer, LearnTimesMonotoneAndComplete) {
  // Record a real run, replay it against the exploration, and check the
  // t_i sequence: defined for every i (run completes within horizon),
  // non-decreasing, and consistent with stability.
  const int m = 2;
  auto spec = repfree_dup_spec(m);
  spec.engine.record_trace = true;
  spec.engine.record_histories = true;
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  const seq::Sequence x{1, 0};
  const sim::RunResult run = stp::run_one(spec, x, 0);
  ASSERT_TRUE(run.completed);

  // Depth must cover the full run.
  const auto ex = explore(spec, seq::canonical_repetition_free(m),
                          {.max_depth = run.stats.steps + 1,
                           .max_points = 500000});
  const auto times = learn_times(ex, run);
  ASSERT_EQ(times.size(), x.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_TRUE(times[i].has_value()) << "t_" << (i + 1) << " undefined";
    EXPECT_GE(*times[i], prev);
    prev = *times[i];
  }
  // R cannot know item 1 before it knows item 0 (prefix knowledge).
  EXPECT_LE(*times[0], *times[1]);
}

TEST(Explorer, DecisiveTupleWithEmptyMessageSetAtStart) {
  // All initial points: mutually ~_R, distinct inputs, M = {} — a trivial
  // dup-decisive tuple of size alpha(2) = 5.
  const auto ex = explore_canonical(2, 2);
  const auto tuple = find_dup_decisive(ex, 5, 0);
  ASSERT_TRUE(tuple.has_value());
  EXPECT_GE(tuple->point_indices.size(), 5u);
  EXPECT_TRUE(tuple->messages.empty());
}

TEST(Explorer, DecisiveTupleWithOneBurnedMessage) {
  // After S sends its first message but before any delivery, R still sees
  // nothing, so runs of <0 ...> and <0> (both send message 0) plus any
  // other input whose first send is 0... at minimum the pair {<0>, <0 1>}
  // forms a dup-decisive tuple with M = {0} (Definition 1 with ell = 1).
  const auto ex = explore_canonical(2, 4);
  const auto tuple = find_dup_decisive(ex, 2, 1);
  ASSERT_TRUE(tuple.has_value());
  EXPECT_GE(tuple->point_indices.size(), 2u);
  ASSERT_EQ(tuple->messages.size(), 1u);
  // All points in the tuple really did send that message.
  for (std::size_t idx : tuple->point_indices) {
    const auto& sent = ex.points[idx].sent_to_receiver;
    EXPECT_TRUE(std::find(sent.begin(), sent.end(), tuple->messages[0]) !=
                sent.end());
  }
  // And their inputs are mutually distinct.
  std::set<seq::Sequence> inputs;
  for (std::size_t idx : tuple->point_indices) {
    inputs.insert(ex.family.members[ex.points[idx].input_index]);
  }
  EXPECT_EQ(inputs.size(), tuple->point_indices.size());
}

TEST(Explorer, NoFullAlphabetDecisiveTupleForValidProtocol) {
  // Theorem 1's proof drives the construction to |M| = m only when
  // |X| > alpha(m).  For the exactly-alpha(m) canonical family the protocol
  // is correct, so no ~_R class with distinct inputs should have burned the
  // whole alphabet *and* still be indistinguishable... at shallow depth.
  // (At m = 2 the full-alphabet tuple would need both messages sent in two
  // runs with different inputs and identical R views: sending message 1
  // requires an ack of message 0, which R only produces after receiving 0 —
  // after which runs of <0> and <1> are distinguishable.)
  const auto ex = explore_canonical(2, 8);
  const auto tuple = find_dup_decisive(ex, 2, 2);
  if (tuple.has_value()) {
    // If one exists, the inputs must at least be prefix-comparable (no
    // safety threat) — check and report.
    ASSERT_EQ(tuple->point_indices.size(), 2u);
    const auto& xa =
        ex.family.members[ex.points[tuple->point_indices[0]].input_index];
    const auto& xb =
        ex.family.members[ex.points[tuple->point_indices[1]].input_index];
    EXPECT_FALSE(seq::prefix_incomparable(xa, xb))
        << "prefix-incomparable full-alphabet decisive tuple found for a "
           "correct protocol: " << seq::to_string(xa) << " vs "
        << seq::to_string(xb);
  }
}

stp::SystemSpec repfree_del_spec(int m) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  return spec;
}

TEST(DelDecisive, RequiresActualCopiesInFlight) {
  // On the deletion channel, after S sends its one copy of message 0 in two
  // runs with distinct inputs and nothing is delivered, the pair is
  // del-decisive with n = 1...
  const auto ex = explore(repfree_del_spec(2),
                          seq::canonical_repetition_free(2),
                          {.max_depth = 4, .max_points = 300000});
  const auto one_copy = find_del_decisive(ex, 2, 1, 1);
  ASSERT_TRUE(one_copy.has_value());
  EXPECT_EQ(one_copy->messages.size(), 1u);
  // ...and with retransmission, even n = 2 copies are bankable in depth 4
  // (two sender steps both sending message 0).
  const auto two_copies = find_del_decisive(ex, 2, 1, 2);
  ASSERT_TRUE(two_copies.has_value());
  // But n = 5 copies cannot exist within 4 steps.
  EXPECT_FALSE(find_del_decisive(ex, 2, 1, 5).has_value());
}

TEST(DelDecisive, DeliveredCopiesNoLongerCount) {
  // The dup-decisive finder counts *ever sent*; the del finder must count
  // sent-minus-delivered.  At any point where R has received message 0, the
  // copy is consumed, so a del-decisive tuple over {<0>, <0 1>} with the
  // message still in flight must sit strictly before the delivery.
  const auto ex = explore(repfree_del_spec(2),
                          seq::canonical_repetition_free(2),
                          {.max_depth = 5, .max_points = 300000});
  const auto tuple = find_del_decisive(ex, 2, 1, 1);
  ASSERT_TRUE(tuple.has_value());
  for (std::size_t idx : tuple->point_indices) {
    // No point in the tuple can have an output yet: writing requires
    // receiving, and receiving consumes the only copy while also splitting
    // the ~_R class by input.
    EXPECT_TRUE(ex.points[idx].output.empty());
  }
}

// ------------------------------------------------------- sender knowledge --

TEST(SenderKnowledge, InitiallyKnowsNothingAboutWrites) {
  const auto ex = explore_canonical(2, 4);
  for (const auto& p : ex.points) {
    if (p.depth != 0) continue;
    EXPECT_EQ(sender_known_written(ex, p), 0u);
    EXPECT_FALSE(sender_knows_receiver_knows(ex, p, 0));
  }
}

TEST(SenderKnowledge, AckDeliveryCreatesNestedKnowledge) {
  // Explore deep enough for: S send, deliver, R write+ack, ack deliver.
  const auto ex = explore_canonical(2, 6);
  bool some_nested = false;
  for (const auto& p : ex.points) {
    if (sender_knows_receiver_knows(ex, p, 0)) {
      some_nested = true;
      // Nested knowledge implies plain receiver knowledge at every ~_S twin
      // — in particular at p itself.
      EXPECT_GE(receiver_known_prefix(ex, p), 1u);
      // And the sender must know at least one write happened.
      EXPECT_GE(sender_known_written(ex, p), 1u);
    }
  }
  EXPECT_TRUE(some_nested);
}

TEST(SenderKnowledge, HierarchyNeverInverts) {
  // K_S K_R(x_i) -> K_R(x_i) at every explored point (S knowing that R
  // knows is strictly stronger than R knowing).
  const auto ex = explore_canonical(2, 6);
  for (const auto& p : ex.points) {
    std::size_t nested = 0;
    while (nested < 2 && sender_knows_receiver_knows(ex, p, nested)) {
      ++nested;
    }
    EXPECT_LE(nested, receiver_known_prefix(ex, p));
  }
}

TEST(NestedKnowledge, KnowsOperatorComposesCorrectly) {
  const auto ex = explore_canonical(2, 6);
  // knows(R, fact) must agree with receiver_knows_item on every point.
  for (const auto& p : ex.points) {
    const seq::Sequence& x = ex.family.members[p.input_index];
    if (x.empty()) continue;
    const auto kr = knows(Process::kReceiver, fact_item_is(0, x[0]));
    EXPECT_EQ(kr(ex, p), receiver_knows_item(ex, p, 0).has_value());
  }
}

TEST(NestedKnowledge, ChainDepthMatchesPrimitives) {
  const auto ex = explore_canonical(2, 6);
  for (const auto& p : ex.points) {
    const std::size_t chain = knowledge_chain_depth(ex, p, 0, 2);
    const bool kr = receiver_knows_item(ex, p, 0).has_value();
    const bool ksr = sender_knows_receiver_knows(ex, p, 0);
    EXPECT_EQ(chain >= 1, kr);
    EXPECT_EQ(chain >= 2, kr && ksr);
  }
}

TEST(NestedKnowledge, FactWrittenAtLeast) {
  const auto ex = explore_canonical(2, 5);
  for (const auto& p : ex.points) {
    EXPECT_TRUE(fact_written_at_least(0)(ex, p));
    EXPECT_EQ(fact_written_at_least(1)(ex, p), p.output.size() >= 1);
    // K_S(written >= n) must agree with sender_known_written.
    const auto ks1 =
        knows(Process::kSender, fact_written_at_least(1))(ex, p);
    EXPECT_EQ(ks1, sender_known_written(ex, p) >= 1);
  }
}

TEST(NestedKnowledge, ChainNeverExceedsMessageCount) {
  // Each rung of the chain needs at least one more delivered message, so
  // within depth d of the run tree the chain is bounded by d.
  const auto ex = explore_canonical(2, 6);
  for (const auto& p : ex.points) {
    const std::size_t chain = knowledge_chain_depth(ex, p, 0, 4);
    EXPECT_LE(chain, p.depth);
  }
}

TEST(SenderKnowledge, SenderClassesPartitionPoints) {
  const auto ex = explore_canonical(2, 4);
  std::size_t total = 0;
  for (const auto& [key, indices] : ex.by_s_history) {
    (void)key;
    total += indices.size();
  }
  EXPECT_EQ(total, ex.points.size());
}

// ------------------------------------------------------------- exhaustive --

TEST(ExhaustiveSafety, CorrectProtocolCleanToHorizon) {
  // Small-model certainty for T2: EVERY schedule up to depth 8 keeps every
  // canonical input safe.
  const auto verdict = exhaustive_safety(
      repfree_dup_spec(2), seq::canonical_repetition_free(2),
      {.max_depth = 8, .max_points = 500000});
  EXPECT_FALSE(verdict.violation_found);
  EXPECT_GT(verdict.points_checked, 1000u);
}

TEST(ExhaustiveSafety, FindsWraparoundViolationInModKStenning) {
  // mod-2 Stenning on a reordering channel: exhaustive search finds the
  // wraparound corruption no matter how rare it is under random schedules.
  stp::SystemSpec spec;
  spec.protocols = [] { return proto::make_modk_stenning(2, 2); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;

  const seq::Family family{seq::Domain{2}, {seq::Sequence{0, 1, 1}}};
  const auto verdict = exhaustive_safety(
      spec, family, {.max_depth = 14, .max_points = 3000000});
  EXPECT_TRUE(verdict.violation_found);
  if (verdict.violation_found) {
    // The violating output must disagree with X = <0 1 1> at some position.
    EXPECT_FALSE(seq::is_prefix(verdict.violating_output,
                                family.members[0]));
  }
}

// --------------------------------------------------------------- deadlock --

TEST(Deadlock, CorrectProtocolHasNoneWithinHorizon) {
  const auto verdict = exhaustive_deadlock(
      repfree_dup_spec(2), seq::canonical_repetition_free(2),
      {.max_depth = 8, .max_points = 100000});
  EXPECT_FALSE(verdict.deadlock_found);
  EXPECT_GT(verdict.points_checked, 100u);
}

TEST(Deadlock, OverfullKnowledgeReceiverCertifiablyStarves) {
  // The decisive-stall of T3, upgraded to a certificate: with the colliding
  // table, some reachable state of the <0 0> run is information-quiescent
  // and incomplete — no continuation can ever deliver the missing item.
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(2), 2);
  ASSERT_TRUE(enc.has_value());
  std::size_t donor = SIZE_MAX;
  for (std::size_t i = 0; i < enc->inputs.size(); ++i) {
    if (enc->inputs[i].size() == 2 && enc->inputs[i][0] == 0) donor = i;
  }
  enc->inputs.push_back(seq::Sequence{0, 0});
  enc->words.push_back(enc->words[donor]);
  auto table = std::make_shared<const seq::Encoding>(std::move(*enc));

  stp::SystemSpec spec;
  spec.protocols = [table] {
    proto::ProtocolPair pair;
    pair.sender = std::make_unique<proto::EncodedSender>(table, false);
    pair.receiver = std::make_unique<proto::KnowledgeReceiver>(table, false);
    return pair;
  };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;

  const seq::Family just_the_victim{seq::Domain{2}, {seq::Sequence{0, 0}}};
  const auto verdict = exhaustive_deadlock(
      spec, just_the_victim, {.max_depth = 12, .max_points = 300000});
  EXPECT_TRUE(verdict.deadlock_found);
  if (verdict.deadlock_found) {
    // Stuck strictly short of the input.
    EXPECT_LT(verdict.stuck_output.size(), 2u);
  }
}

// -------------------------------------------------- targeted compatibility --

TEST(Targeted, EmptyViewCompatibleWithEverything) {
  const auto spec = repfree_dup_spec(2);
  const auto family = seq::canonical_repetition_free(2);
  const auto r = compatible_inputs(spec, family, {}, 100, 10000);
  EXPECT_TRUE(r.exhaustive);
  for (bool c : r.compatible) EXPECT_TRUE(c);
}

TEST(Targeted, ViewAfterReceivingZeroExcludesMismatchedInputs) {
  // R's view: received message 0.  Compatible inputs are exactly those
  // whose first item is 0 — <0> and <0 1> — since the repfree sender's
  // first send is its first item.
  const auto spec = repfree_dup_spec(2);
  const auto family = seq::canonical_repetition_free(2);
  sim::LocalHistory view;
  view.push_back(
      sim::LocalEvent{sim::LocalEvent::Kind::kRecv, -1, 0, {}});
  const auto r = compatible_inputs(spec, family, view, 200, 20000);
  ASSERT_EQ(r.compatible.size(), family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    const auto& x = family.members[i];
    const bool starts_with_zero = !x.empty() && x[0] == 0;
    EXPECT_EQ(r.compatible[i], starts_with_zero)
        << seq::to_string(x);
  }
}

TEST(Targeted, LearnTimesMatchExplorationMethod) {
  // The targeted evaluator must agree with the exhaustive one on a run both
  // can handle.
  const int m = 2;
  auto spec = repfree_dup_spec(m);
  spec.engine.record_trace = true;
  spec.engine.record_histories = true;
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  const seq::Sequence x{1, 0};
  const sim::RunResult run = stp::run_one(spec, x, 0);
  ASSERT_TRUE(run.completed);

  const auto family = seq::canonical_repetition_free(m);
  const auto ex = explore(spec, family,
                          {.max_depth = run.stats.steps + 1,
                           .max_points = 1000000});
  const auto exhaustive = learn_times(ex, run);
  const auto targeted = learn_times_targeted(
      spec, family, run, run.stats.steps * 3 + 50, 50000);
  ASSERT_EQ(exhaustive.size(), targeted.size());
  for (std::size_t i = 0; i < exhaustive.size(); ++i) {
    ASSERT_TRUE(exhaustive[i].has_value());
    ASSERT_TRUE(targeted[i].has_value());
    EXPECT_EQ(*exhaustive[i], *targeted[i]) << "t_" << (i + 1);
  }
}

TEST(Targeted, ScalesToRunsBeyondExplorationHorizon) {
  // A deep run (m = 3 under a fair scheduler) is far beyond what explore()
  // can enumerate; the targeted method must still produce full learn times.
  const int m = 3;
  auto spec = repfree_dup_spec(m);
  spec.engine.record_trace = true;
  spec.engine.record_histories = true;
  const seq::Sequence x{2, 0, 1};
  const sim::RunResult run = stp::run_one(spec, x, 3);
  ASSERT_TRUE(run.completed);
  const auto family = seq::canonical_repetition_free(m);
  const auto times = learn_times_targeted(spec, family, run,
                                          run.stats.steps * 3 + 50, 200000);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_TRUE(times[i].has_value()) << "t_" << (i + 1);
    EXPECT_GE(*times[i], prev);
    prev = *times[i];
  }
}

}  // namespace
}  // namespace stpx::knowledge
