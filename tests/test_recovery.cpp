// Tests for the durable recovery layer: blob serialization, the stable
// stores (record framing, checksums, fault semantics, file persistence),
// engine rehydration on crash-restart, recovery observability, and the
// protocol x crash x storage-fault conformance sweep.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "channel/del_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "proto/suite.hpp"
#include "stp/recovery.hpp"
#include "stp/soak.hpp"
#include "store/stable_store.hpp"
#include "util/blob.hpp"
#include "util/expect.hpp"

// ------------------------------------------------------------------ blobs --

namespace stpx::util {
namespace {

TEST(Blob, RoundTrip) {
  BlobWriter w;
  w.i64(-7);
  w.u64(1234567890123ULL);
  w.boolean(true);
  w.vec({5, -1, 0});

  BlobReader r(w.str());
  std::int64_t a = 0;
  std::uint64_t b = 0;
  bool c = false;
  std::vector<std::int64_t> v;
  EXPECT_TRUE(r.i64(a));
  EXPECT_TRUE(r.u64(b));
  EXPECT_TRUE(r.boolean(c));
  EXPECT_TRUE(r.vec(v));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a, -7);
  EXPECT_EQ(b, 1234567890123ULL);
  EXPECT_TRUE(c);
  EXPECT_EQ(v, (std::vector<std::int64_t>{5, -1, 0}));
}

TEST(Blob, ReaderIsDefensive) {
  // Exhaustion, negative-where-unsigned, and an absurd vec length must all
  // report failure without throwing (a failed restore, not UB).
  BlobReader empty("");
  std::int64_t x = 42;
  EXPECT_FALSE(empty.i64(x));
  EXPECT_EQ(x, 42);  // untouched on failure

  BlobReader neg("-3");
  std::uint64_t u = 0;
  EXPECT_FALSE(neg.u64(u));

  BlobReader garbage("12 banana");
  EXPECT_FALSE(garbage.ok());

  BlobReader long_vec("99 1 2");  // claims 99 elements, has 2
  std::vector<std::int64_t> v;
  EXPECT_FALSE(long_vec.vec(v));
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace stpx::util

// ----------------------------------------------------------------- stores --

namespace stpx::store {
namespace {

TEST(RecordCodec, RoundTripAndResync) {
  const std::string a = encode_record("1 2 3");
  const std::string b = encode_record("4 5 6");

  auto units = parse_records(a + b);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_TRUE(units[0].valid);
  EXPECT_EQ(units[0].payload, "1 2 3");
  EXPECT_TRUE(units[1].valid);
  EXPECT_EQ(units[1].payload, "4 5 6");

  // Damage the first record's payload: the checksum rejects it and the
  // parser re-syncs to the second record's magic.
  std::string damaged = a + b;
  damaged[a.size() - 2] ^= 0x1;
  units = parse_records(damaged);
  bool saw_valid_b = false;
  for (const auto& u : units)
    if (u.valid) {
      EXPECT_EQ(u.payload, "4 5 6");
      saw_valid_b = true;
    }
  EXPECT_TRUE(saw_valid_b);
}

TEST(MemStore, NewestValidRecordWins) {
  MemStore s;
  s.reset();
  EXPECT_FALSE(s.recover().found);  // empty store = cold start

  s.append("10");
  s.append("20");
  s.append("30");
  const auto rec = s.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "30");
  EXPECT_EQ(rec.records_replayed, 3u);
  EXPECT_EQ(rec.records_skipped, 0u);
  EXPECT_EQ(s.appends(), 3u);
}

TEST(MemStore, TornWriteLosesOnlyTheTornAppend) {
  MemStore s;
  s.append("10");
  s.fault_torn_next_append();
  s.append("20");  // truncated mid-record
  auto rec = s.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "10");
  EXPECT_GE(rec.records_skipped, 1u);

  // A later intact append supersedes the damage entirely.
  s.append("30");
  rec = s.recover();
  EXPECT_EQ(rec.state, "30");
}

TEST(MemStore, LoseTailRewindsToOlderRecord) {
  MemStore s;
  s.append("10");
  s.append("20");
  s.fault_lose_tail(1);
  const auto rec = s.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "10");

  s.fault_lose_tail(5);  // more than remain: store goes empty, not UB
  EXPECT_FALSE(s.recover().found);
}

TEST(MemStore, CorruptRecordCaughtByChecksum) {
  MemStore s;
  s.append("10");
  s.append("20");
  s.fault_corrupt_record();
  const auto rec = s.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "10");  // damaged newest record is skipped
  EXPECT_GE(rec.records_skipped, 1u);
}

TEST(MemStore, StaleSnapshotReplaysMoreButLandsOnSameState) {
  MemStore s;
  for (int i = 1; i <= 6; ++i) {
    s.append(std::to_string(i * 10));
    if (i == 4) s.compact();
  }
  const auto before = s.recover();
  ASSERT_TRUE(before.found);
  EXPECT_EQ(before.state, "60");

  // Roll compaction back: the old snapshot and the folded-in records
  // reappear.  Records are full states, so only the replay count grows.
  s.fault_stale_snapshot();
  const auto after = s.recover();
  EXPECT_TRUE(after.found);
  EXPECT_EQ(after.state, "60");
  EXPECT_GT(after.records_replayed, before.records_replayed);
}

TEST(MemStore, ResetWipesEverything) {
  MemStore s;
  s.append("10");
  s.compact();
  s.append("20");
  s.reset();
  EXPECT_FALSE(s.recover().found);
  EXPECT_EQ(s.appends(), 0u);
}

TEST(FileStore, PersistsAcrossInstances) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_filestore").string();
  {
    FileStore a(dir);
    a.reset();
    a.append("1 2");
    a.append("3 4");
    a.compact();
    a.append("5 6");
  }
  // A second store on the same directory sees the same bytes: the files,
  // not the object, are the source of truth.
  FileStore b(dir);
  const auto rec = b.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "5 6");

  // Faults round-trip through the files too.
  b.fault_corrupt_record();
  FileStore c(dir);
  const auto after = c.recover();
  EXPECT_TRUE(after.found);
  EXPECT_EQ(after.state, "3 4");  // snapshot state, newest log record damaged
  EXPECT_GE(after.records_skipped, 1u);
  std::filesystem::remove_all(dir);
}

TEST(FileStore, TornWriteTruncatesOnDisk) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "stpx_filestore_torn")
          .string();
  FileStore s(dir);
  s.reset();
  s.append("11");
  s.fault_torn_next_append();
  s.append("22");
  const auto rec = s.recover();
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.state, "11");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stpx::store

// ---------------------------------------------------- engine rehydration --

namespace stpx::stp {
namespace {

SystemSpec stenning_spec(int m) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_stenning(m); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  spec.engine.stall_window = 4000;
  return spec;
}

SystemSpec repfree_del_spec(int m) {
  SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 100000;
  spec.engine.stall_window = 4000;
  return spec;
}

seq::Sequence iota(int n) {
  seq::Sequence x;
  for (int i = 0; i < n; ++i) x.push_back(i);
  return x;
}

TEST(Rehydration, StenningReceiverCrashCompletesWithStore) {
  // The durable counterpart of CrashRestart.StenningReceiverAmnesiaIsSafe-
  // ButStalls (test_fault.cpp): the same crash that permanently stalls an
  // amnesiac receiver is a non-event once its cursor lives in a store.
  auto spec = stenning_spec(6);
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = fault::plan_from_text("crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(r.stats.crashes[1], 1u);
  EXPECT_EQ(r.stats.recoveries, 1u);
  EXPECT_GE(r.stats.records_replayed, 1u);
}

TEST(Rehydration, RepFreeReceiverStoreDefusesTheAmnesiaHazard) {
  // The exact schedule of CrashRestart.RepFreeReceiverAmnesiaViolatesSafety
  // (dup a stale copy into flight, crash the receiver) — but with stable
  // stores attached, seen_ survives the crash and the stale copy is
  // correctly ignored instead of re-written.
  auto spec = repfree_del_spec(6);
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = fault::plan_from_text(
      "dup @step 1 dir SR count 6 match *\n"
      "crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 1);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_EQ(r.stats.crashes[1], 1u);
  EXPECT_EQ(r.stats.recoveries, 1u);
}

// ---------------------------------------------------------- observability --

TEST(RecoveryObs, MetricsFlowOnRehydratedRestart) {
  auto spec = stenning_spec(6);
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  obs::MetricsRegistry reg;
  obs::MetricsProbe probe(&reg);
  spec.engine.probe = &probe;
  const auto plan = fault::plan_from_text("crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  ASSERT_EQ(r.verdict, sim::RunVerdict::kCompleted);

  EXPECT_EQ(reg.counter_value("crashes.receiver"), 1u);
  EXPECT_EQ(reg.counter_value("recoveries"), 1u);
  EXPECT_EQ(reg.counter_value("recoveries.cold"), 0u);
  EXPECT_GE(reg.counter_value("records_replayed"), 1u);
  // The restart->next-write latency histogram saw exactly that recovery.
  const auto& lat = reg.histograms().at("recovery.latency");
  EXPECT_EQ(lat.count(), 1u);
}

TEST(RecoveryObs, ColdRestartCountsAsCold) {
  auto spec = stenning_spec(6);  // no stores attached
  spec.engine.stall_window = 3000;
  obs::MetricsRegistry reg;
  obs::MetricsProbe probe(&reg);
  spec.engine.probe = &probe;
  const auto plan = fault::plan_from_text("crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 11);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStalled);  // amnesia stall, as ever

  EXPECT_EQ(reg.counter_value("recoveries"), 0u);
  EXPECT_EQ(reg.counter_value("recoveries.cold"), 1u);
  EXPECT_EQ(reg.counter_value("records_replayed"), 0u);
}

/// Records crash/restart hook pairs for the probe-contract test.
struct RestartRecorder final : obs::IProbe {
  struct Crash {
    std::uint64_t step;
    sim::Proc who;
  };
  struct Restart {
    std::uint64_t step;
    sim::Proc who;
    bool rehydrated;
    std::uint64_t records_replayed;
  };
  std::vector<Crash> crashes;
  std::vector<Restart> restarts;

  void on_crash(std::uint64_t step, sim::Proc who) override {
    crashes.push_back({step, who});
  }
  void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                  std::uint64_t records_replayed) override {
    restarts.push_back({step, who, rehydrated, records_replayed});
  }
};

TEST(RecoveryObs, RestartEventPairsWithCrashAndFlagsRehydration) {
  const auto plan = fault::plan_from_text("crash-receiver @writes 2\n");

  // With a store: the restart is flagged as a rehydration.
  auto spec = stenning_spec(6);
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  RestartRecorder warm;
  spec.engine.probe = &warm;
  ASSERT_EQ(run_one(with_chaos(spec, plan), iota(6), 11).verdict,
            sim::RunVerdict::kCompleted);
  ASSERT_EQ(warm.crashes.size(), 1u);
  ASSERT_EQ(warm.restarts.size(), 1u);
  EXPECT_EQ(warm.restarts[0].step, warm.crashes[0].step);
  EXPECT_EQ(warm.restarts[0].who, sim::Proc::kReceiver);
  EXPECT_TRUE(warm.restarts[0].rehydrated);
  EXPECT_GE(warm.restarts[0].records_replayed, 1u);

  // Without one: same pairing, but the restart is a cold start.
  auto bare = stenning_spec(6);
  bare.engine.stall_window = 3000;
  RestartRecorder cold;
  bare.engine.probe = &cold;
  run_one(with_chaos(bare, plan), iota(6), 11);
  ASSERT_EQ(cold.restarts.size(), 1u);
  EXPECT_FALSE(cold.restarts[0].rehydrated);
  EXPECT_EQ(cold.restarts[0].records_replayed, 0u);
}

// ------------------------------------------------------------ conformance --

TEST(Conformance, RecoveryPlanShape) {
  const auto plan =
      recovery_plan(fault::FaultKind::kLoseTail, sim::Proc::kReceiver,
                    /*biting=*/true);
  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, fault::FaultKind::kLoseTail);
  EXPECT_EQ(plan.actions[0].proc, sim::Proc::kReceiver);
  EXPECT_EQ(plan.actions[1].kind, fault::FaultKind::kCrashReceiver);
  // Only storage-fault kinds are accepted.
  EXPECT_THROW(
      recovery_plan(fault::FaultKind::kDropBurst, sim::Proc::kSender, true),
      ContractError);
}

TEST(Conformance, EveryProtocolSurvivesEveryStorageFault) {
  // The headline acceptance test: the full matrix — every protocol in the
  // suite x all four storage-fault kinds x crash of either process — must
  // complete with at least one real crash and one rehydrated recovery.
  const auto cases = default_recovery_cases();
  const RecoveryReport report = recovery_sweep(cases, 2026);
  EXPECT_EQ(report.trials.size(), cases.size() * 4 * 2);
  for (const auto& t : report.trials)
    if (!t.detail.empty()) ADD_FAILURE() << t.detail;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.completed, report.trials.size());
}

/// A deliberately broken recovery path: claims restore_state succeeded but
/// restores nothing.  The conformance machinery must catch the lie as a
/// recovery-specific verdict, not a plain safety violation.
class AmnesiacRestoreReceiver final : public sim::IReceiver {
 public:
  explicit AmnesiacRestoreReceiver(std::unique_ptr<sim::IReceiver> inner)
      : inner_(std::move(inner)) {}

  void start() override { inner_->start(); }
  sim::ReceiverEffect on_step() override { return inner_->on_step(); }
  void on_deliver(sim::MsgId msg) override { inner_->on_deliver(msg); }
  int alphabet_size() const override { return inner_->alphabet_size(); }
  std::string save_state() const override { return inner_->save_state(); }
  bool restore_state(const std::string&, const seq::Sequence&) override {
    return true;  // the lie: "restored" with the inner state still blank
  }
  std::unique_ptr<sim::IReceiver> clone() const override {
    return std::make_unique<AmnesiacRestoreReceiver>(inner_->clone());
  }
  std::string name() const override {
    return "amnesiac-restore(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<sim::IReceiver> inner_;
};

TEST(Conformance, BrokenRestoreIsCaughtAsRecoveryViolation) {
  auto spec = repfree_del_spec(6);
  spec.protocols = [] {
    proto::ProtocolPair pair = proto::make_repfree_del(6);
    pair.receiver =
        std::make_unique<AmnesiacRestoreReceiver>(std::move(pair.receiver));
    return pair;
  };
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = fault::plan_from_text(
      "dup @step 1 dir SR count 6 match *\n"
      "crash-receiver @writes 2\n");
  const auto r = run_one(with_chaos(spec, plan), iota(6), 1);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kRecoveryViolation);
  EXPECT_FALSE(r.safety_ok);
  EXPECT_EQ(r.stats.recoveries, 1u);  // the engine believed the restore
}

// ----------------------------------------------------------------- hazard --
// The two (process, protocol) combinations declared rewind-unsafe in
// default_recovery_cases() get superseded fault placement there; these tests
// pin down what a *biting* rewind actually does to them, so the exclusions
// stay honest.

bool post_crash_failure(sim::RunVerdict v) {
  return v == sim::RunVerdict::kRecoveryViolation ||
         v == sim::RunVerdict::kStalled;
}

TEST(Hazard, RepFreeDelSenderCannotTolerateARewoundCheckpoint) {
  // A lose-tail that bites the sender's newest record rewinds next_ by one;
  // the re-sent item is one the receiver has already seen and (in del mode)
  // silently eats, so no ack ever names it: the W = a+1 stall.
  auto spec = repfree_del_spec(6);
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = recovery_plan(fault::FaultKind::kLoseTail,
                                  sim::Proc::kSender, /*biting=*/true);
  const auto r = run_one(with_chaos(spec, plan), iota(6), 1);
  EXPECT_TRUE(post_crash_failure(r.verdict))
      << sim::to_cstr(r.verdict) << " after " << r.stats.steps << " steps";
  EXPECT_GE(r.stats.recoveries, 1u);
}

TEST(Hazard, AbpSenderRewindAliasesHeaderBits) {
  // A rewound ABP sender re-sends an item whose alternating bit the
  // receiver has already cycled past; on a FIFO channel the re-sent copy
  // arrives *behind* newer traffic carrying the bit the receiver now
  // expects — and is accepted as the next item.  The same aliasing breaks
  // every bounded-header sender (modk, block, hybrid), which is why they
  // are declared sender-rewind-unsafe in default_recovery_cases().
  SystemSpec spec;
  spec.protocols = [] { return proto::make_abp(6); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::FifoChannel>(0.2, 0.1, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 300000;
  spec.engine.stall_window = 4000;
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = recovery_plan(fault::FaultKind::kLoseTail,
                                  sim::Proc::kSender, /*biting=*/true);
  const auto r = run_one(with_chaos(spec, plan), iota(6), 2026);
  EXPECT_TRUE(post_crash_failure(r.verdict))
      << sim::to_cstr(r.verdict) << " after " << r.stats.steps << " steps";
  EXPECT_GE(r.stats.recoveries, 1u);
}

TEST(Hazard, SyncStopWaitSenderCannotTolerateARewoundCheckpoint) {
  // No headers means no dedup anywhere: a sender whose checkpoint rewinds
  // re-sends an item the receiver has already written, and the receiver —
  // whose whole correctness argument is "every arrival is the next item" —
  // writes it again.  (The receiver side is mostly healed by tape
  // reconciliation; only buffered-but-unwritten items are at risk there.)
  SystemSpec spec;
  spec.protocols = [] { return proto::make_sync_stop_wait(6); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::SyncLossChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  spec.engine.stall_window = 4000;
  store::MemStore sstore, rstore;
  spec.engine.sender_store = &sstore;
  spec.engine.receiver_store = &rstore;
  const auto plan = recovery_plan(fault::FaultKind::kLoseTail,
                                  sim::Proc::kSender, /*biting=*/true);
  const auto r = run_one(with_chaos(spec, plan), iota(6), 3);
  EXPECT_TRUE(post_crash_failure(r.verdict))
      << sim::to_cstr(r.verdict) << " after " << r.stats.steps << " steps";
  EXPECT_GE(r.stats.recoveries, 1u);
}

}  // namespace
}  // namespace stpx::stp
