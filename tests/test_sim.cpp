// Tests for the simulation kernel: step semantics (one action per step, no
// same-step delivery), online safety checking, trace and history recording,
// determinism/replay, and engine cloning.
#include <gtest/gtest.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/replay.hpp"
#include "util/expect.hpp"

namespace stpx::sim {
namespace {

// A deliberately naive test protocol: the sender emits item i as message i
// (so it needs an unbounded alphabet for long inputs); the receiver writes
// whatever arrives, in arrival order, and never acknowledges.  Correct only
// on channels that deliver each message exactly once and in order — which is
// exactly what makes it useful for exercising the kernel.
class BlindSender final : public ISender {
 public:
  void start(const seq::Sequence& x) override {
    x_ = x;
    next_ = 0;
  }
  SenderEffect on_step() override {
    if (next_ < x_.size()) {
      return SenderEffect{.send = MsgId{x_[next_++]}};
    }
    return SenderEffect{};
  }
  void on_deliver(MsgId) override {}
  int alphabet_size() const override { return kUnboundedAlphabet; }
  std::unique_ptr<ISender> clone() const override {
    return std::make_unique<BlindSender>(*this);
  }
  std::string name() const override { return "blind-sender"; }

 private:
  seq::Sequence x_;
  std::size_t next_ = 0;
};

class BlindReceiver final : public IReceiver {
 public:
  void start() override { pending_.clear(); }
  ReceiverEffect on_step() override {
    ReceiverEffect eff;
    eff.writes = std::move(pending_);
    pending_.clear();
    return eff;
  }
  void on_deliver(MsgId msg) override {
    pending_.push_back(static_cast<seq::DataItem>(msg));
  }
  int alphabet_size() const override { return kUnboundedAlphabet; }
  std::unique_ptr<IReceiver> clone() const override {
    return std::make_unique<BlindReceiver>(*this);
  }
  std::string name() const override { return "blind-receiver"; }

 private:
  std::vector<seq::DataItem> pending_;
};

Engine make_engine(std::unique_ptr<IChannel> ch,
                   std::unique_ptr<IScheduler> sched,
                   EngineConfig cfg = {}) {
  return Engine(std::make_unique<BlindSender>(),
                std::make_unique<BlindReceiver>(), std::move(ch),
                std::move(sched), cfg);
}

TEST(Engine, RequiresBeginBeforeStepping) {
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>());
  EXPECT_THROW(e.view(), ContractError);
  EXPECT_THROW(e.apply(Action{ActionKind::kSenderStep, -1}), ContractError);
}

TEST(Engine, NoSameStepDelivery) {
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>());
  e.begin({7});
  // Before the sender steps, nothing is deliverable.
  EXPECT_TRUE(e.view().deliverable_to_receiver.empty());
  e.apply(Action{ActionKind::kSenderStep, -1});
  // The send happened *during* that step; only now is it deliverable.
  ASSERT_EQ(e.view().deliverable_to_receiver.size(), 1u);
  EXPECT_EQ(e.view().deliverable_to_receiver[0], 7);
}

TEST(Engine, IllegalDeliveryRejected) {
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>());
  e.begin({1});
  EXPECT_FALSE(e.legal(Action{ActionKind::kDeliverToReceiver, 1}));
  EXPECT_THROW(e.apply(Action{ActionKind::kDeliverToReceiver, 1}),
               ContractError);
}

TEST(Engine, CompletesOnBenignSchedule) {
  EngineConfig cfg;
  cfg.max_steps = 1000;
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>(), cfg);
  const seq::Sequence x{3, 1, 4, 1, 5};
  const RunResult r = e.run(x);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_EQ(r.output, x);
  EXPECT_EQ(r.stats.write_step.size(), x.size());
  // Write steps are monotonically increasing.
  for (std::size_t i = 1; i < r.stats.write_step.size(); ++i) {
    EXPECT_LT(r.stats.write_step[i - 1], r.stats.write_step[i]);
  }
}

TEST(Engine, DetectsSafetyViolationOnDupChannel) {
  // The blind protocol misbehaves on a duplicating channel: a replayed
  // message makes the receiver write a wrong item.  The kernel must flag it.
  EngineConfig cfg;
  cfg.max_steps = 2000;
  auto e = make_engine(
      std::make_unique<channel::DupChannel>(),
      std::make_unique<channel::FairRandomScheduler>(std::uint64_t{123}),
      cfg);
  const RunResult r = e.run({0, 1, 2, 3});
  // With replays happening constantly, safety must eventually break.
  EXPECT_FALSE(r.safety_ok);
  EXPECT_FALSE(r.completed);
}

TEST(Engine, DeterministicReplayFromSeed) {
  EngineConfig cfg;
  cfg.max_steps = 500;
  cfg.record_trace = true;
  const seq::Sequence x{2, 0, 1};
  auto run_with_seed = [&](std::uint64_t seed) {
    auto e = make_engine(std::make_unique<channel::DelChannel>(),
                         std::make_unique<channel::FairRandomScheduler>(seed),
                         cfg);
    return e.run(x);
  };
  const RunResult a = run_with_seed(99);
  const RunResult b = run_with_seed(99);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].action, b.trace[i].action) << "step " << i;
  }
  EXPECT_EQ(a.output, b.output);
}

TEST(Engine, ScriptReplayReproducesRun) {
  EngineConfig cfg;
  cfg.max_steps = 500;
  cfg.record_trace = true;
  const seq::Sequence x{1, 2};
  auto e1 = make_engine(
      std::make_unique<channel::DelChannel>(),
      std::make_unique<channel::FairRandomScheduler>(std::uint64_t{7}), cfg);
  const RunResult first = e1.run(x);
  ASSERT_TRUE(first.completed);

  std::vector<Action> script;
  script.reserve(first.trace.size());
  for (const auto& ev : first.trace) script.push_back(ev.action);

  auto e2 = make_engine(std::make_unique<channel::DelChannel>(),
                        std::make_unique<channel::ScriptedScheduler>(script),
                        cfg);
  const RunResult second = e2.run(x);
  EXPECT_EQ(second.output, first.output);
  EXPECT_EQ(second.stats.steps, first.stats.steps);
}

TEST(Engine, HistoriesRecordCompleteLocalView) {
  EngineConfig cfg;
  cfg.max_steps = 200;
  cfg.record_histories = true;
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>(), cfg);
  const RunResult r = e.run({5});
  ASSERT_TRUE(r.completed);
  // The receiver history must contain exactly one receive of message 5 and
  // one step that wrote item 5.
  int recvs = 0, writes = 0;
  for (const auto& ev : r.receiver_history) {
    if (ev.kind == LocalEvent::Kind::kRecv) {
      ++recvs;
      EXPECT_EQ(ev.received, 5);
    } else if (!ev.writes.empty()) {
      ++writes;
      EXPECT_EQ(ev.writes, (std::vector<seq::DataItem>{5}));
    }
  }
  EXPECT_EQ(recvs, 1);
  EXPECT_EQ(writes, 1);
  // Sender history: exactly one step sent message 5.
  int sends = 0;
  for (const auto& ev : r.sender_history) {
    if (ev.kind == LocalEvent::Kind::kStep && ev.sent == 5) ++sends;
  }
  EXPECT_EQ(sends, 1);
}

TEST(Trace, TraceEventToStringGolden) {
  // These strings are a stable external format (the JSONL sink and the soak
  // failure reports embed them) — changes here are format breaks.
  TraceEvent plain;
  plain.step = 3;
  plain.action = {ActionKind::kSenderStep, -1};
  EXPECT_EQ(to_string(plain), "#3 S-step");

  TraceEvent sent = plain;
  sent.did_send = true;
  sent.sent = 7;
  EXPECT_EQ(to_string(sent), "#3 S-step sent=7");

  TraceEvent deliver;
  deliver.step = 12;
  deliver.action = {ActionKind::kDeliverToReceiver, 5};
  EXPECT_EQ(to_string(deliver), "#12 deliver->R msg=5");

  TraceEvent wrote;
  wrote.step = 13;
  wrote.action = {ActionKind::kReceiverStep, -1};
  wrote.did_send = true;
  wrote.sent = 2;
  wrote.writes = {1, 0};
  EXPECT_EQ(to_string(wrote), "#13 R-step sent=2 wrote=1,0");

  TraceEvent ack;
  ack.step = 20;
  ack.action = {ActionKind::kDeliverToSender, 9};
  EXPECT_EQ(to_string(ack), "#20 deliver->S msg=9");
}

TEST(Trace, HistoryKeyGolden) {
  // history_key is the ~_p grouping key used across the knowledge layer;
  // its exact spelling must stay stable so persisted keys keep matching.
  EXPECT_EQ(history_key(LocalHistory{}), "");

  LocalHistory h;
  h.push_back(LocalEvent{LocalEvent::Kind::kStep, 4, -1, {}});
  h.push_back(LocalEvent{LocalEvent::Kind::kRecv, -1, 6, {}});
  h.push_back(LocalEvent{LocalEvent::Kind::kStep, -1, -1, {2, 0}});
  EXPECT_EQ(history_key(h), "s4;r6;s-1w2,0,;");
}

TEST(Engine, HistoryKeyDistinguishesDifferentHistories) {
  LocalHistory a{LocalEvent{LocalEvent::Kind::kRecv, -1, 3, {}}};
  LocalHistory b{LocalEvent{LocalEvent::Kind::kRecv, -1, 4, {}}};
  LocalHistory c{LocalEvent{LocalEvent::Kind::kStep, 3, -1, {}}};
  EXPECT_NE(history_key(a), history_key(b));
  EXPECT_NE(history_key(a), history_key(c));
  EXPECT_EQ(history_key(a), history_key(LocalHistory{a}));
}

TEST(Engine, CloneBranchesIndependently) {
  EngineConfig cfg;
  cfg.max_steps = 100;
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>(), cfg);
  e.begin({8, 9});
  e.apply(Action{ActionKind::kSenderStep, -1});  // sends 8

  auto fork = e.clone();
  // Advance the fork; the original must be unaffected.
  fork->apply(Action{ActionKind::kDeliverToReceiver, 8});
  fork->apply(Action{ActionKind::kReceiverStep, -1});
  EXPECT_EQ(fork->output().size(), 1u);
  EXPECT_TRUE(e.output().empty());
  EXPECT_EQ(e.steps(), 1u);
  EXPECT_EQ(fork->steps(), 3u);
}

TEST(Engine, StatsCountSendsAndDeliveries) {
  EngineConfig cfg;
  cfg.max_steps = 1000;
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>(), cfg);
  const RunResult r = e.run({0, 1, 2});
  EXPECT_EQ(r.stats.sent[0], 3u);       // three data messages S->R
  EXPECT_EQ(r.stats.delivered[0], 3u);  // all delivered
  EXPECT_EQ(r.stats.sent[1], 0u);       // blind receiver never acks
}

TEST(Engine, MaxStepsCapRespected) {
  EngineConfig cfg;
  cfg.max_steps = 10;
  // Empty input: completes immediately, but run with nonempty input and a
  // scheduler that never delivers.
  std::vector<Action> starve(20, Action{ActionKind::kSenderStep, -1});
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::ScriptedScheduler>(starve),
                       cfg);
  const RunResult r = e.run({1});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.stats.steps, 10u);
}

TEST(Replay, ScriptFromTraceMatchesActions) {
  EngineConfig cfg;
  cfg.max_steps = 500;
  cfg.record_trace = true;
  auto e = make_engine(
      std::make_unique<channel::DelChannel>(),
      std::make_unique<channel::FairRandomScheduler>(std::uint64_t{5}), cfg);
  const RunResult r = e.run({4, 2});
  const auto script = script_from_trace(r.trace);
  ASSERT_EQ(script.size(), r.trace.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(script[i], r.trace[i].action);
  }
}

TEST(Replay, TextRoundTrip) {
  const std::vector<Action> script{
      {ActionKind::kSenderStep, -1},
      {ActionKind::kDeliverToReceiver, 7},
      {ActionKind::kReceiverStep, -1},
      {ActionKind::kDeliverToSender, 0},
  };
  const std::string text = script_to_text(script);
  EXPECT_EQ(text, "S\nD>R 7\nR\nD>S 0\n");
  EXPECT_EQ(script_from_text(text), script);
}

TEST(Replay, TextParserSkipsBlankLinesAndRejectsGarbage) {
  EXPECT_EQ(script_from_text("S\n\nR\n").size(), 2u);
  EXPECT_THROW(script_from_text("X\n"), ContractError);
  EXPECT_THROW(script_from_text("D>R\n"), ContractError);  // missing id
}

TEST(Replay, FullRoundTripThroughScriptedScheduler) {
  // Record a random run, serialize to text, parse back, replay — outputs
  // and step counts must be identical.
  EngineConfig cfg;
  cfg.max_steps = 2000;
  cfg.record_trace = true;
  const seq::Sequence x{9, 8, 7};
  auto e1 = make_engine(
      std::make_unique<channel::DelChannel>(),
      std::make_unique<channel::FairRandomScheduler>(std::uint64_t{17}),
      cfg);
  const RunResult first = e1.run(x);
  ASSERT_TRUE(first.completed);

  const auto script =
      script_from_text(script_to_text(script_from_trace(first.trace)));
  auto e2 = make_engine(std::make_unique<channel::DelChannel>(),
                        std::make_unique<channel::ScriptedScheduler>(script),
                        cfg);
  const RunResult second = e2.run(x);
  EXPECT_EQ(second.output, first.output);
  EXPECT_EQ(second.stats.steps, first.stats.steps);
}

TEST(Engine, EmptyInputCompletesTrivially) {
  auto e = make_engine(std::make_unique<channel::DelChannel>(),
                       std::make_unique<channel::RoundRobinScheduler>());
  const RunResult r = e.run({});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_EQ(r.stats.steps, 0u);
}

}  // namespace
}  // namespace stpx::sim
