// Fabric resilience v2 conformance suite (ctest -L rejoin_smoke):
//
//   * HandshakeRetry — the injected-time dialer FSM: first send always
//     due, jittered exponential backoff, deterministic replay, attempt
//     exhaustion, ack short-circuit;
//   * HealthMonitor edges — a maintenance pause forgiving strikes
//     mid-ladder resets the backoff-grown timeout to base; an ack landing
//     during a pause is ignored without prejudice; probation lifts only
//     on consecutive acks and striking out is a second sticky death;
//   * MembershipTable — revive() stamps a fresh incarnation, turning the
//     pre-fence owner entries stale; pick_survivor ignores stale load;
//   * the fabric fault-plan grammar — text round-trip, span windows,
//     partitions, malformed input;
//   * Nameserver / ResolverTransport — lease grants, dead/stale fencing,
//     epoch-fenced redirects invalidating cached leases;
//   * the rejoin/reclaim loop end to end — crash, re-home, kJoin under a
//     fresh generation, probation, release/reclaim absorbs, epoch bump —
//     including a seeded trial with a survivor partitioned mid-run, and
//     cross-generation prefix attestation from the merged trace alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "fabric/health.hpp"
#include "fabric/nameserver.hpp"
#include "fabric/resolver.hpp"
#include "fault/fabric_plan.hpp"
#include "net/retry.hpp"
#include "obs/metrics.hpp"
#include "stp/fabric_soak.hpp"
#include "util/expect.hpp"

namespace stpx {
namespace {

using namespace std::chrono_literals;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// --------------------------------------------------------------------------
// HandshakeRetry — the injected-time dialer FSM
// --------------------------------------------------------------------------

using clock_tp = std::chrono::steady_clock::time_point;

clock_tp at(std::chrono::microseconds offset) {
  return clock_tp{} + 1h + offset;
}

TEST(HandshakeRetry, FirstSendIsAlwaysDue) {
  net::HandshakeRetry fsm;
  EXPECT_TRUE(fsm.should_send(at(0us)));
  EXPECT_EQ(fsm.attempts(), 1u);
  // The next send is NOT due until the scheduled backoff elapses.
  EXPECT_FALSE(fsm.should_send(at(1us)));
}

TEST(HandshakeRetry, BackoffGrowsExponentiallyWithinJitterBounds) {
  net::RetryConfig cfg;
  cfg.max_attempts = 6;
  cfg.base_delay = 1'000us;
  cfg.backoff = 2.0;
  cfg.max_delay = 200'000us;
  cfg.jitter = 0.25;
  net::HandshakeRetry fsm(cfg);
  auto now = at(0us);
  std::int64_t prev = 0;
  for (std::uint32_t i = 1; i <= cfg.max_attempts; ++i) {
    ASSERT_TRUE(fsm.should_send(now)) << "attempt " << i;
    const auto d = fsm.last_delay().count();
    // base * 2^(i-1) stretched by [1, 1.25): the schedule is exponential
    // and the jitter never exceeds its configured fraction.
    const auto lo = 1'000ll << (i - 1);
    EXPECT_GE(d, lo) << "attempt " << i;
    EXPECT_LT(d, lo + lo / 4 + 1) << "attempt " << i;
    EXPECT_GT(d, prev) << "attempt " << i;
    prev = d;
    now += fsm.last_delay();
  }
  EXPECT_FALSE(fsm.should_send(now));  // attempts exhausted
  EXPECT_TRUE(fsm.exhausted(now));
}

TEST(HandshakeRetry, JitterIsDeterministicPerSeedAndSpreadsAcrossSeeds) {
  net::RetryConfig a;
  a.jitter_seed = 41;
  net::RetryConfig b = a;
  net::RetryConfig c;
  c.jitter_seed = 42;
  net::HandshakeRetry fa(a), fb(b), fc(c);
  auto now = at(0us);
  bool seeds_differ = false;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fa.should_send(now));
    ASSERT_TRUE(fb.should_send(now));
    ASSERT_TRUE(fc.should_send(now));
    // Same seed: the replay is exact.  Different seed: some attempt must
    // land on a different jitter draw.
    EXPECT_EQ(fa.last_delay(), fb.last_delay());
    seeds_differ = seeds_differ || fa.last_delay() != fc.last_delay();
    now += std::chrono::microseconds(500'000);
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(HandshakeRetry, AckStopsSendingAndNeverExhausts) {
  net::RetryConfig cfg;
  cfg.max_attempts = 2;
  net::HandshakeRetry fsm(cfg);
  ASSERT_TRUE(fsm.should_send(at(0us)));
  fsm.on_ack();
  EXPECT_TRUE(fsm.acked());
  EXPECT_FALSE(fsm.should_send(at(10s)));
  EXPECT_FALSE(fsm.exhausted(at(10s)));
}

TEST(HandshakeRetry, ExhaustionRequiresTheLastDeadlineToPass) {
  net::RetryConfig cfg;
  cfg.max_attempts = 1;
  cfg.base_delay = 5'000us;
  cfg.jitter = 0.0;
  net::HandshakeRetry fsm(cfg);
  ASSERT_TRUE(fsm.should_send(at(0us)));
  // Out of attempts but the confirm may still be in flight until the
  // scheduled deadline: not exhausted yet.
  EXPECT_FALSE(fsm.exhausted(at(1'000us)));
  EXPECT_TRUE(fsm.exhausted(at(5'000us)));
}

// --------------------------------------------------------------------------
// HealthMonitor — maintenance-pause and probation edges
// --------------------------------------------------------------------------

fabric::HealthConfig edge_health() {
  fabric::HealthConfig h;
  h.probe_interval = 1ms;
  h.probe_timeout = 10ms;
  h.max_strikes = 3;
  h.backoff = 4.0;
  h.max_timeout = 1s;
  h.probation_acks = 2;
  return h;
}

TEST(HealthEdges, PauseForgivesStrikesAndResetsBackoffToBase) {
  fabric::HealthMonitor hm(edge_health());
  hm.add_backend(1, at(0us));
  ASSERT_TRUE(hm.next_probe(1, at(0us)));
  // First strike at +11ms: the timeout ladder grows 10ms -> 40ms.
  ASSERT_TRUE(hm.next_probe(1, at(11ms)));
  EXPECT_EQ(hm.strikes(1), 1u);
  // Maintenance pause mid-ladder: strikes forgiven.
  hm.set_paused(1, true, at(12ms));
  EXPECT_EQ(hm.strikes(1), 0u);
  hm.set_paused(1, false, at(20ms));
  // Next probe one interval out, not immediately.
  EXPECT_FALSE(hm.next_probe(1, at(20ms)));
  ASSERT_TRUE(hm.next_probe(1, at(21ms)));
  // The backoff must be back at BASE: a 10ms timeout charges a strike at
  // +32ms.  Had the pre-pause 40ms ladder survived, this probe would
  // still be comfortably outstanding and no strike could be charged.
  ASSERT_TRUE(hm.next_probe(1, at(32ms)));
  EXPECT_EQ(hm.strikes(1), 1u);
}

TEST(HealthEdges, AckDuringPauseIsNeitherLateNorStray) {
  fabric::HealthMonitor hm(edge_health());
  hm.add_backend(1, at(0us));
  const auto nonce = hm.next_probe(1, at(0us));
  ASSERT_TRUE(nonce);
  hm.set_paused(1, true, at(1ms));
  // The in-flight answer to a probe we stopped caring about: ignored
  // without prejudice.
  hm.on_ack(1, *nonce, at(2ms));
  EXPECT_EQ(hm.stats().late_or_stray_acks, 0u);
  EXPECT_EQ(hm.stats().acks, 0u);
  EXPECT_EQ(fabric::BackendHealth::kAlive, hm.health(1, at(3ms)));
}

TEST(HealthEdges, ProbationLiftsOnlyAfterConsecutiveAcks) {
  fabric::HealthMonitor hm(edge_health());
  hm.add_backend(1, at(0us));
  // Ride the ladder to death: strikes at 10/40/160ms boundaries.
  ASSERT_TRUE(hm.next_probe(1, at(0us)));
  ASSERT_TRUE(hm.next_probe(1, at(11ms)));
  ASSERT_TRUE(hm.next_probe(1, at(52ms)));
  EXPECT_FALSE(hm.next_probe(1, at(213ms)));  // third strike: dead
  EXPECT_EQ(fabric::BackendHealth::kDead, hm.health(1, at(213ms)));
  EXPECT_FALSE(hm.rejoin(99, at(214ms)));  // unknown backend
  // Probation opens; verdict stays kSuspect until BOTH acks are in.
  ASSERT_TRUE(hm.rejoin(1, at(214ms)));
  EXPECT_FALSE(hm.rejoin(1, at(214ms)));  // no longer dead: no-op
  EXPECT_TRUE(hm.on_probation(1));
  const auto n1 = hm.next_probe(1, at(214ms));
  ASSERT_TRUE(n1);
  hm.on_ack(1, *n1, at(215ms));
  EXPECT_EQ(fabric::BackendHealth::kSuspect, hm.health(1, at(215ms)));
  EXPECT_TRUE(hm.on_probation(1));
  const auto n2 = hm.next_probe(1, at(216ms));
  ASSERT_TRUE(n2);
  hm.on_ack(1, *n2, at(217ms));
  EXPECT_EQ(fabric::BackendHealth::kAlive, hm.health(1, at(217ms)));
  EXPECT_FALSE(hm.on_probation(1));
  EXPECT_EQ(hm.stats().probation_passes, 1u);
}

TEST(HealthEdges, ProbationStrikeOutIsASecondStickyDeath) {
  auto cfg = edge_health();
  cfg.max_strikes = 2;
  fabric::HealthMonitor hm(cfg);
  hm.add_backend(1, at(0us));
  ASSERT_TRUE(hm.next_probe(1, at(0us)));
  ASSERT_TRUE(hm.next_probe(1, at(11ms)));   // strike 1
  EXPECT_FALSE(hm.next_probe(1, at(52ms)));  // strike 2: dead
  ASSERT_TRUE(hm.rejoin(1, at(60ms)));
  ASSERT_TRUE(hm.next_probe(1, at(60ms)));
  // Silence through probation: the ladder condemns again (strike 1 at
  // +10ms re-probes with a 40ms timeout; its expiry is the second death).
  ASSERT_TRUE(hm.next_probe(1, at(71ms)));
  EXPECT_FALSE(hm.next_probe(1, at(112ms)));
  EXPECT_EQ(fabric::BackendHealth::kDead, hm.health(1, at(200ms)));
  EXPECT_EQ(hm.stats().probation_failures, 1u);
  EXPECT_FALSE(hm.on_probation(1));
  // ... and a fresh rejoin() is still the door back.
  EXPECT_TRUE(hm.rejoin(1, at(300ms)));
}

// --------------------------------------------------------------------------
// MembershipTable — incarnation-stamped entries
// --------------------------------------------------------------------------

TEST(MembershipStaleness, ReviveTurnsPreFenceEntriesStale) {
  fabric::MembershipTable m;
  m.add_backend(1);
  m.add_backend(2);
  m.assign(7, 1);
  const auto fresh = m.resolve(7);
  ASSERT_TRUE(fresh);
  EXPECT_FALSE(fresh->stale);
  EXPECT_EQ(fresh->generation, m.incarnation(1));

  m.set_health(1, fabric::BackendHealth::kDead);
  const auto e0 = m.epoch();
  const auto inc = m.revive(1);
  EXPECT_EQ(inc, m.incarnation(1));
  EXPECT_GT(m.epoch(), e0);  // every revive is an ownership-truth rewrite
  // The entry survives but is stamped by the fenced incarnation: stale.
  const auto stale = m.resolve(7);
  ASSERT_TRUE(stale);
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(stale->backend, 1u);
  // Re-assigning under the new incarnation freshens it.
  m.assign(7, 1);
  const auto again = m.resolve(7);
  ASSERT_TRUE(again);
  EXPECT_FALSE(again->stale);
  EXPECT_EQ(again->generation, inc);
}

TEST(MembershipStaleness, SurvivorElectionIgnoresStaleLoad) {
  fabric::MembershipTable m;
  m.add_backend(1);
  m.add_backend(2);
  // b1 carries three sessions, b2 one.
  m.assign(1, 1);
  m.assign(2, 1);
  m.assign(3, 1);
  m.assign(4, 2);
  EXPECT_EQ(m.pick_survivor(3), 2u);  // least loaded among alive
  // b1 dies and rejoins: its three entries are now phantom load from a
  // fenced incarnation, so b1 (0 fresh sessions) beats b2 (1).
  m.set_health(1, fabric::BackendHealth::kDead);
  m.revive(1);
  EXPECT_EQ(m.pick_survivor(3), 1u);
}

// --------------------------------------------------------------------------
// Fabric fault-plan grammar
// --------------------------------------------------------------------------

TEST(FabricPlanText, RoundTripsEveryKind) {
  const std::string text =
      "backend-crash@20ms b2; probe-blackout@5ms+80ms b1; "
      "router-split@10ms+30ms b3; partition@20ms+40ms 0,1|2,3; "
      "partition-oneway@20ms+40ms 0|2; rejoin@90ms b2";
  const auto plan = fault::fabric_plan_from_text(text);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(fault::to_text(plan), text);
  // And the parse is structural, not stringly: spot-check the partition.
  const auto& p = plan.actions[3];
  EXPECT_EQ(p.kind, fault::FabricFaultKind::kPartition);
  EXPECT_EQ(p.group_a, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(p.group_b, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(p.at, 20ms);
  EXPECT_EQ(p.len, 40ms);
}

TEST(FabricPlanText, SpanWindowsAndCommentsParse) {
  const auto plan = fault::fabric_plan_from_text(
      "# scripted by the minimizer\n"
      "partition@20ms..60ms 0|2\n"
      "-\n"
      "rejoin@90ms b1\n");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.actions[0].len, 40ms);  // ..60ms == +40ms
  EXPECT_EQ(fault::to_text(plan), "partition@20ms+40ms 0|2; rejoin@90ms b1");
  EXPECT_EQ(fault::to_text(fault::FabricFaultPlan{}), "-");
  EXPECT_TRUE(fault::fabric_plan_from_text("-").empty());
}

TEST(FabricPlanText, MalformedInputThrows) {
  EXPECT_THROW(fault::fabric_plan_from_text("explode@20ms b1"),
               ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("rejoin@20 b1"), ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("rejoin@20ms"), ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("rejoin@20ms x1"),
               ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("partition@1ms+2ms 0,1"),
               ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("partition@1ms+2ms |2"),
               ContractError);
  EXPECT_THROW(fault::fabric_plan_from_text("partition@9ms..3ms 0|2"),
               ContractError);
}

TEST(FabricPlanText, SoakToStringDelegatesUnchanged) {
  stp::FabricFaultPlan plan;
  plan.actions.push_back({stp::FabricFaultKind::kBackendCrash, 2, 20ms, {},
                          {}, {}});
  plan.actions.push_back({stp::FabricFaultKind::kProbeBlackout, 1, 5ms,
                          80ms, {}, {}});
  EXPECT_EQ(stp::to_string(plan),
            "backend-crash@20ms b2; probe-blackout@5ms+80ms b1");
  EXPECT_EQ(fault::fabric_plan_from_text(stp::to_string(plan)), plan);
}

// --------------------------------------------------------------------------
// Nameserver + ResolverTransport
// --------------------------------------------------------------------------

net::Frame resolve_query(std::uint32_t session) {
  net::Frame f;
  f.kind = net::FrameKind::kResolve;
  f.dir = sim::Dir::kSenderToReceiver;
  f.session = session;
  f.msg = 0;
  return f;
}

TEST(Nameserver, GrantsFreshOwnersAndFencesDeadOrStale) {
  fabric::MembershipTable m;
  m.add_backend(1);
  m.assign(7, 1);
  fabric::Nameserver ns(&m);

  auto ack = ns.answer(resolve_query(7));
  EXPECT_EQ(ack.kind, net::FrameKind::kResolveAck);
  EXPECT_EQ(ack.session, 7u);
  EXPECT_EQ(fabric::lease_owner(ack.msg), 1u);
  EXPECT_EQ(fabric::lease_epoch(ack.msg), m.epoch());

  // Unknown session: owner 0.
  EXPECT_EQ(fabric::lease_owner(ns.answer(resolve_query(99)).msg), 0u);
  // Fenced owner: owner 0.
  m.set_health(1, fabric::BackendHealth::kDead);
  EXPECT_EQ(fabric::lease_owner(ns.answer(resolve_query(7)).msg), 0u);
  // Revived but the entry is stale (stamped pre-fence): still 0 — a
  // rejoin must never silently resurrect old routing truth.
  m.revive(1);
  EXPECT_EQ(fabric::lease_owner(ns.answer(resolve_query(7)).msg), 0u);
  // Reassigned under the new incarnation: granted again.
  m.assign(7, 1);
  EXPECT_EQ(fabric::lease_owner(ns.answer(resolve_query(7)).msg), 1u);

  const auto rd = ns.redirect(7);
  EXPECT_EQ(rd.kind, net::FrameKind::kNotOwner);
  EXPECT_EQ(fabric::lease_epoch(rd.msg), m.epoch());
  const auto st = ns.stats();
  EXPECT_EQ(st.resolves, 5u);
  EXPECT_EQ(st.grants, 2u);
  EXPECT_EQ(st.unknowns, 3u);
  EXPECT_EQ(st.redirects, 1u);
}

/// Scripted ITransport: records every send, serves a queue of inbound
/// frames to poll().
class ScriptedTransport final : public net::ITransport {
 public:
  bool send(const std::vector<std::uint8_t>& bytes) override {
    sent.push_back(bytes);
    return true;
  }
  std::optional<std::vector<std::uint8_t>> poll() override {
    if (inbound.empty()) return std::nullopt;
    auto out = inbound.front();
    inbound.pop_front();
    return out;
  }
  std::string name() const override { return "scripted"; }

  std::vector<std::vector<std::uint8_t>> sent;
  std::deque<std::vector<std::uint8_t>> inbound;
};

net::Frame data_frame(std::uint32_t session) {
  net::Frame f;
  f.kind = net::FrameKind::kData;
  f.dir = sim::Dir::kSenderToReceiver;
  f.session = session;
  f.msg = 1;
  return f;
}

std::vector<net::Frame> decode_all(
    const std::vector<std::vector<std::uint8_t>>& wires) {
  std::vector<net::Frame> out;
  for (const auto& w : wires) {
    const auto f = net::decode(w);
    if (f) out.push_back(*f);
  }
  return out;
}

TEST(Resolver, ResolvesOnConnectCachesLeaseAndFencesOnNewerEpoch) {
  ScriptedTransport wire;
  fabric::ResolverTransport rt(&wire);

  // Connect-time resolve goes straight out.
  rt.resolve_now(7);
  auto sent = decode_all(wire.sent);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].kind, net::FrameKind::kResolve);
  EXPECT_EQ(sent[0].session, 7u);

  // The grant is consumed (not surfaced to the mux) and cached.
  net::Frame grant;
  grant.kind = net::FrameKind::kResolveAck;
  grant.dir = sim::Dir::kReceiverToSender;
  grant.session = 7;
  grant.msg = fabric::pack_lease(2, 5);
  wire.inbound.push_back(net::encode(grant));
  EXPECT_FALSE(rt.poll());
  const auto lease = rt.lease(7);
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->owner, 2u);
  EXPECT_EQ(lease->epoch, 5u);

  // Data for a leased session passes through without another resolve.
  wire.sent.clear();
  EXPECT_TRUE(rt.send(net::encode(data_frame(7))));
  EXPECT_EQ(decode_all(wire.sent).size(), 1u);
  EXPECT_EQ(decode_all(wire.sent)[0].kind, net::FrameKind::kData);

  // A kNotOwner carrying an OLDER epoch is ignored; the lease holds.
  net::Frame stale_rd;
  stale_rd.kind = net::FrameKind::kNotOwner;
  stale_rd.dir = sim::Dir::kReceiverToSender;
  stale_rd.session = 7;
  stale_rd.msg = fabric::pack_lease(0, 4);
  wire.inbound.push_back(net::encode(stale_rd));
  EXPECT_FALSE(rt.poll());
  EXPECT_TRUE(rt.lease(7));

  // A NEWER epoch is the fence: lease invalidated, re-resolve issued.
  wire.sent.clear();
  net::Frame fence = stale_rd;
  fence.msg = fabric::pack_lease(0, 9);
  wire.inbound.push_back(net::encode(fence));
  EXPECT_FALSE(rt.poll());
  EXPECT_FALSE(rt.lease(7));
  sent = decode_all(wire.sent);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].kind, net::FrameKind::kResolve);

  const auto st = rt.stats();
  EXPECT_EQ(st.resolves_sent, 2u);
  EXPECT_EQ(st.leases_granted, 1u);
  EXPECT_EQ(st.redirects_seen, 2u);
  EXPECT_EQ(st.lease_invalidations, 1u);
}

TEST(Resolver, UnleasedDataTriggersRateLimitedResolveButStillPasses) {
  ScriptedTransport wire;
  fabric::ResolverTransport rt(&wire);
  EXPECT_TRUE(rt.send(net::encode(data_frame(3))));
  EXPECT_TRUE(rt.send(net::encode(data_frame(3))));
  const auto sent = decode_all(wire.sent);
  // Two data frames passed through; ONE resolve (the second is inside
  // the retry window).
  std::size_t data = 0, resolves = 0;
  for (const auto& f : sent) {
    data += f.kind == net::FrameKind::kData;
    resolves += f.kind == net::FrameKind::kResolve;
  }
  EXPECT_EQ(data, 2u);
  EXPECT_EQ(resolves, 1u);
}

// --------------------------------------------------------------------------
// The rejoin/reclaim loop, end to end
// --------------------------------------------------------------------------

fabric::HealthConfig fast_health() {
  fabric::HealthConfig h;
  h.probe_interval = kSanitized ? 5ms : 1ms;
  h.probe_timeout = kSanitized ? 100ms : 5ms;
  h.max_strikes = 3;
  h.backoff = 2.0;
  h.max_timeout = kSanitized ? 1s : 50ms;
  return h;
}

stp::FabricSoakConfig rejoin_base(std::size_t sessions, std::size_t len) {
  stp::FabricSoakConfig cfg;
  cfg.backends = 3;
  cfg.sessions = sessions;
  cfg.seq_len = len;
  cfg.health = fast_health();
  net::MuxConfig m;
  m.workers = 2;
  m.steps_per_sweep = 1;
  m.max_inflight = 2;
  m.sweep_interval = 1ms;
  m.keepalive_sweeps = 8;
  cfg.mux = m;
  cfg.drain_timeout = 120s;
  return cfg;
}

// The condemnation ladder needs ~35ms of silence uninstrumented, ~700ms
// under a sanitizer; the rejoin must land after it (the cell's bounded
// kJoin retries add ~250ms of grace on top).
constexpr std::chrono::milliseconds kRejoinAt = kSanitized ? 1800ms : 120ms;

TEST(RejoinReclaim, CrashRejoinReclaimRoundTrip) {
  auto cfg = rejoin_base(12, 8);
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kBackendCrash, 2, 10ms, {}, {}, {}});
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kRejoin, 2, kRejoinAt, {}, {}, {}});
  const auto res = stp::run_fabric_soak(cfg);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.completed, 12u);
  EXPECT_EQ(res.live_violations, 0u);
  EXPECT_EQ(res.rehomes, 1u);
  EXPECT_EQ(res.rejoins, 1u);
  EXPECT_EQ(res.reclaims, 1u);
  ASSERT_EQ(res.reclaim_latency_us.size(), 1u);
  EXPECT_GT(res.reclaim_latency_us[0], 0u);
  // The attestation is derived from the merged trace alone and must
  // agree with the live verdicts across all three generations.
  EXPECT_TRUE(res.trace.ok) << res.trace.to_json();
  // The nameserver answered the client's connect-time resolves.
  EXPECT_GE(res.resolver.leases_granted, 1u);
  EXPECT_EQ(res.router.rejects, 0u);
}

TEST(RejoinReclaim, SeededSoakTrialCrashPartitionHealRejoin) {
  // The ISSUE's acceptance trial: crash one backend, partition a SURVIVOR
  // from the nameserver/router side mid-recovery, heal, rejoin the dead
  // backend, reclaim — then attest the whole story from the merged trace.
  auto cfg = rejoin_base(12, 8);
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kBackendCrash, 1, 10ms, {}, {}, {}});
  {
    stp::FabricFaultAction p;
    p.kind = stp::FabricFaultKind::kPartition;
    // The window stays under the condemnation ladder (~35ms of silence
    // uninstrumented) so the survivor USUALLY rides it out — but a loaded
    // scheduler can stretch the heal past the ladder, and a condemned
    // survivor is a legitimate outcome the run must also absorb (its
    // sessions re-home again); hence GE on rehomes below.
    p.at = kSanitized ? 200ms : 30ms;
    p.len = kSanitized ? 250ms : 20ms;
    p.group_a = {0};
    p.group_b = {3};
    cfg.plan.actions.push_back(p);
  }
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kRejoin, 1,
       kRejoinAt + (kSanitized ? 700ms : 60ms), {}, {}, {}});
  const auto res = stp::run_fabric_soak(cfg);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_GE(res.rehomes, 1u);
  EXPECT_EQ(res.rejoins, 1u);
  EXPECT_EQ(res.reclaims, 1u);
  EXPECT_TRUE(res.trace.ok) << res.trace.to_json();
  // The partition window suppressed real traffic at the router.
  EXPECT_GT(res.router.partition_suppressed, 0u);
}

TEST(RejoinReclaim, OneWayPartitionSuppressesOnlyOneDirection) {
  // Asymmetric partition against a healthy fleet: no crash, no rejoin —
  // the probes charged to the FSM ARE the fault, and the window must
  // heal before the ladder condemns (len < first-strike silence).
  auto cfg = rejoin_base(6, 6);
  cfg.health = stp::FabricSoakConfig{}.health;  // default lenient ladder
  stp::FabricFaultAction p;
  p.kind = stp::FabricFaultKind::kPartitionOneWay;
  p.at = 5ms;
  p.len = 8ms;
  p.group_a = {0};
  p.group_b = {2};
  cfg.plan.actions.push_back(p);
  const auto res = stp::run_fabric_soak(cfg);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.rehomes, 0u);
}

TEST(RejoinReclaim, SampleResiliencePlanIsDeterministicAndShaped) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto a = stp::sample_resilience_plan(seed, 3);
    const auto b = stp::sample_resilience_plan(seed, 3);
    EXPECT_EQ(a, b) << "seed " << seed;
    // Every plan carries the crash -> rejoin spine on the same backend,
    // rejoin strictly after the crash.
    ASSERT_GE(a.size(), 2u) << "seed " << seed;
    EXPECT_EQ(a.actions[0].kind, stp::FabricFaultKind::kBackendCrash);
    EXPECT_EQ(a.actions[1].kind, stp::FabricFaultKind::kRejoin);
    EXPECT_EQ(a.actions[0].backend, a.actions[1].backend);
    EXPECT_LT(a.actions[0].at.count(), a.actions[1].at.count());
    // Round-trips through the artifact grammar.
    EXPECT_EQ(fault::fabric_plan_from_text(fault::to_text(a)), a);
    // Partitions, when sampled, never pin the crash victim.
    for (const auto& act : a.actions) {
      if (!fault::is_partition_fault(act.kind)) continue;
      EXPECT_EQ(act.group_a, (std::vector<std::uint32_t>{0}));
      ASSERT_EQ(act.group_b.size(), 1u);
      EXPECT_NE(act.group_b[0], a.actions[0].backend);
    }
  }
}

TEST(RejoinReclaim, PublishMetricsEmitsDistinctDropCounters) {
  auto cfg = rejoin_base(6, 6);
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kBackendCrash, 2, 10ms, {}, {}, {}});
  cfg.plan.actions.push_back(
      {stp::FabricFaultKind::kRejoin, 2, kRejoinAt, {}, {}, {}});
  const auto res = stp::run_fabric_soak(cfg);
  ASSERT_TRUE(res.ok) << res.failure;
  // (No nonzero-drop assertion: the fenced window between condemnation
  // and re-home is milliseconds wide, so whether any client frame lands
  // inside it is scheduling luck.  The split counters themselves are
  // what the satellite pins, below.)

  fabric::MembershipTable membership;
  net::LoopbackPair client_link = net::make_loopback();
  fabric::FabricRouter router(client_link.b.get(), &membership);
  obs::MetricsRegistry reg;
  router.publish_metrics(reg);
  for (const char* key :
       {"fabric.drops.no_owner", "fabric.drops.dead_owner",
        "fabric.drops.stale_lease", "fabric.drops.partition",
        "fabric.resolves", "fabric.redirects", "fabric.joins",
        "fabric.nameserver.grants", "fabric.nameserver.unknowns"}) {
    EXPECT_TRUE(reg.counters().count(key)) << key;
  }
}

}  // namespace
}  // namespace stpx
