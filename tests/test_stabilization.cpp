// Tests for the self-stabilization layer: the corruption-fault grammar and
// sampler, the hardened protocol's three integrity defenses, the engine's
// suffix-safety convergence criterion, checkpoint round-trip fidelity for
// the whole suite, failure dedup, and the protocol x corruption x process
// conformance matrix.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "fault/plan.hpp"
#include "proto/encoded.hpp"
#include "proto/hardened.hpp"
#include "proto/suite.hpp"
#include "seq/encoding.hpp"
#include "seq/family.hpp"
#include "stp/soak.hpp"
#include "stp/stabilization.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------- grammar --

namespace stpx::fault {
namespace {

TEST(CorruptionGrammar, ParsesAllThreeOps) {
  const auto plan = plan_from_text(
      "corrupt-payload @step 5 dir SR count 21 match *\n"
      "forge-message @writes 2 dir RS count 3 match 4\n"
      "scramble-state @sends 7 proc receiver count 99\n");
  ASSERT_EQ(plan.actions.size(), 3u);

  EXPECT_EQ(plan.actions[0].kind, FaultKind::kCorruptPayload);
  EXPECT_EQ(plan.actions[0].trigger.kind, TriggerKind::kStep);
  EXPECT_EQ(plan.actions[0].dir, sim::Dir::kSenderToReceiver);
  EXPECT_EQ(plan.actions[0].count, 21u);
  EXPECT_EQ(plan.actions[0].match, kAnyMsg);

  EXPECT_EQ(plan.actions[1].kind, FaultKind::kForgeMessage);
  EXPECT_EQ(plan.actions[1].trigger.kind, TriggerKind::kWrites);
  EXPECT_EQ(plan.actions[1].dir, sim::Dir::kReceiverToSender);
  EXPECT_EQ(plan.actions[1].match, 4);

  EXPECT_EQ(plan.actions[2].kind, FaultKind::kScrambleState);
  EXPECT_EQ(plan.actions[2].proc, sim::Proc::kReceiver);
  EXPECT_EQ(plan.actions[2].count, 99u);
}

TEST(CorruptionGrammar, TextRoundTripIsStable) {
  const std::string text =
      "corrupt-payload @step 5 dir SR count 21 match *\n"
      "forge-message @writes 2 dir RS count 3 match 4\n"
      "scramble-state @sends 7 proc receiver count 99\n";
  const std::string once = to_text(plan_from_text(text));
  EXPECT_EQ(once, text);
  EXPECT_EQ(to_text(plan_from_text(once)), once);
}

TEST(CorruptionGrammar, KindPredicates) {
  for (FaultKind k : {FaultKind::kCorruptPayload, FaultKind::kForgeMessage,
                      FaultKind::kScrambleState}) {
    EXPECT_TRUE(is_corruption_fault(k)) << to_cstr(k);
    EXPECT_FALSE(is_store_fault(k)) << to_cstr(k);
  }
  EXPECT_FALSE(is_corruption_fault(FaultKind::kDropBurst));
  EXPECT_FALSE(is_corruption_fault(FaultKind::kTornWrite));
}

TEST(CorruptionSampler, DisabledByDefault) {
  // Corruption faults are opt-in: the default sampler menu must never
  // produce them (r1 soak baselines would silently change otherwise).
  Rng rng(7);
  SamplerConfig cfg;
  for (int i = 0; i < 200; ++i) {
    for (const FaultAction& a : sample_plan(rng, cfg).actions) {
      EXPECT_FALSE(is_corruption_fault(a.kind)) << to_cstr(a.kind);
    }
  }
}

TEST(CorruptionSampler, EnabledKindsAppearAndAreWellFormed) {
  Rng rng(11);
  SamplerConfig cfg;
  cfg.allow_drop = false;
  cfg.allow_dup = false;
  cfg.allow_blackout = false;
  cfg.allow_freeze = false;
  cfg.allow_corrupt_payload = true;
  cfg.allow_forge_message = true;
  cfg.allow_scramble_state = true;
  std::set<FaultKind> seen;
  for (int i = 0; i < 200; ++i) {
    for (const FaultAction& a : sample_plan(rng, cfg).actions) {
      ASSERT_TRUE(is_corruption_fault(a.kind)) << to_cstr(a.kind);
      seen.insert(a.kind);
      if (a.kind == FaultKind::kCorruptPayload) {
        // XOR mask: nonzero and bounded, so the mangled id stays plausible.
        EXPECT_GE(a.count, 1u);
        EXPECT_LE(a.count, cfg.max_xor_mask);
      }
      if (a.kind == FaultKind::kForgeMessage) {
        // A forge must name the lie (no wildcard) so plans replay exactly.
        EXPECT_NE(a.match, kAnyMsg);
        EXPECT_GE(a.match, 0);
        EXPECT_LT(a.match, static_cast<sim::MsgId>(cfg.max_forge_id));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u);  // every enabled kind was actually sampled
}

}  // namespace
}  // namespace stpx::fault

// --------------------------------------------------------------- hardened --

namespace stpx::proto {
namespace {

TEST(Hardened, SealedBlobRoundTripAndTamperDetection) {
  const std::string payload = "190 3 0 1 2";
  const std::string blob = hardened_seal_blob(payload);
  std::string out;
  ASSERT_TRUE(hardened_unseal_blob(blob, out));
  EXPECT_EQ(out, payload);

  // Any single-character tamper (the scramble model mutates whole tokens,
  // a strictly larger change) must be caught by the blob hash.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = bad[i] == '7' ? '8' : '7';
    if (bad == blob) continue;
    EXPECT_FALSE(hardened_unseal_blob(bad, out)) << "tamper at " << i;
  }
  EXPECT_FALSE(hardened_unseal_blob(payload, out));  // hash token missing
  EXPECT_FALSE(hardened_unseal_blob("", out));
}

TEST(Hardened, ReceiverShedsMangledAndForgedIds) {
  HardenedSender s(6);
  HardenedReceiver r(6);
  s.start(seq::Sequence{0, 1, 2});
  r.start();

  const auto eff = s.on_step();
  ASSERT_TRUE(eff.send.has_value());
  const sim::MsgId genuine = *eff.send;

  // A flipped bit fails the checksum: dropped, counted, nothing written.
  r.on_deliver(genuine ^ 21);
  EXPECT_EQ(r.rejected(), 1u);
  EXPECT_TRUE(r.on_step().writes.empty());

  // A forged small id (the stabilization plan's lie) is equally shed.
  r.on_deliver(4);
  EXPECT_EQ(r.rejected(), 2u);
  EXPECT_TRUE(r.on_step().writes.empty());

  // The genuine copy still lands.
  r.on_deliver(genuine);
  const auto w = r.on_step().writes;
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 0);
}

TEST(Hardened, SenderShedsForgedAcks) {
  HardenedSender s(6);
  s.start(seq::Sequence{0, 1, 2});
  (void)s.on_step();
  EXPECT_EQ(s.acked(), 0u);
  s.on_deliver(4);  // forged "ack" without the salt
  EXPECT_EQ(s.rejected(), 1u);
  EXPECT_EQ(s.acked(), 0u);  // the cursor did not move
}

TEST(Hardened, ScrambledCheckpointIsRejected) {
  HardenedSender s(6);
  s.start(seq::Sequence{0, 1, 2});
  HardenedReceiver r(6);
  r.start();

  // Token-level mutations of a sealed checkpoint (what scramble-state
  // produces) must be rejected with the live state untouched.
  const std::string sblob = s.save_state();
  EXPECT_FALSE(s.restore_state("191 9 " + sblob));
  EXPECT_FALSE(s.restore_state(sblob + " 7"));
  std::string mutated = sblob;
  mutated[0] = mutated[0] == '1' ? '2' : '1';
  EXPECT_FALSE(s.restore_state(mutated));
  EXPECT_EQ(s.save_state(), sblob);  // live state survived every attempt

  const std::string rblob = r.save_state();
  std::string rmut = rblob;
  rmut[rmut.size() / 2] = rmut[rmut.size() / 2] == '3' ? '4' : '3';
  EXPECT_FALSE(r.restore_state(rmut, seq::Sequence{}));
  EXPECT_EQ(r.epoch(), 0u);  // a failed restore does not announce a restart
}

TEST(Hardened, EpochResyncWalksTheSenderBack) {
  // Lockstep a short transfer, then restore the receiver from its own
  // checkpoint: the restore bumps the epoch, the next ack carries it, and
  // the sender adopts the receiver's frontier outright.
  HardenedSender s(6);
  HardenedReceiver r(6);
  const seq::Sequence x{0, 1, 2, 3};
  s.start(x);
  r.start();
  seq::Sequence tape;
  for (int i = 0; i < 12 && s.acked() < 2; ++i) {
    const auto se = s.on_step();
    if (se.send) r.on_deliver(*se.send);
    const auto re = r.on_step();
    for (seq::DataItem d : re.writes) tape.push_back(d);
    if (re.send) s.on_deliver(*re.send);
  }
  ASSERT_GE(s.acked(), 2u);
  ASSERT_EQ(s.epoch(), 0u);

  ASSERT_TRUE(r.restore_state(r.save_state(), tape));
  EXPECT_EQ(r.epoch(), 1u);  // a successful restore announces the restart

  const auto ack = r.on_step();
  ASSERT_TRUE(ack.send.has_value());
  s.on_deliver(*ack.send);
  EXPECT_EQ(s.epoch(), 1u);  // the sender resynced to the new epoch
}

// ------------------------------------- checkpoint round-trip (suite-wide) --

/// Factory + input for one suite protocol; `sync` marks the headerless
/// lockstep protocol whose delivery verdicts normally come from the channel.
struct SuiteEntry {
  std::string name;
  std::function<ProtocolPair()> make;
  seq::Sequence input;
  bool sync = false;
};

std::vector<SuiteEntry> suite_entries() {
  const seq::Sequence six{0, 1, 2, 3, 4, 5};
  std::vector<SuiteEntry> v;
  v.push_back({"stenning", [] { return make_stenning(6); }, six});
  v.push_back({"abp", [] { return make_abp(6); }, six});
  v.push_back({"modk-stenning", [] { return make_modk_stenning(6, 3); }, six});
  v.push_back({"repfree-dup", [] { return make_repfree_dup(6); }, six});
  v.push_back({"repfree-del", [] { return make_repfree_del(6); }, six});
  v.push_back({"go-back-n", [] { return make_go_back_n(6, 3); }, six});
  v.push_back(
      {"selective-repeat", [] { return make_selective_repeat(6, 3); }, six});
  v.push_back(
      {"block", [] { return make_block(4, 2, 12); }, {0, 1, 2, 3, 1, 2}});
  v.push_back({"hybrid", [] { return make_hybrid(6, 8); }, six});
  v.push_back(
      {"sync-stop-wait", [] { return make_sync_stop_wait(6); }, six, true});
  {
    seq::Family fam;
    fam.domain = seq::Domain{6};
    for (std::size_t len = 0; len <= six.size(); ++len) {
      fam.members.emplace_back(six.begin(),
                               six.begin() + static_cast<std::ptrdiff_t>(len));
    }
    auto enc = seq::try_build_encoding(fam, 6);
    STPX_EXPECT(enc.has_value(), "chain-family encoding must exist");
    auto table = std::make_shared<const seq::Encoding>(std::move(*enc));
    v.push_back({"encoded-knowledge",
                 [table] {
                   return ProtocolPair{
                       std::make_unique<EncodedSender>(table, false),
                       std::make_unique<KnowledgeReceiver>(table, false)};
                 },
                 six});
  }
  return v;
}

TEST(CheckpointRoundTrip, SaveRestoreSaveIsByteIdenticalSuiteWide) {
  // The scramble layer compares checkpoints textually, and the recovery
  // layer re-baselines from save_state() after every restore — both depend
  // on restore_state(save_state()) being a byte-identical fixed point, on a
  // fresh instance, for every protocol and both processes.  Exercised on a
  // mid-run state so non-trivial fields (windows, buffers, seen-sets) are
  // actually populated.
  for (const SuiteEntry& e : suite_entries()) {
    ProtocolPair live = e.make();
    live.sender->start(e.input);
    live.receiver->start();
    seq::Sequence tape;
    for (int i = 0; i < 10; ++i) {
      const auto se = live.sender->on_step();
      if (se.send) live.receiver->on_deliver(*se.send);
      const auto re = live.receiver->on_step();
      for (seq::DataItem d : re.writes) tape.push_back(d);
      if (re.send) live.sender->on_deliver(*re.send);
      if (e.sync && se.send) live.sender->on_deliver(channel::kSyncAck);
    }
    EXPECT_FALSE(tape.empty()) << e.name << ": pump made no progress";

    const std::string sblob = live.sender->save_state();
    const std::string rblob = live.receiver->save_state();

    ProtocolPair fresh = e.make();
    fresh.sender->start(e.input);
    fresh.receiver->start();
    ASSERT_TRUE(fresh.sender->restore_state(sblob)) << e.name;
    EXPECT_EQ(fresh.sender->save_state(), sblob) << e.name;
    ASSERT_TRUE(fresh.receiver->restore_state(rblob, tape)) << e.name;
    EXPECT_EQ(fresh.receiver->save_state(), rblob) << e.name;
  }
}

TEST(CheckpointRoundTrip, HardenedReceiverDiffersOnlyInEpoch) {
  // The hardened receiver deliberately breaks the fixed point: a successful
  // restore bumps the epoch (that IS the resync signal), so the post-restore
  // checkpoint differs from the restored one — but only in the epoch.
  ProtocolPair live = make_hardened(6);
  live.sender->start(seq::Sequence{0, 1, 2});
  live.receiver->start();

  const std::string sblob = live.sender->save_state();
  ASSERT_TRUE(live.sender->restore_state(sblob));
  EXPECT_EQ(live.sender->save_state(), sblob);  // the sender IS a fixed point

  auto* r = dynamic_cast<HardenedReceiver*>(live.receiver.get());
  ASSERT_NE(r, nullptr);
  const std::string before = r->save_state();
  ASSERT_TRUE(r->restore_state(before, seq::Sequence{}));
  EXPECT_EQ(r->epoch(), 1u);
  EXPECT_NE(r->save_state(), before);
  ASSERT_TRUE(r->restore_state(r->save_state(), seq::Sequence{}));
  EXPECT_EQ(r->epoch(), 2u);
}

}  // namespace
}  // namespace stpx::proto

// ---------------------------------------------- convergence + conformance --

namespace stpx::stp {
namespace {

SystemSpec repfree_dup_spec() {
  SystemSpec spec;
  spec.protocols = [] { return proto::make_repfree_dup(6); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  spec.engine.convergence_window = 2;
  return spec;
}

TEST(Convergence, CleanRunCompletesWithoutCorruptionBookkeeping) {
  // The chaos decorator with an empty plan is transparent: no corruptions,
  // no scrambles, plain completion (converged == completed for clean runs).
  const auto r = run_one(with_chaos(repfree_dup_spec(), fault::FaultPlan{}),
                         seq::Sequence{0, 1, 2, 3, 4, 5}, 2026);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_EQ(r.stats.corruptions, 0u);
  EXPECT_EQ(r.stats.scrambles_applied + r.stats.scrambles_rejected, 0u);
  EXPECT_TRUE(r.converged);
}

TEST(Convergence, ForgedMessageDivergesTheTrustingProtocol) {
  // The bench's exhibit 1, pinned as a test: one forged in-alphabet id
  // toward repfree-dup's receiver is believed (content IS the header),
  // written out of order, and the suffix-safety criterion rejects the run.
  const auto plan = stabilization_plan(fault::FaultKind::kForgeMessage,
                                       sim::Proc::kReceiver);
  const auto r = run_one(with_chaos(repfree_dup_spec(), plan),
                         seq::Sequence{0, 1, 2, 3, 4, 5}, 2026);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStabilizationViolation);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.stats.corruptions, 1u);
}

TEST(Convergence, SameLieIsInvisibleToTheHardenedProtocol) {
  auto spec = repfree_dup_spec();
  spec.protocols = [] { return proto::make_hardened(6); };
  const auto plan = stabilization_plan(fault::FaultKind::kForgeMessage,
                                       sim::Proc::kReceiver);
  const auto r = run_one(with_chaos(spec, plan),
                         seq::Sequence{0, 1, 2, 3, 4, 5}, 2026);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kCompleted);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.stats.corruptions, 1u);  // the fault fired; it was just shed
}

TEST(Convergence, LegacyWindowZeroHaltsAtTheViolation) {
  // convergence_window = 0 keeps the pre-stabilization contract: the first
  // bad write ends the run as a (post-corruption) stabilization violation
  // rather than opening a recovery window.
  auto spec = repfree_dup_spec();
  spec.engine.convergence_window = 0;
  const auto plan = stabilization_plan(fault::FaultKind::kForgeMessage,
                                       sim::Proc::kReceiver);
  const auto r = run_one(with_chaos(spec, plan),
                         seq::Sequence{0, 1, 2, 3, 4, 5}, 2026);
  EXPECT_EQ(r.verdict, sim::RunVerdict::kStabilizationViolation);
  EXPECT_FALSE(r.safety_ok);
}

TEST(Conformance, StabilizationPlanShape) {
  const auto plan = stabilization_plan(fault::FaultKind::kScrambleState,
                                       sim::Proc::kSender);
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].kind, fault::FaultKind::kScrambleState);
  EXPECT_EQ(plan.actions[0].trigger.kind, fault::TriggerKind::kWrites);
  EXPECT_EQ(plan.actions[0].trigger.at, 2u);
  EXPECT_EQ(plan.actions[0].proc, sim::Proc::kSender);
  // Only corruption-fault kinds are accepted.
  EXPECT_THROW(
      stabilization_plan(fault::FaultKind::kDropBurst, sim::Proc::kSender),
      ContractError);
}

TEST(Conformance, MatrixLandsOnItsPins) {
  // The headline acceptance test: every protocol in the suite x all three
  // corruption kinds x both target processes, each cell's verdict matching
  // its documented pin (docs/STABILIZATION.md).
  const auto cases = default_stabilization_cases();
  ASSERT_GE(cases.size(), 12u);  // hardened + the 11-protocol suite
  const StabilizationReport report = stabilization_sweep(cases, 2026);
  EXPECT_EQ(report.trials.size(),
            cases.size() * kCorruptionKindCount * 2);
  for (const auto& t : report.trials)
    if (!t.detail.empty()) ADD_FAILURE() << t.detail;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.matched, report.trials.size());
}

TEST(Conformance, HardenedCompletesEveryCellWithTheFaultActuallyFiring) {
  const auto cases = default_stabilization_cases();
  const StabilizationReport report = stabilization_sweep(cases, 2026);
  std::size_t hardened_cells = 0;
  for (const auto& t : report.trials) {
    if (t.protocol != "hardened") continue;
    ++hardened_cells;
    EXPECT_EQ(t.verdict, sim::RunVerdict::kCompleted)
        << fault::to_cstr(t.kind) << " proc " << sim::to_cstr(t.proc);
    // Re-converging past a fault that never fired proves nothing: every
    // cell must have seen its corruption (scramble cells via the sealed
    // checkpoint rejecting the blob).
    if (t.kind == fault::FaultKind::kScrambleState) {
      EXPECT_GE(t.scrambles_applied + t.scrambles_rejected, 1u);
      EXPECT_EQ(t.scrambles_applied, 0u);  // the seal held every time
    } else {
      EXPECT_GE(t.corruptions, 1u);
    }
  }
  EXPECT_EQ(hardened_cells, kCorruptionKindCount * 2);
}

TEST(Dedup, RepeatedForgeriesCollapseToOneCounterexample) {
  // Three failing trials, same lie under different seeds: minimization must
  // land on the same 1-minimal plan and dedup must report it once with its
  // multiplicity.
  const auto spec = repfree_dup_spec();
  const auto plan = stabilization_plan(fault::FaultKind::kForgeMessage,
                                       sim::Proc::kReceiver);
  const seq::Sequence x{0, 1, 2, 3, 4, 5};
  std::vector<SoakFailure> failures;
  for (std::uint64_t seed : {2026u, 2027u, 2028u}) {
    const auto r = run_one(with_chaos(spec, plan), x, seed);
    if (r.verdict != sim::RunVerdict::kStabilizationViolation) continue;
    SoakFailure f;
    f.protocol = "repfree-dup";
    f.input = x;
    f.seed = seed;
    f.plan = plan;
    f.verdict = r.verdict;
    failures.push_back(std::move(f));
  }
  ASSERT_GE(failures.size(), 2u);  // the lie is not schedule-luck
  const auto deduped = dedup_failures(spec, failures);
  ASSERT_EQ(deduped.size(), 1u);
  EXPECT_EQ(deduped[0].occurrences, failures.size());
  EXPECT_EQ(deduped[0].verdict, sim::RunVerdict::kStabilizationViolation);
  // 1-minimal: the single forge action cannot shrink further.
  EXPECT_EQ(deduped[0].minimized.actions.size(), 1u);
}

}  // namespace
}  // namespace stpx::stp
