// Service-fabric conformance suite (ctest -L fabric_smoke):
//
//   * MembershipTable — assignment, sticky death, re-home bookkeeping,
//     least-loaded survivor election;
//   * HealthMonitor — the injected-time probe FSM: ack cycle, timeout
//     strikes with exponential backoff, death after the strike budget,
//     sticky death, late/stray acks, the maintenance pause;
//   * Fabric — clean multi-backend runs (probes answered, sessions
//     sharded and completed), crash re-homing onto a survivor with
//     manifest provenance, probe-blackout false suspicion (short:
//     converges back to alive; long: fenced and re-homed, still exact
//     copy), router-split healing;
//   * merge_backend_traces — epoch rebasing and stable ordering;
//   * the fabric soak harness — scripted crash plans, sampled sweeps,
//     1-minimal plan shrinking, and the 256-session / 3-backend
//     acceptance run with trace-derived prefix attestation matching the
//     live verdicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "fabric/fabric.hpp"
#include "net/flight_recorder.hpp"
#include "net/service.hpp"
#include "proto/suite.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "stp/fabric_soak.hpp"

namespace stpx {
namespace {

using namespace std::chrono_literals;

constexpr int kDomain = 8;

// Sanitizer instrumentation slows the heavily-threaded soak by well over
// an order of magnitude on a small runner, and can starve any one thread
// for tens of milliseconds at a stretch.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// The full-width acceptance gate is an uninstrumented-build claim;
// instrumented builds run the same crash/re-home shape at reduced width
// (enough sessions that every backend still owns a share both before and
// after the re-home).
constexpr std::size_t kAcceptanceSessions = kSanitized ? 48 : 256;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::StpServer::ReceiverFactory stenning_factory() {
  return [](std::uint32_t, std::uint64_t tag)
             -> std::unique_ptr<sim::IReceiver> {
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(kDomain).receiver;
  };
}

/// Health tuned so only a genuinely dead backend is ever declared dead
/// (needs ~1.5s of unbroken silence — scheduler jitter cannot fake that).
fabric::HealthConfig lenient_health() {
  fabric::HealthConfig h;
  h.probe_interval = 2ms;
  h.probe_timeout = 100ms;
  h.max_strikes = 4;
  h.backoff = 2.0;
  h.max_timeout = 1s;
  return h;
}

/// Health tuned for fast detection (~35ms of silence) — crash drills.
/// Instrumented builds widen the ladder (~700ms to a verdict): a
/// sanitizer scheduler can starve a healthy backend's threads past the
/// fast ladder, and a false verdict on ALL backends wedges the fleet
/// (death is sticky; no survivor means no re-home).
fabric::HealthConfig aggressive_health() {
  fabric::HealthConfig h;
  h.probe_interval = kSanitized ? 5ms : 1ms;
  h.probe_timeout = kSanitized ? 100ms : 5ms;
  h.max_strikes = 3;
  h.backoff = 2.0;
  h.max_timeout = kSanitized ? 1s : 50ms;
  return h;
}

/// Mux pacing that stretches a run to tens of milliseconds so scripted
/// mid-run faults actually land mid-run.
net::MuxConfig throttled_mux() {
  net::MuxConfig m;
  m.workers = 2;
  m.steps_per_sweep = 1;
  m.max_inflight = 2;
  m.sweep_interval = 1ms;
  m.keepalive_sweeps = 8;
  return m;
}

/// An in-process fabric + client, one MemStore and FlightRecorder per
/// backend.  Declaration order doubles as teardown order: the client
/// dies before the fabric that owns its transport.
struct FabricRig {
  std::vector<std::unique_ptr<store::MemStore>> stores;
  std::vector<std::unique_ptr<net::FlightRecorder>> recorders;
  std::unique_ptr<fabric::Fabric> fab;
  std::unique_ptr<net::StpClient> client;
  std::size_t sessions = 0;
  std::size_t len = 0;

  void build(std::size_t backends, std::size_t nsessions, std::size_t slen,
             fabric::HealthConfig health, net::MuxConfig mux) {
    sessions = nsessions;
    len = slen;
    for (std::size_t i = 0; i < backends; ++i) {
      stores.push_back(std::make_unique<store::MemStore>());
      stores.back()->reset();
      net::FlightRecorderConfig rc;
      rc.backend_id = static_cast<std::uint32_t>(i + 1);
      recorders.push_back(std::make_unique<net::FlightRecorder>(rc));
    }
    fabric::FabricConfig fc;
    fc.backends = backends;
    fc.router.health = health;
    fc.mux = mux;
    fc.make_receiver = stenning_factory();
    fc.expected_for = [slen](std::uint32_t sid) {
      return seq_for(sid, slen);
    };
    fc.stores_for = [this](std::uint32_t id) {
      return std::vector<store::IStableStore*>{stores[id - 1].get()};
    };
    fc.probe_for = [this](std::uint32_t id) -> net::INetProbe* {
      return recorders[id - 1].get();
    };
    fab = std::make_unique<fabric::Fabric>(fc);
    net::MuxConfig cc = mux;
    cc.session_stores.clear();
    cc.probe = nullptr;
    client = std::make_unique<net::StpClient>(fab->client_endpoint(), cc);
    for (std::size_t i = 0; i < nsessions; ++i) {
      const std::uint32_t sid = static_cast<std::uint32_t>(i + 1);
      fab->add_session(sid);
      client->add_session(sid, proto::make_stenning(kDomain, true).sender,
                          seq_for(sid, slen));
    }
  }

  void start() {
    fab->start();
    client->mux().start();
  }

  bool finish(std::chrono::milliseconds timeout) {
    const bool ok =
        client->mux().drain(timeout) && fab->drain(timeout);
    client->mux().stop();
    fab->stop();
    return ok;
  }

  void expect_client_all_completed() const {
    EXPECT_EQ(client->mux().stats().sessions_completed, sessions);
    for (const auto& r : client->mux().reports()) {
      EXPECT_EQ(r.state, net::SessionState::kCompleted)
          << "session " << r.id;
      EXPECT_EQ(r.items, len) << "session " << r.id;
    }
  }

  analysis::TraceReport attest() {
    std::vector<fabric::TracePart> parts;
    for (auto& rec : recorders) {
      parts.push_back({rec->epoch_offset_us(), rec->drain()});
    }
    analysis::TraceContext ctx;
    for (std::size_t i = 0; i < sessions; ++i) {
      ctx.expected_items[static_cast<std::uint32_t>(i + 1)] = len;
    }
    analysis::TracePipeline pipe;
    pipe.add(analysis::make_prefix_attestor());
    return pipe.run(fabric::merge_backend_traces(parts), ctx);
  }
};

// --------------------------------------------------------------------------
// MembershipTable
// --------------------------------------------------------------------------

TEST(Membership, AssignOwnerAndHealthBookkeeping) {
  fabric::MembershipTable t;
  t.add_backend(1);
  t.add_backend(2);
  t.add_backend(2);  // idempotent
  EXPECT_EQ(t.backends().size(), 2u);
  EXPECT_FALSE(t.owner(7).has_value());
  t.assign(7, 1);
  EXPECT_EQ(t.owner(7), 1u);
  t.assign(7, 2);  // reassignment
  EXPECT_EQ(t.owner(7), 2u);
  EXPECT_EQ(t.health(1), fabric::BackendHealth::kAlive);
  // Unknown backends read as dead — never routable.
  EXPECT_EQ(t.health(99), fabric::BackendHealth::kDead);
  t.set_health(1, fabric::BackendHealth::kSuspect);
  EXPECT_EQ(t.health(1), fabric::BackendHealth::kSuspect);
  t.set_health(1, fabric::BackendHealth::kAlive);
  EXPECT_EQ(t.health(1), fabric::BackendHealth::kAlive);
  // Death is sticky.
  t.set_health(1, fabric::BackendHealth::kDead);
  t.set_health(1, fabric::BackendHealth::kAlive);
  EXPECT_EQ(t.health(1), fabric::BackendHealth::kDead);
}

TEST(Membership, RehomeMovesEverySessionAndMarksDead) {
  fabric::MembershipTable t;
  t.add_backend(1);
  t.add_backend(2);
  for (std::uint32_t s = 1; s <= 6; ++s) t.assign(s, s % 2 ? 1 : 2);
  const auto moved = t.rehome(1, 2);
  EXPECT_EQ(moved, (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_EQ(t.health(1), fabric::BackendHealth::kDead);
  for (std::uint32_t s = 1; s <= 6; ++s) EXPECT_EQ(t.owner(s), 2u);
  EXPECT_TRUE(t.sessions_of(1).empty());
  EXPECT_EQ(t.sessions_of(2).size(), 6u);
}

TEST(Membership, PickSurvivorPrefersLeastLoadedAliveBackend) {
  fabric::MembershipTable t;
  t.add_backend(1);
  t.add_backend(2);
  t.add_backend(3);
  t.assign(10, 2);
  t.assign(11, 2);
  t.assign(12, 3);
  EXPECT_EQ(t.pick_survivor(1), 3u);  // 3 carries less than 2
  t.set_health(3, fabric::BackendHealth::kDead);
  EXPECT_EQ(t.pick_survivor(1), 2u);
  t.set_health(2, fabric::BackendHealth::kDead);
  EXPECT_FALSE(t.pick_survivor(1).has_value());
  // Ties break toward the lowest id.
  fabric::MembershipTable u;
  u.add_backend(4);
  u.add_backend(5);
  EXPECT_EQ(u.pick_survivor(99), 4u);
}

// --------------------------------------------------------------------------
// HealthMonitor (injected time: fully deterministic)
// --------------------------------------------------------------------------

using TP = fabric::HealthMonitor::time_point;

fabric::HealthConfig unit_health() {
  fabric::HealthConfig h;
  h.probe_interval = std::chrono::microseconds(1000);
  h.probe_timeout = std::chrono::microseconds(5000);
  h.max_strikes = 3;
  h.backoff = 2.0;
  h.max_timeout = std::chrono::microseconds(15000);
  return h;
}

TEST(Health, ProbeAckCycle) {
  fabric::HealthMonitor hm(unit_health());
  TP t{};
  hm.add_backend(1, t);
  const auto n1 = hm.next_probe(1, t);
  ASSERT_TRUE(n1.has_value());
  // Outstanding: no second probe, regardless of elapsed interval.
  EXPECT_FALSE(hm.next_probe(1, t + std::chrono::microseconds(2000)));
  hm.on_ack(1, *n1, t + std::chrono::microseconds(500));
  EXPECT_EQ(hm.health(1, t + std::chrono::microseconds(500)),
            fabric::BackendHealth::kAlive);
  EXPECT_EQ(hm.strikes(1), 0u);
  // Next probe only after the interval.
  EXPECT_FALSE(hm.next_probe(1, t + std::chrono::microseconds(600)));
  const auto n2 = hm.next_probe(1, t + std::chrono::microseconds(1600));
  ASSERT_TRUE(n2.has_value());
  EXPECT_NE(*n1, *n2);  // nonces never repeat
  EXPECT_EQ(hm.stats().probes_sent, 2u);
  EXPECT_EQ(hm.stats().acks, 1u);
}

TEST(Health, TimeoutStrikesBackOffExponentiallyThenDeclareDeath) {
  fabric::HealthMonitor hm(unit_health());
  TP t{};
  hm.add_backend(1, t);
  ASSERT_TRUE(hm.next_probe(1, t).has_value());
  // Strike 1 at 5ms; the retry is due immediately with a 10ms budget.
  t += std::chrono::microseconds(5000);
  ASSERT_TRUE(hm.next_probe(1, t).has_value());
  EXPECT_EQ(hm.strikes(1), 1u);
  EXPECT_EQ(hm.health(1, t), fabric::BackendHealth::kSuspect);
  // 9ms later the grown timeout has NOT expired yet.
  EXPECT_EQ(hm.health(1, t + std::chrono::microseconds(9000)),
            fabric::BackendHealth::kSuspect);
  EXPECT_EQ(hm.strikes(1), 1u);
  // 10ms later it has: strike 2.
  t += std::chrono::microseconds(10000);
  ASSERT_TRUE(hm.next_probe(1, t).has_value());
  EXPECT_EQ(hm.strikes(1), 2u);
  // Third timeout (clamped to max_timeout 15ms) is fatal.
  t += std::chrono::microseconds(15000);
  EXPECT_EQ(hm.health(1, t), fabric::BackendHealth::kDead);
  EXPECT_EQ(hm.stats().deaths, 1u);
  EXPECT_EQ(hm.stats().timeouts, 3u);
  // Dead backends are not probed.
  EXPECT_FALSE(hm.next_probe(1, t + std::chrono::seconds(1)).has_value());
}

TEST(Health, DeathIsStickyAndLateAcksAreCounted) {
  fabric::HealthMonitor hm(unit_health());
  TP t{};
  hm.add_backend(1, t);
  const auto n = hm.next_probe(1, t);
  ASSERT_TRUE(n.has_value());
  for (int i = 0; i < 3; ++i) {
    t += std::chrono::microseconds(20000);
    hm.health(1, t);
    hm.next_probe(1, t);
  }
  ASSERT_EQ(hm.health(1, t), fabric::BackendHealth::kDead);
  // The queued ack finally arrives: counted, changes nothing.
  hm.on_ack(1, *n, t);
  EXPECT_EQ(hm.health(1, t), fabric::BackendHealth::kDead);
  EXPECT_GE(hm.stats().late_or_stray_acks, 1u);
  // Acks for unknown backends are stray, not a crash.
  hm.on_ack(42, 7, t);
  EXPECT_GE(hm.stats().late_or_stray_acks, 2u);
}

TEST(Health, StaleNonceDoesNotAnswerTheOutstandingProbe) {
  fabric::HealthMonitor hm(unit_health());
  TP t{};
  hm.add_backend(1, t);
  const auto n = hm.next_probe(1, t);
  ASSERT_TRUE(n.has_value());
  hm.on_ack(1, *n + 99, t);  // wrong nonce
  t += std::chrono::microseconds(5000);
  EXPECT_EQ(hm.health(1, t), fabric::BackendHealth::kSuspect);
  EXPECT_EQ(hm.stats().acks, 0u);
  EXPECT_GE(hm.stats().late_or_stray_acks, 1u);
}

TEST(Health, MaintenancePauseForgivesStrikesAndStopsTheClock) {
  fabric::HealthMonitor hm(unit_health());
  TP t{};
  hm.add_backend(1, t);
  ASSERT_TRUE(hm.next_probe(1, t).has_value());
  t += std::chrono::microseconds(5000);
  hm.next_probe(1, t);  // strike 1
  ASSERT_EQ(hm.strikes(1), 1u);
  hm.set_paused(1, true, t);
  EXPECT_EQ(hm.strikes(1), 0u);
  // A paused backend is never probed and never times out.
  t += std::chrono::seconds(10);
  EXPECT_FALSE(hm.next_probe(1, t).has_value());
  EXPECT_EQ(hm.health(1, t), fabric::BackendHealth::kAlive);
  // Resume: next probe one interval out, fresh timeout budget.
  hm.set_paused(1, false, t);
  EXPECT_FALSE(hm.next_probe(1, t).has_value());
  EXPECT_TRUE(
      hm.next_probe(1, t + std::chrono::microseconds(1000)).has_value());
}

// --------------------------------------------------------------------------
// merge_backend_traces
// --------------------------------------------------------------------------

TEST(TraceMerge, RebasesOntoEarliestEpochAndOrdersStably) {
  net::TraceEvent a1;
  a1.ts_us = 10;
  a1.kind = net::TraceEventKind::kItem;
  a1.session = 1;
  a1.backend = 1;
  net::TraceEvent b1 = a1;
  b1.ts_us = 5;
  b1.session = 2;
  b1.backend = 2;
  // Backend 2's recorder was born 20us later on the shared clock.
  const auto merged = fabric::merge_backend_traces(
      {{1000, {a1}}, {1020, {b1}}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].ts_us, 10u);  // backend 1: 1000+10 rebased to 10
  EXPECT_EQ(merged[0].backend, 1u);
  EXPECT_EQ(merged[1].ts_us, 25u);  // backend 2: 1020+5 rebased to 25
  EXPECT_EQ(merged[1].backend, 2u);
}

TEST(TraceMerge, EmptyPartsMergeToEmpty) {
  EXPECT_TRUE(fabric::merge_backend_traces({}).empty());
  EXPECT_TRUE(fabric::merge_backend_traces({{5, {}}, {9, {}}}).empty());
}

// --------------------------------------------------------------------------
// Fabric: clean run
// --------------------------------------------------------------------------

TEST(Fabric, CleanRunShardsSessionsAndAnswersProbes) {
  FabricRig rig;
  rig.build(2, 8, 5, lenient_health(), net::MuxConfig{});
  // Round-robin assignment before start.
  EXPECT_EQ(rig.fab->membership().sessions_of(1).size(), 4u);
  EXPECT_EQ(rig.fab->membership().sessions_of(2).size(), 4u);
  rig.start();
  ASSERT_TRUE(rig.finish(30s));
  rig.expect_client_all_completed();
  EXPECT_TRUE(rig.fab->rehomes().empty());
  for (std::uint32_t b = 1; b <= 2; ++b) {
    EXPECT_EQ(rig.fab->membership().health(b),
              fabric::BackendHealth::kAlive);
    EXPECT_FALSE(rig.fab->cell(b).killed());
    const auto st = rig.fab->cell(b).server().mux().stats();
    EXPECT_EQ(st.sessions_completed, 4u);
    EXPECT_GT(st.probes_answered, 0u);
  }
  const auto rs = rig.fab->router().stats();
  EXPECT_GT(rs.probe_acks, 0u);
  EXPECT_GT(rs.client_to_backend, 0u);
  EXPECT_GT(rs.backend_to_client, 0u);
  EXPECT_EQ(rs.dead_owner, 0u);
  // The merged two-backend trace attests every session.
  const auto rep = rig.attest();
  EXPECT_TRUE(rep.ok) << rep.to_json();
  EXPECT_EQ(rep.value("prefix.completed"), 8);
}

// --------------------------------------------------------------------------
// Fabric: crash re-homing
// --------------------------------------------------------------------------

TEST(Fabric, CrashIsFencedAndRehomedOntoSurvivor) {
  FabricRig rig;
  rig.build(3, 24, 16, aggressive_health(), throttled_mux());
  rig.start();
  std::this_thread::sleep_for(8ms);
  rig.fab->kill_backend(2);
  ASSERT_TRUE(rig.finish(60s));
  rig.expect_client_all_completed();

  const auto rehomes = rig.fab->rehomes();
  ASSERT_EQ(rehomes.size(), 1u);
  const auto& r = rehomes[0];
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.dead, 2u);
  ASSERT_NE(r.survivor, 0u);
  EXPECT_NE(r.survivor, 2u);
  EXPECT_EQ(r.moved.size(), 8u);  // 24 sessions round-robined over 3
  EXPECT_GT(r.absorb.latency_us, 0u);
  // Every moved session is owned by the survivor now.
  for (const std::uint32_t sid : r.moved) {
    EXPECT_EQ(rig.fab->membership().owner(sid), r.survivor);
  }
  EXPECT_EQ(rig.fab->membership().health(2), fabric::BackendHealth::kDead);
  EXPECT_GE(rig.fab->cell(r.survivor).generation(), 2u);

  // The survivor served the whole fleet share without a recovery break.
  const auto st = rig.fab->cell(r.survivor).server().mux().stats();
  EXPECT_EQ(st.sessions_recovery_violated, 0u);
  EXPECT_EQ(st.sessions_violated, 0u);
  EXPECT_EQ(st.sessions_completed, 16u);  // own 8 + moved 8

  // Cross-process-shaped prefix attestation over the merged trace.
  const auto rep = rig.attest();
  EXPECT_TRUE(rep.ok) << rep.to_json();
  EXPECT_EQ(rep.value("prefix.completed"), 24);

  // Manifest provenance: the survivor's log re-manifested the absorbed
  // sessions under its own id; the dead log still attests the old owner.
  std::set<std::uint32_t> owners;
  for (const auto& payload : rig.stores[r.survivor - 1]->replay().payloads) {
    const auto m = store::SessionManifest::from_payload(payload);
    ASSERT_TRUE(m.has_value());
    owners.insert(m->owner);
  }
  EXPECT_EQ(owners, (std::set<std::uint32_t>{r.survivor}));
  owners.clear();
  for (const auto& payload : rig.stores[1]->replay().payloads) {
    const auto m = store::SessionManifest::from_payload(payload);
    ASSERT_TRUE(m.has_value());
    owners.insert(m->owner);
  }
  EXPECT_EQ(owners, (std::set<std::uint32_t>{2}));
}

// --------------------------------------------------------------------------
// Fabric: probe blackout (false suspicion)
// --------------------------------------------------------------------------

TEST(Fabric, ShortProbeBlackoutConvergesWithoutDeath) {
  FabricRig rig;
  rig.build(2, 8, 16, lenient_health(), throttled_mux());
  rig.start();
  rig.fab->set_probe_blackout(1, true);
  std::this_thread::sleep_for(30ms);  // < one lenient timeout
  rig.fab->set_probe_blackout(1, false);
  ASSERT_TRUE(rig.finish(30s));
  rig.expect_client_all_completed();
  EXPECT_TRUE(rig.fab->rehomes().empty());
  EXPECT_EQ(rig.fab->membership().health(1), fabric::BackendHealth::kAlive);
  EXPECT_FALSE(rig.fab->cell(1).killed());
}

TEST(Fabric, LongProbeBlackoutFencesTheSuspectAndStillDeliversExactly) {
  FabricRig rig;
  rig.build(2, 12, 16, aggressive_health(), throttled_mux());
  rig.start();
  // Heartbeats to backend 1 vanish for good; data still flows.  The
  // router MUST falsely suspect it — and fencing makes that safe.  Death
  // rides on heartbeat silence alone, so it arrives whether or not the
  // sessions are already done — wait for the re-home before draining.
  rig.fab->set_probe_blackout(1, true);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (rig.fab->rehomes().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(rig.finish(60s));
  rig.expect_client_all_completed();

  const auto rehomes = rig.fab->rehomes();
  ASSERT_EQ(rehomes.size(), 1u);
  EXPECT_TRUE(rehomes[0].ok);
  EXPECT_EQ(rehomes[0].dead, 1u);
  EXPECT_EQ(rehomes[0].survivor, 2u);
  EXPECT_TRUE(rig.fab->cell(1).killed());  // fenced though it was alive
  const auto st = rig.fab->cell(2).server().mux().stats();
  EXPECT_EQ(st.sessions_recovery_violated, 0u);
  EXPECT_EQ(st.sessions_violated, 0u);
  const auto rep = rig.attest();
  EXPECT_TRUE(rep.ok) << rep.to_json();
  EXPECT_EQ(rep.value("prefix.completed"), 12);
}

// --------------------------------------------------------------------------
// Fabric: router split
// --------------------------------------------------------------------------

TEST(Fabric, RouterSplitHealsWhenTheWindowLifts) {
  FabricRig rig;
  rig.build(2, 8, 16, lenient_health(), throttled_mux());
  rig.start();
  rig.fab->set_data_split(1, true);
  std::this_thread::sleep_for(40ms);
  rig.fab->set_data_split(1, false);
  ASSERT_TRUE(rig.finish(30s));
  rig.expect_client_all_completed();
  // Heartbeats kept answering through the split: no death, no re-home.
  EXPECT_TRUE(rig.fab->rehomes().empty());
  EXPECT_EQ(rig.fab->membership().health(1), fabric::BackendHealth::kAlive);
  EXPECT_GT(rig.fab->router().stats().data_suppressed, 0u);
}

// --------------------------------------------------------------------------
// Fabric soak harness
// --------------------------------------------------------------------------

stp::FabricSoakConfig soak_base(std::size_t sessions, std::size_t len) {
  stp::FabricSoakConfig cfg;
  cfg.backends = 3;
  cfg.sessions = sessions;
  cfg.seq_len = len;
  cfg.health = aggressive_health();
  cfg.mux = throttled_mux();
  cfg.drain_timeout = 60s;
  return cfg;
}

TEST(FabricSoak, ScriptedCrashPlanRidesOut) {
  auto cfg = soak_base(16, 12);
  cfg.plan.actions.push_back({stp::FabricFaultKind::kBackendCrash, 2,
                              std::chrono::milliseconds(10), {}, {}, {}});
  const auto res = stp::run_fabric_soak(cfg);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.completed, 16u);
  EXPECT_EQ(res.live_violations, 0u);
  EXPECT_EQ(res.rehomes, 1u);
  ASSERT_EQ(res.restore_latency_us.size(), 1u);
  EXPECT_GT(res.restore_latency_us[0], 0u);
  EXPECT_TRUE(res.trace.ok) << res.trace.to_json();
}

TEST(FabricSoak, PlanToStringIsReadable) {
  stp::FabricFaultPlan plan;
  EXPECT_EQ(stp::to_string(plan), "-");
  plan.actions.push_back({stp::FabricFaultKind::kBackendCrash, 2,
                          std::chrono::milliseconds(20), {}, {}, {}});
  plan.actions.push_back({stp::FabricFaultKind::kProbeBlackout, 1,
                          std::chrono::milliseconds(5),
                          std::chrono::milliseconds(80), {}, {}});
  EXPECT_EQ(stp::to_string(plan),
            "backend-crash@20ms b2; probe-blackout@5ms+80ms b1");
}

TEST(FabricSoak, SampledPlansAreDeterministicAndBounded) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto a = stp::sample_fabric_plan(seed, 3);
    const auto b = stp::sample_fabric_plan(seed, 3);
    EXPECT_EQ(stp::to_string(a), stp::to_string(b));
    ASSERT_GE(a.actions.size(), 1u);
    ASSERT_LE(a.actions.size(), 3u);
    std::size_t crashes = 0;
    for (const auto& act : a.actions) {
      EXPECT_GE(act.backend, 1u);
      EXPECT_LE(act.backend, 3u);
      if (act.kind == stp::FabricFaultKind::kBackendCrash) ++crashes;
    }
    EXPECT_LE(crashes, 2u);  // a survivor always exists
  }
}

TEST(FabricSoak, SweepOfSampledPlansIsClean) {
  const auto cfg = soak_base(8, 10);
  const auto rep = stp::fabric_soak_sweep(cfg, {1, 2, 3});
  EXPECT_EQ(rep.trials, 3u);
  std::string why;
  for (const auto& f : rep.failures) {
    why += " seed=" + std::to_string(f.seed) + " plan=[" +
           stp::to_string(f.plan) + "] " + f.failure;
  }
  EXPECT_TRUE(rep.clean()) << why;
  EXPECT_EQ(rep.completed_trials, 3u);
}

TEST(FabricSoak, MinimizeShrinksAFailingPlanToItsCore) {
  // Killing BOTH backends strands the fleet: no survivor, sessions never
  // finish.  The blackout rider is irrelevant — minimization must drop
  // it and keep the two crashes (removing either crash leaves a survivor
  // and the run passes: 1-minimal).
  stp::FabricSoakConfig cfg = soak_base(4, 6);
  cfg.backends = 2;
  cfg.drain_timeout = 3s;
  stp::FabricFaultPlan failing;
  failing.actions.push_back({stp::FabricFaultKind::kProbeBlackout, 1,
                             std::chrono::milliseconds(2),
                             std::chrono::milliseconds(20), {}, {}});
  failing.actions.push_back({stp::FabricFaultKind::kBackendCrash, 1,
                             std::chrono::milliseconds(8), {}, {}, {}});
  failing.actions.push_back({stp::FabricFaultKind::kBackendCrash, 2,
                             std::chrono::milliseconds(14), {}, {}, {}});
  cfg.plan = failing;
  ASSERT_FALSE(stp::run_fabric_soak(cfg).ok);

  const auto min = stp::minimize_fabric_plan(cfg, failing);
  ASSERT_EQ(min.plan.actions.size(), 2u);
  EXPECT_EQ(min.plan.actions[0].kind,
            stp::FabricFaultKind::kBackendCrash);
  EXPECT_EQ(min.plan.actions[1].kind,
            stp::FabricFaultKind::kBackendCrash);
  EXPECT_GE(min.probe_runs, 3u);
}

// --------------------------------------------------------------------------
// Acceptance: 256 sessions / 3 backends survive a kill mid-run
// --------------------------------------------------------------------------

TEST(FabricAcceptance, CrashRehomed256SessionsAttestedAgainstLiveVerdicts) {
  auto cfg = soak_base(kAcceptanceSessions, 8);
  // The full width drains in ~1s on an idle core but can stretch past a
  // minute under load on a single-core runner.
  cfg.drain_timeout = std::chrono::milliseconds(240'000);
  cfg.plan.actions.push_back({stp::FabricFaultKind::kBackendCrash, 1,
                              std::chrono::milliseconds(15), {}, {}, {}});
  const auto res = stp::run_fabric_soak(cfg);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.completed, kAcceptanceSessions);
  EXPECT_EQ(res.live_violations, 0u);
  EXPECT_EQ(res.rehomes, 1u);
  ASSERT_FALSE(res.restore_latency_us.empty());

  // The trace-derived verdict MATCHES the live one, session for session:
  // every client session completed live, and the offline attestor
  // re-derives completion + prefix order for every session from the
  // merged per-backend trace alone.
  EXPECT_TRUE(res.trace.ok) << res.trace.to_json();
  EXPECT_EQ(res.trace.value("prefix.sessions"),
            static_cast<std::int64_t>(kAcceptanceSessions));
  EXPECT_EQ(res.trace.value("prefix.completed"),
            static_cast<std::int64_t>(res.completed));
  EXPECT_EQ(res.trace.value("prefix.item_violations"), 0);
  EXPECT_EQ(res.trace.value("prefix.state_violations"), 0);
}

}  // namespace
}  // namespace stpx
