// Unit tests for stpx/util: PRNG determinism and distribution sanity,
// contract checking, and exact big-integer arithmetic.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/biguint.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace stpx {
namespace {

// ------------------------------------------------------------------ Rng --

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), ContractError);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  const double frac = static_cast<double>(hits) / trials;
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(19);
  std::vector<int> v{1, 2, 2, 3, 4, 5, 5, 5};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Child should not replay the parent stream.
  Rng parent_copy(23);
  (void)parent_copy();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// --------------------------------------------------------------- expect --

TEST(Expect, PassingConditionIsSilent) {
  EXPECT_NO_THROW(STPX_EXPECT(1 + 1 == 2, "arithmetic"));
}

TEST(Expect, FailingConditionThrowsWithContext) {
  try {
    STPX_EXPECT(false, "custom message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

// -------------------------------------------------------------- BigUint --

TEST(BigUint, ZeroBehaves) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_u64(), 0u);
}

TEST(BigUint, RoundTripsU64) {
  for (std::uint64_t v : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL, 0x100000000ULL,
                          0xFFFFFFFFFFFFFFFFULL}) {
    BigUint b(v);
    EXPECT_TRUE(b.fits_u64());
    EXPECT_EQ(b.to_u64(), v);
  }
}

TEST(BigUint, AdditionMatchesU64) {
  Rng r(29);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = r() >> 1, b = r() >> 1;  // no overflow
    EXPECT_EQ((BigUint(a) + BigUint(b)).to_u64(), a + b);
  }
}

TEST(BigUint, MultiplicationMatchesU64) {
  Rng r(31);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = r() & 0xFFFFFFFF, b = r() & 0xFFFFFFFF;
    EXPECT_EQ((BigUint(a) * BigUint(b)).to_u64(), a * b);
  }
}

TEST(BigUint, CarriesAcrossLimbs) {
  BigUint max32(0xFFFFFFFFULL);
  BigUint sum = max32 + BigUint(1);
  EXPECT_EQ(sum.to_u64(), 0x100000000ULL);
}

TEST(BigUint, LargeFactorialKnownValue) {
  // 30! = 265252859812191058636308480000000
  BigUint f(1);
  for (std::uint64_t i = 2; i <= 30; ++i) f *= i;
  EXPECT_EQ(f.to_decimal(), "265252859812191058636308480000000");
  EXPECT_FALSE(f.fits_u64());
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string digits = "987654321098765432109876543210";
  EXPECT_EQ(BigUint::from_decimal(digits).to_decimal(), digits);
}

TEST(BigUint, FromDecimalRejectsGarbage) {
  EXPECT_THROW(BigUint::from_decimal(""), ContractError);
  EXPECT_THROW(BigUint::from_decimal("12a3"), ContractError);
}

TEST(BigUint, ComparisonTotalOrder) {
  BigUint a(5), b(7), c = BigUint(1) * 0xFFFFFFFFFFFFFFFFULL * 3ULL;
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(c, b);
  EXPECT_GE(c, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BigUint(5));
}

TEST(BigUint, ToU64OverflowThrows) {
  BigUint big = BigUint(0xFFFFFFFFFFFFFFFFULL) * 2ULL;
  EXPECT_THROW(big.to_u64(), ContractError);
}

// -------------------------------------------------------------- strings --

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, Brackets) {
  EXPECT_EQ(brackets({}), "[]");
  EXPECT_EQ(brackets({3, 1, 4}), "[3, 1, 4]");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyz", 2), "xyz");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace stpx
