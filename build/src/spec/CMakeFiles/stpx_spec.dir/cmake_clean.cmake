file(REMOVE_RECURSE
  "CMakeFiles/stpx_spec.dir/temporal.cpp.o"
  "CMakeFiles/stpx_spec.dir/temporal.cpp.o.d"
  "libstpx_spec.a"
  "libstpx_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
