file(REMOVE_RECURSE
  "libstpx_spec.a"
)
