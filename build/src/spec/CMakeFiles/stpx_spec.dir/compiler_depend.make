# Empty compiler generated dependencies file for stpx_spec.
# This may be replaced when dependencies are built.
