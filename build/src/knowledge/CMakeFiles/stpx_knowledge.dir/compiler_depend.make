# Empty compiler generated dependencies file for stpx_knowledge.
# This may be replaced when dependencies are built.
