file(REMOVE_RECURSE
  "CMakeFiles/stpx_knowledge.dir/explorer.cpp.o"
  "CMakeFiles/stpx_knowledge.dir/explorer.cpp.o.d"
  "libstpx_knowledge.a"
  "libstpx_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
