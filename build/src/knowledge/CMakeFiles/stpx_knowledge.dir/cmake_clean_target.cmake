file(REMOVE_RECURSE
  "libstpx_knowledge.a"
)
