file(REMOVE_RECURSE
  "libstpx_prob.a"
)
