file(REMOVE_RECURSE
  "CMakeFiles/stpx_prob.dir/random_tag.cpp.o"
  "CMakeFiles/stpx_prob.dir/random_tag.cpp.o.d"
  "libstpx_prob.a"
  "libstpx_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
