# Empty compiler generated dependencies file for stpx_prob.
# This may be replaced when dependencies are built.
