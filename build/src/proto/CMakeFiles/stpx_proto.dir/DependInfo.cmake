
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/alternating_bit.cpp" "src/proto/CMakeFiles/stpx_proto.dir/alternating_bit.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/alternating_bit.cpp.o.d"
  "/root/repo/src/proto/block.cpp" "src/proto/CMakeFiles/stpx_proto.dir/block.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/block.cpp.o.d"
  "/root/repo/src/proto/encoded.cpp" "src/proto/CMakeFiles/stpx_proto.dir/encoded.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/encoded.cpp.o.d"
  "/root/repo/src/proto/hybrid.cpp" "src/proto/CMakeFiles/stpx_proto.dir/hybrid.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/hybrid.cpp.o.d"
  "/root/repo/src/proto/modk_stenning.cpp" "src/proto/CMakeFiles/stpx_proto.dir/modk_stenning.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/modk_stenning.cpp.o.d"
  "/root/repo/src/proto/repfree.cpp" "src/proto/CMakeFiles/stpx_proto.dir/repfree.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/repfree.cpp.o.d"
  "/root/repo/src/proto/sliding_window.cpp" "src/proto/CMakeFiles/stpx_proto.dir/sliding_window.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/sliding_window.cpp.o.d"
  "/root/repo/src/proto/stenning.cpp" "src/proto/CMakeFiles/stpx_proto.dir/stenning.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/stenning.cpp.o.d"
  "/root/repo/src/proto/suite.cpp" "src/proto/CMakeFiles/stpx_proto.dir/suite.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/suite.cpp.o.d"
  "/root/repo/src/proto/sync_stop_wait.cpp" "src/proto/CMakeFiles/stpx_proto.dir/sync_stop_wait.cpp.o" "gcc" "src/proto/CMakeFiles/stpx_proto.dir/sync_stop_wait.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/stpx_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/stpx_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
