file(REMOVE_RECURSE
  "libstpx_proto.a"
)
