# Empty compiler generated dependencies file for stpx_proto.
# This may be replaced when dependencies are built.
