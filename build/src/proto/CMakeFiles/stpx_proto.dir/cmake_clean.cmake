file(REMOVE_RECURSE
  "CMakeFiles/stpx_proto.dir/alternating_bit.cpp.o"
  "CMakeFiles/stpx_proto.dir/alternating_bit.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/block.cpp.o"
  "CMakeFiles/stpx_proto.dir/block.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/encoded.cpp.o"
  "CMakeFiles/stpx_proto.dir/encoded.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/hybrid.cpp.o"
  "CMakeFiles/stpx_proto.dir/hybrid.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/modk_stenning.cpp.o"
  "CMakeFiles/stpx_proto.dir/modk_stenning.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/repfree.cpp.o"
  "CMakeFiles/stpx_proto.dir/repfree.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/sliding_window.cpp.o"
  "CMakeFiles/stpx_proto.dir/sliding_window.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/stenning.cpp.o"
  "CMakeFiles/stpx_proto.dir/stenning.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/suite.cpp.o"
  "CMakeFiles/stpx_proto.dir/suite.cpp.o.d"
  "CMakeFiles/stpx_proto.dir/sync_stop_wait.cpp.o"
  "CMakeFiles/stpx_proto.dir/sync_stop_wait.cpp.o.d"
  "libstpx_proto.a"
  "libstpx_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
