file(REMOVE_RECURSE
  "CMakeFiles/stpx_seq.dir/alpha.cpp.o"
  "CMakeFiles/stpx_seq.dir/alpha.cpp.o.d"
  "CMakeFiles/stpx_seq.dir/codec.cpp.o"
  "CMakeFiles/stpx_seq.dir/codec.cpp.o.d"
  "CMakeFiles/stpx_seq.dir/encoding.cpp.o"
  "CMakeFiles/stpx_seq.dir/encoding.cpp.o.d"
  "CMakeFiles/stpx_seq.dir/family.cpp.o"
  "CMakeFiles/stpx_seq.dir/family.cpp.o.d"
  "CMakeFiles/stpx_seq.dir/repetition_free.cpp.o"
  "CMakeFiles/stpx_seq.dir/repetition_free.cpp.o.d"
  "CMakeFiles/stpx_seq.dir/types.cpp.o"
  "CMakeFiles/stpx_seq.dir/types.cpp.o.d"
  "libstpx_seq.a"
  "libstpx_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
