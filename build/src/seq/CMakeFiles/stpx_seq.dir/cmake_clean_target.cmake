file(REMOVE_RECURSE
  "libstpx_seq.a"
)
