
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alpha.cpp" "src/seq/CMakeFiles/stpx_seq.dir/alpha.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/alpha.cpp.o.d"
  "/root/repo/src/seq/codec.cpp" "src/seq/CMakeFiles/stpx_seq.dir/codec.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/codec.cpp.o.d"
  "/root/repo/src/seq/encoding.cpp" "src/seq/CMakeFiles/stpx_seq.dir/encoding.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/encoding.cpp.o.d"
  "/root/repo/src/seq/family.cpp" "src/seq/CMakeFiles/stpx_seq.dir/family.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/family.cpp.o.d"
  "/root/repo/src/seq/repetition_free.cpp" "src/seq/CMakeFiles/stpx_seq.dir/repetition_free.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/repetition_free.cpp.o.d"
  "/root/repo/src/seq/types.cpp" "src/seq/CMakeFiles/stpx_seq.dir/types.cpp.o" "gcc" "src/seq/CMakeFiles/stpx_seq.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
