# Empty dependencies file for stpx_seq.
# This may be replaced when dependencies are built.
