file(REMOVE_RECURSE
  "libstpx_analysis.a"
)
