file(REMOVE_RECURSE
  "CMakeFiles/stpx_analysis.dir/explain.cpp.o"
  "CMakeFiles/stpx_analysis.dir/explain.cpp.o.d"
  "CMakeFiles/stpx_analysis.dir/histogram.cpp.o"
  "CMakeFiles/stpx_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/stpx_analysis.dir/stats.cpp.o"
  "CMakeFiles/stpx_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/stpx_analysis.dir/table.cpp.o"
  "CMakeFiles/stpx_analysis.dir/table.cpp.o.d"
  "libstpx_analysis.a"
  "libstpx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
