# Empty compiler generated dependencies file for stpx_analysis.
# This may be replaced when dependencies are built.
