
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/explain.cpp" "src/analysis/CMakeFiles/stpx_analysis.dir/explain.cpp.o" "gcc" "src/analysis/CMakeFiles/stpx_analysis.dir/explain.cpp.o.d"
  "/root/repo/src/analysis/histogram.cpp" "src/analysis/CMakeFiles/stpx_analysis.dir/histogram.cpp.o" "gcc" "src/analysis/CMakeFiles/stpx_analysis.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/stpx_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/stpx_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/stpx_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/stpx_analysis.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/stpx_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
