file(REMOVE_RECURSE
  "CMakeFiles/stpx_util.dir/biguint.cpp.o"
  "CMakeFiles/stpx_util.dir/biguint.cpp.o.d"
  "CMakeFiles/stpx_util.dir/expect.cpp.o"
  "CMakeFiles/stpx_util.dir/expect.cpp.o.d"
  "CMakeFiles/stpx_util.dir/rng.cpp.o"
  "CMakeFiles/stpx_util.dir/rng.cpp.o.d"
  "CMakeFiles/stpx_util.dir/strings.cpp.o"
  "CMakeFiles/stpx_util.dir/strings.cpp.o.d"
  "libstpx_util.a"
  "libstpx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
