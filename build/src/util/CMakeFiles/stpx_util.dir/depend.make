# Empty dependencies file for stpx_util.
# This may be replaced when dependencies are built.
