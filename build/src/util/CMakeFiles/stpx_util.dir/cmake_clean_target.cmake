file(REMOVE_RECURSE
  "libstpx_util.a"
)
