# Empty dependencies file for stpx_channel.
# This may be replaced when dependencies are built.
