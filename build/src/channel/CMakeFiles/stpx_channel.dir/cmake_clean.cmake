file(REMOVE_RECURSE
  "CMakeFiles/stpx_channel.dir/del_channel.cpp.o"
  "CMakeFiles/stpx_channel.dir/del_channel.cpp.o.d"
  "CMakeFiles/stpx_channel.dir/dup_channel.cpp.o"
  "CMakeFiles/stpx_channel.dir/dup_channel.cpp.o.d"
  "CMakeFiles/stpx_channel.dir/dupdel_channel.cpp.o"
  "CMakeFiles/stpx_channel.dir/dupdel_channel.cpp.o.d"
  "CMakeFiles/stpx_channel.dir/fifo_channel.cpp.o"
  "CMakeFiles/stpx_channel.dir/fifo_channel.cpp.o.d"
  "CMakeFiles/stpx_channel.dir/schedulers.cpp.o"
  "CMakeFiles/stpx_channel.dir/schedulers.cpp.o.d"
  "CMakeFiles/stpx_channel.dir/sync_channel.cpp.o"
  "CMakeFiles/stpx_channel.dir/sync_channel.cpp.o.d"
  "libstpx_channel.a"
  "libstpx_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
