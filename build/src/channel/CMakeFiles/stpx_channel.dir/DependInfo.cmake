
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/del_channel.cpp" "src/channel/CMakeFiles/stpx_channel.dir/del_channel.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/del_channel.cpp.o.d"
  "/root/repo/src/channel/dup_channel.cpp" "src/channel/CMakeFiles/stpx_channel.dir/dup_channel.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/dup_channel.cpp.o.d"
  "/root/repo/src/channel/dupdel_channel.cpp" "src/channel/CMakeFiles/stpx_channel.dir/dupdel_channel.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/dupdel_channel.cpp.o.d"
  "/root/repo/src/channel/fifo_channel.cpp" "src/channel/CMakeFiles/stpx_channel.dir/fifo_channel.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/fifo_channel.cpp.o.d"
  "/root/repo/src/channel/schedulers.cpp" "src/channel/CMakeFiles/stpx_channel.dir/schedulers.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/schedulers.cpp.o.d"
  "/root/repo/src/channel/sync_channel.cpp" "src/channel/CMakeFiles/stpx_channel.dir/sync_channel.cpp.o" "gcc" "src/channel/CMakeFiles/stpx_channel.dir/sync_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/stpx_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
