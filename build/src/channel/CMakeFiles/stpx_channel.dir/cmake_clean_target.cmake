file(REMOVE_RECURSE
  "libstpx_channel.a"
)
