# Empty dependencies file for stpx_stp.
# This may be replaced when dependencies are built.
