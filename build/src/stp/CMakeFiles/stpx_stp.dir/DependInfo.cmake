
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stp/attack.cpp" "src/stp/CMakeFiles/stpx_stp.dir/attack.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/attack.cpp.o.d"
  "/root/repo/src/stp/boundedness.cpp" "src/stp/CMakeFiles/stpx_stp.dir/boundedness.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/boundedness.cpp.o.d"
  "/root/repo/src/stp/fairness.cpp" "src/stp/CMakeFiles/stpx_stp.dir/fairness.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/fairness.cpp.o.d"
  "/root/repo/src/stp/fault.cpp" "src/stp/CMakeFiles/stpx_stp.dir/fault.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/fault.cpp.o.d"
  "/root/repo/src/stp/runner.cpp" "src/stp/CMakeFiles/stpx_stp.dir/runner.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/runner.cpp.o.d"
  "/root/repo/src/stp/validate.cpp" "src/stp/CMakeFiles/stpx_stp.dir/validate.cpp.o" "gcc" "src/stp/CMakeFiles/stpx_stp.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/stpx_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/stpx_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stpx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/stpx_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
