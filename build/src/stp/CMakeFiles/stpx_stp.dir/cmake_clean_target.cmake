file(REMOVE_RECURSE
  "libstpx_stp.a"
)
