file(REMOVE_RECURSE
  "CMakeFiles/stpx_stp.dir/attack.cpp.o"
  "CMakeFiles/stpx_stp.dir/attack.cpp.o.d"
  "CMakeFiles/stpx_stp.dir/boundedness.cpp.o"
  "CMakeFiles/stpx_stp.dir/boundedness.cpp.o.d"
  "CMakeFiles/stpx_stp.dir/fairness.cpp.o"
  "CMakeFiles/stpx_stp.dir/fairness.cpp.o.d"
  "CMakeFiles/stpx_stp.dir/fault.cpp.o"
  "CMakeFiles/stpx_stp.dir/fault.cpp.o.d"
  "CMakeFiles/stpx_stp.dir/runner.cpp.o"
  "CMakeFiles/stpx_stp.dir/runner.cpp.o.d"
  "CMakeFiles/stpx_stp.dir/validate.cpp.o"
  "CMakeFiles/stpx_stp.dir/validate.cpp.o.d"
  "libstpx_stp.a"
  "libstpx_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
