file(REMOVE_RECURSE
  "libstpx_sim.a"
)
