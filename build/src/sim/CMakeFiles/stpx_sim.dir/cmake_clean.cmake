file(REMOVE_RECURSE
  "CMakeFiles/stpx_sim.dir/engine.cpp.o"
  "CMakeFiles/stpx_sim.dir/engine.cpp.o.d"
  "CMakeFiles/stpx_sim.dir/replay.cpp.o"
  "CMakeFiles/stpx_sim.dir/replay.cpp.o.d"
  "CMakeFiles/stpx_sim.dir/trace.cpp.o"
  "CMakeFiles/stpx_sim.dir/trace.cpp.o.d"
  "CMakeFiles/stpx_sim.dir/types.cpp.o"
  "CMakeFiles/stpx_sim.dir/types.cpp.o.d"
  "libstpx_sim.a"
  "libstpx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
