# Empty compiler generated dependencies file for stpx_sim.
# This may be replaced when dependencies are built.
