# Empty dependencies file for test_stp.
# This may be replaced when dependencies are built.
