file(REMOVE_RECURSE
  "CMakeFiles/test_stp.dir/test_stp.cpp.o"
  "CMakeFiles/test_stp.dir/test_stp.cpp.o.d"
  "test_stp"
  "test_stp.pdb"
  "test_stp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
