# Empty dependencies file for test_knowledge.
# This may be replaced when dependencies are built.
