file(REMOVE_RECURSE
  "CMakeFiles/test_knowledge.dir/test_knowledge.cpp.o"
  "CMakeFiles/test_knowledge.dir/test_knowledge.cpp.o.d"
  "test_knowledge"
  "test_knowledge.pdb"
  "test_knowledge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
