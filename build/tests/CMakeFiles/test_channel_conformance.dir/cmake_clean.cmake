file(REMOVE_RECURSE
  "CMakeFiles/test_channel_conformance.dir/test_channel_conformance.cpp.o"
  "CMakeFiles/test_channel_conformance.dir/test_channel_conformance.cpp.o.d"
  "test_channel_conformance"
  "test_channel_conformance.pdb"
  "test_channel_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
