
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_channel_conformance.cpp" "tests/CMakeFiles/test_channel_conformance.dir/test_channel_conformance.cpp.o" "gcc" "tests/CMakeFiles/test_channel_conformance.dir/test_channel_conformance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/stpx_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/stpx_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
