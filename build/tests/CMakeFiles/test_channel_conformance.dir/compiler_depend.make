# Empty compiler generated dependencies file for test_channel_conformance.
# This may be replaced when dependencies are built.
