file(REMOVE_RECURSE
  "CMakeFiles/test_prob.dir/test_prob.cpp.o"
  "CMakeFiles/test_prob.dir/test_prob.cpp.o.d"
  "test_prob"
  "test_prob.pdb"
  "test_prob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
