# Empty compiler generated dependencies file for test_prob.
# This may be replaced when dependencies are built.
