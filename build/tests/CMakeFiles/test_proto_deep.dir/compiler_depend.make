# Empty compiler generated dependencies file for test_proto_deep.
# This may be replaced when dependencies are built.
