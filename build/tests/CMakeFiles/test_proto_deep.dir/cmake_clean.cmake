file(REMOVE_RECURSE
  "CMakeFiles/test_proto_deep.dir/test_proto_deep.cpp.o"
  "CMakeFiles/test_proto_deep.dir/test_proto_deep.cpp.o.d"
  "test_proto_deep"
  "test_proto_deep.pdb"
  "test_proto_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
