# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_stp[1]_include.cmake")
include("/root/repo/build/tests/test_knowledge[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_prob[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_channel_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_proto_deep[1]_include.cmake")
