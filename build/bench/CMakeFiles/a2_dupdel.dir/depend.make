# Empty dependencies file for a2_dupdel.
# This may be replaced when dependencies are built.
