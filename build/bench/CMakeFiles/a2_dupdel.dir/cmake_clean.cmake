file(REMOVE_RECURSE
  "CMakeFiles/a2_dupdel.dir/a2_dupdel.cpp.o"
  "CMakeFiles/a2_dupdel.dir/a2_dupdel.cpp.o.d"
  "a2_dupdel"
  "a2_dupdel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_dupdel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
