file(REMOVE_RECURSE
  "CMakeFiles/f1_dup_overhead.dir/f1_dup_overhead.cpp.o"
  "CMakeFiles/f1_dup_overhead.dir/f1_dup_overhead.cpp.o.d"
  "f1_dup_overhead"
  "f1_dup_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f1_dup_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
