# Empty compiler generated dependencies file for f1_dup_overhead.
# This may be replaced when dependencies are built.
