file(REMOVE_RECURSE
  "CMakeFiles/m1_micro.dir/m1_micro.cpp.o"
  "CMakeFiles/m1_micro.dir/m1_micro.cpp.o.d"
  "m1_micro"
  "m1_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m1_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
