# Empty compiler generated dependencies file for m1_micro.
# This may be replaced when dependencies are built.
