file(REMOVE_RECURSE
  "CMakeFiles/t4_del_achievability.dir/t4_del_achievability.cpp.o"
  "CMakeFiles/t4_del_achievability.dir/t4_del_achievability.cpp.o.d"
  "t4_del_achievability"
  "t4_del_achievability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t4_del_achievability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
