# Empty compiler generated dependencies file for t4_del_achievability.
# This may be replaced when dependencies are built.
