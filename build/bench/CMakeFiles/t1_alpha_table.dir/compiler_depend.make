# Empty compiler generated dependencies file for t1_alpha_table.
# This may be replaced when dependencies are built.
