file(REMOVE_RECURSE
  "CMakeFiles/t1_alpha_table.dir/t1_alpha_table.cpp.o"
  "CMakeFiles/t1_alpha_table.dir/t1_alpha_table.cpp.o.d"
  "t1_alpha_table"
  "t1_alpha_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1_alpha_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
