file(REMOVE_RECURSE
  "CMakeFiles/f6_decisive_ladder.dir/f6_decisive_ladder.cpp.o"
  "CMakeFiles/f6_decisive_ladder.dir/f6_decisive_ladder.cpp.o.d"
  "f6_decisive_ladder"
  "f6_decisive_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f6_decisive_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
