# Empty compiler generated dependencies file for f6_decisive_ladder.
# This may be replaced when dependencies are built.
