# Empty compiler generated dependencies file for e1_probabilistic.
# This may be replaced when dependencies are built.
