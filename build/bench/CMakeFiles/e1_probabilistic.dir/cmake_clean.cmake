file(REMOVE_RECURSE
  "CMakeFiles/e1_probabilistic.dir/e1_probabilistic.cpp.o"
  "CMakeFiles/e1_probabilistic.dir/e1_probabilistic.cpp.o.d"
  "e1_probabilistic"
  "e1_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
