# Empty dependencies file for t5_del_impossibility.
# This may be replaced when dependencies are built.
