file(REMOVE_RECURSE
  "CMakeFiles/t5_del_impossibility.dir/t5_del_impossibility.cpp.o"
  "CMakeFiles/t5_del_impossibility.dir/t5_del_impossibility.cpp.o.d"
  "t5_del_impossibility"
  "t5_del_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t5_del_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
