# Empty compiler generated dependencies file for f3_recovery_curve.
# This may be replaced when dependencies are built.
