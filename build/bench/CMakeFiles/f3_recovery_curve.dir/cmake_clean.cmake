file(REMOVE_RECURSE
  "CMakeFiles/f3_recovery_curve.dir/f3_recovery_curve.cpp.o"
  "CMakeFiles/f3_recovery_curve.dir/f3_recovery_curve.cpp.o.d"
  "f3_recovery_curve"
  "f3_recovery_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3_recovery_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
