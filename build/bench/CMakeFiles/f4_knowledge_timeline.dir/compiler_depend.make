# Empty compiler generated dependencies file for f4_knowledge_timeline.
# This may be replaced when dependencies are built.
