file(REMOVE_RECURSE
  "CMakeFiles/f4_knowledge_timeline.dir/f4_knowledge_timeline.cpp.o"
  "CMakeFiles/f4_knowledge_timeline.dir/f4_knowledge_timeline.cpp.o.d"
  "f4_knowledge_timeline"
  "f4_knowledge_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4_knowledge_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
