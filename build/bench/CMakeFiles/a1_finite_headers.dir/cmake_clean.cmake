file(REMOVE_RECURSE
  "CMakeFiles/a1_finite_headers.dir/a1_finite_headers.cpp.o"
  "CMakeFiles/a1_finite_headers.dir/a1_finite_headers.cpp.o.d"
  "a1_finite_headers"
  "a1_finite_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_finite_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
