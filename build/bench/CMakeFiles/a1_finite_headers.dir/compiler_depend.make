# Empty compiler generated dependencies file for a1_finite_headers.
# This may be replaced when dependencies are built.
