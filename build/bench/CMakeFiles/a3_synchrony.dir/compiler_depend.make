# Empty compiler generated dependencies file for a3_synchrony.
# This may be replaced when dependencies are built.
