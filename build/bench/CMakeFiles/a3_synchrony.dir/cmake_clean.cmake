file(REMOVE_RECURSE
  "CMakeFiles/a3_synchrony.dir/a3_synchrony.cpp.o"
  "CMakeFiles/a3_synchrony.dir/a3_synchrony.cpp.o.d"
  "a3_synchrony"
  "a3_synchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_synchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
