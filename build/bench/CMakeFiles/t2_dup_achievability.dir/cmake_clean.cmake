file(REMOVE_RECURSE
  "CMakeFiles/t2_dup_achievability.dir/t2_dup_achievability.cpp.o"
  "CMakeFiles/t2_dup_achievability.dir/t2_dup_achievability.cpp.o.d"
  "t2_dup_achievability"
  "t2_dup_achievability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2_dup_achievability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
