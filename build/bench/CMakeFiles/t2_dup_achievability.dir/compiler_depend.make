# Empty compiler generated dependencies file for t2_dup_achievability.
# This may be replaced when dependencies are built.
