# Empty dependencies file for f2_del_latency.
# This may be replaced when dependencies are built.
