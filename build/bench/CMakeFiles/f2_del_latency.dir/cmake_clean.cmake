file(REMOVE_RECURSE
  "CMakeFiles/f2_del_latency.dir/f2_del_latency.cpp.o"
  "CMakeFiles/f2_del_latency.dir/f2_del_latency.cpp.o.d"
  "f2_del_latency"
  "f2_del_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2_del_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
