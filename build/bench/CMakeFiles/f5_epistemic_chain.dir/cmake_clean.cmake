file(REMOVE_RECURSE
  "CMakeFiles/f5_epistemic_chain.dir/f5_epistemic_chain.cpp.o"
  "CMakeFiles/f5_epistemic_chain.dir/f5_epistemic_chain.cpp.o.d"
  "f5_epistemic_chain"
  "f5_epistemic_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f5_epistemic_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
