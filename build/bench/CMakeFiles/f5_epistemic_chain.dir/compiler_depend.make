# Empty compiler generated dependencies file for f5_epistemic_chain.
# This may be replaced when dependencies are built.
