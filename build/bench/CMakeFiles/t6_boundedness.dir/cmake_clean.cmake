file(REMOVE_RECURSE
  "CMakeFiles/t6_boundedness.dir/t6_boundedness.cpp.o"
  "CMakeFiles/t6_boundedness.dir/t6_boundedness.cpp.o.d"
  "t6_boundedness"
  "t6_boundedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t6_boundedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
