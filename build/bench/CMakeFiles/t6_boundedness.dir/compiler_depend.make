# Empty compiler generated dependencies file for t6_boundedness.
# This may be replaced when dependencies are built.
