file(REMOVE_RECURSE
  "CMakeFiles/t3_dup_impossibility.dir/t3_dup_impossibility.cpp.o"
  "CMakeFiles/t3_dup_impossibility.dir/t3_dup_impossibility.cpp.o.d"
  "t3_dup_impossibility"
  "t3_dup_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3_dup_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
