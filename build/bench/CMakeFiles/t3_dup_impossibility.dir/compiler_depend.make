# Empty compiler generated dependencies file for t3_dup_impossibility.
# This may be replaced when dependencies are built.
