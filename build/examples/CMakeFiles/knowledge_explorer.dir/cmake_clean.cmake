file(REMOVE_RECURSE
  "CMakeFiles/knowledge_explorer.dir/knowledge_explorer.cpp.o"
  "CMakeFiles/knowledge_explorer.dir/knowledge_explorer.cpp.o.d"
  "knowledge_explorer"
  "knowledge_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
