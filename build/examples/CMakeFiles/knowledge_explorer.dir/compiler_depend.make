# Empty compiler generated dependencies file for knowledge_explorer.
# This may be replaced when dependencies are built.
