file(REMOVE_RECURSE
  "CMakeFiles/protocol_lab.dir/protocol_lab.cpp.o"
  "CMakeFiles/protocol_lab.dir/protocol_lab.cpp.o.d"
  "protocol_lab"
  "protocol_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
