# Empty compiler generated dependencies file for protocol_lab.
# This may be replaced when dependencies are built.
