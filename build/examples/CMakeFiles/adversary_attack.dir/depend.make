# Empty dependencies file for adversary_attack.
# This may be replaced when dependencies are built.
