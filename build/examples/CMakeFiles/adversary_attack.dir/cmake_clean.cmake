file(REMOVE_RECURSE
  "CMakeFiles/adversary_attack.dir/adversary_attack.cpp.o"
  "CMakeFiles/adversary_attack.dir/adversary_attack.cpp.o.d"
  "adversary_attack"
  "adversary_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
